#!/usr/bin/env python
"""Storage-efficiency study: what is worth building for a mobile service?

The paper closes with design guidance: skip delta encoding and chunk-level
dedup for mobile backup traffic, but do exploit download locality with
cache proxies.  This example runs both trade-offs end to end:

1. redundancy elimination on contrasting upload streams (mobile photo
   backup vs PC document sync);
2. a front web-cache proxy against Zipf-popular shared downloads, sweeping
   the cache size.

Run:  python examples/storage_efficiency_study.py
"""

from repro.service import LruCache, RedundancyEliminator, Strategy
from repro.workload import (
    PopularityModel,
    corpus_bytes,
    mobile_backup_stream,
    pc_sync_stream,
    request_stream,
)

GB = 1024.0**3


def redundancy_study() -> None:
    print("== Redundancy elimination: what does each strategy buy? ==")
    for name, (stream, lineages) in (
        ("mobile photo backup", mobile_backup_stream(seed=2)),
        ("PC document sync   ", pc_sync_stream(seed=2)),
    ):
        eliminator = RedundancyEliminator()
        eliminator.upload_all(stream, lineages)
        logical = eliminator.accounting[Strategy.NONE].logical_bytes
        print(f"  {name} ({len(stream)} uploads, {logical / GB:.2f} GB logical)")
        for strategy in Strategy:
            acct = eliminator.accounting[strategy]
            print(
                f"    {strategy.value:<12s} transfers {acct.transferred_bytes / GB:6.2f} GB "
                f"(saves {acct.savings:6.1%})"
            )
    print(
        "  -> chunk dedup and delta encoding only pay off on the editing-"
        "heavy PC stream,\n     exactly the paper's 'can be reasonably "
        "omitted in mobile scenarios'."
    )


def cache_study() -> None:
    print()
    print("== Front cache proxy for shared downloads ==")
    model = PopularityModel(n_objects=400, zipf_s=0.9)
    catalog, requests = request_stream(model, 30_000, seed=3)
    total = corpus_bytes(catalog)
    print(
        f"  catalog: {len(catalog)} shared objects, {total / GB:.1f} GB; "
        f"{len(requests):,} download requests"
    )
    for fraction in (0.02, 0.05, 0.10, 0.20, 0.40):
        cache = LruCache(max(1, int(total * fraction)))
        for obj in requests:
            cache.request(obj.key, obj.size)
        stats = cache.stats()
        bar = "#" * int(stats.byte_hit_ratio * 40)
        print(
            f"  cache {fraction:4.0%} of corpus: byte-hit "
            f"{stats.byte_hit_ratio:6.1%} {bar}"
        )
    print(
        "  -> a cache a fifth the size of the corpus already absorbs "
        "about half the download bytes."
    )


def main() -> None:
    redundancy_study()
    cache_study()


if __name__ == "__main__":
    main()
