#!/usr/bin/env python
"""Capacity planning against the diurnal workload.

The paper's Fig 1 implication: metadata and storage servers are provisioned
for a sharp evening peak and sit idle most of the day.  This example sizes
a front-end fleet against the synthetic workload, shows the
over-provisioning factor, and compares three strategies:

* static provisioning for the peak hour;
* elastic scale-in/scale-out tracking the hourly load;
* peak provisioning after deferring auto-backup uploads off-peak.

It also drives the *service simulator* directly (metadata dedup included)
to show how content deduplication shaves storage traffic.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.logs import CHUNK_SIZE, Direction, DeviceType
from repro.service import ServiceCluster
from repro.workload import (
    DeferralPolicy,
    GeneratorOptions,
    folded_load,
    generate_trace,
)

GB = 1024.0**3
SERVER_CAPACITY_GBH = 0.25  # one front-end handles 0.25 GB/hour sustained


def servers_for(profile: np.ndarray) -> np.ndarray:
    return np.ceil(profile / (SERVER_CAPACITY_GBH * GB)).astype(int)


def main() -> None:
    print("Generating workload (2,500 mobile users, one week) ...")
    records = generate_trace(
        2500, options=GeneratorOptions(max_chunks_per_file=6), seed=99
    )
    chunks = [r for r in records if r.is_chunk and r.is_mobile]

    load = folded_load(chunks)
    print()
    print("== Hourly provisioning curve (Fig 1) ==")
    print(f"  peak hour load : {load.peak / GB:6.2f} GB/h")
    print(f"  mean hour load : {load.mean / GB:6.2f} GB/h")
    print(f"  peak-to-mean   : {load.peak_to_mean:6.2f}x over-provisioned")

    needed = servers_for(load.hourly_bytes)
    static_cost = int(needed.max()) * 24
    elastic_cost = int(needed.sum())
    print()
    print("== Front-end fleet sizing (server-hours per day) ==")
    print(f"  static (peak)  : {static_cost:4d} server-hours")
    print(
        f"  elastic        : {elastic_cost:4d} server-hours "
        f"({1 - elastic_cost / static_cost:.0%} saved)"
    )

    store_chunks = [c for c in chunks if c.direction is Direction.STORE]
    folded = folded_load(store_chunks).hourly_bytes
    peak_hours = tuple(np.argsort(folded)[-3:].tolist())
    target = int(np.argmin(folded[:10]))
    policy = DeferralPolicy(peak_hours=peak_hours, target_hour=target)
    deferred = list(policy.apply(chunks, seed=5))
    load_deferred = folded_load(deferred)
    needed_deferred = servers_for(load_deferred.hourly_bytes)
    print(
        f"  deferral (peak): {int(needed_deferred.max()) * 24:4d} server-hours "
        f"(peak {load.peak / GB:.2f} -> {load_deferred.peak / GB:.2f} GB/h)"
    )

    # Dedup demo on the service simulator: a popular file uploaded by many.
    print()
    print("== Content dedup at the metadata server ==")
    cluster = ServiceCluster(n_frontends=4)
    viral_seed = b"popular-meme.mp4"
    for user in range(1, 41):
        client = cluster.new_client(user, f"m{user}", DeviceType.ANDROID)
        client.store_file("meme.mp4", viral_seed, 4 * CHUNK_SIZE)
        client.store_file(f"photo-{user}.jpg", f"u{user}".encode(), CHUNK_SIZE)
    logical = 40 * (4 * CHUNK_SIZE + CHUNK_SIZE)
    print(f"  logical bytes submitted : {logical / GB:6.3f} GB")
    print(f"  bytes actually uploaded : {cluster.bytes_stored / GB:6.3f} GB")
    print(
        f"  dedup hit ratio         : {cluster.dedup_ratio:6.1%} of store"
        " operation requests"
    )


if __name__ == "__main__":
    main()
