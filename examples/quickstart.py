#!/usr/bin/env python
"""Quickstart: generate a synthetic trace, run the paper's analysis.

This walks the core loop of the reproduction in under a minute:

1. synthesize a week of mobile cloud storage request logs calibrated to
   the paper's published models;
2. recover the session structure (the Fig 3 Gaussian-mixture fit and the
   one-hour threshold);
3. print the headline findings next to the paper's Table 4.

Run:  python examples/quickstart.py [n_users]
"""

import sys

from repro.core import analyze_trace
from repro.workload import GeneratorOptions, generate_trace


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"Generating one observation week for {n_users} mobile users ...")
    records = generate_trace(
        n_users,
        options=GeneratorOptions(max_chunks_per_file=6),
        seed=42,
    )
    print(f"  {len(records):,} HTTP request log records")

    print("Running the Section 3 analysis pipeline ...")
    report = analyze_trace(records)

    model = report.interval_model
    print()
    print("Recovered session model (paper Fig 3):")
    print(
        f"  within-session interval mean : "
        f"{model.within_session_mean_seconds:6.1f} s   (paper: ~10 s)"
    )
    print(
        f"  between-session interval mean: "
        f"{model.between_session_mean_seconds / 3600:6.1f} h   (paper: ~1 day)"
    )
    print(f"  session threshold tau        : {model.tau:6.0f} s   (paper: 1 hour)")

    print()
    print("Major findings (paper Table 4):")
    for finding in report.rows():
        print(f"  [{finding.topic}]")
        print(f"    finding    : {finding.statement}")
        print(f"    implication: {finding.implication}")


if __name__ == "__main__":
    main()
