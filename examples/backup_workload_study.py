#!/usr/bin/env python
"""Backup-workload study: is this service a backup service?

The paper's central question (Section 5): mobile users appear to treat
cloud storage as *backup* — they upload photos and rarely come back.  This
example quantifies that thesis on a synthetic trace, the way a capacity
team would:

* user taxonomy (Table 3): who uploads, who downloads, who does both;
* retrieval-after-upload (Fig 9): what fraction of uploads are ever read;
* the economic consequence: how much of the stored volume is cold after a
  week, and what a warm/cold split (f4-style) plus deferred uploads would
  save at the peak.

Run:  python examples/backup_workload_study.py
"""

from repro.core import (
    profile_users,
    retrieval_return_curves,
    sessionize,
    table3,
)
from repro.logs import Direction
from repro.workload import (
    DeferralPolicy,
    DeviceGroup,
    GeneratorOptions,
    UserType,
    evaluate_deferral,
    generate_trace,
)

GB = 1024.0**3


def main() -> None:
    print("Generating a synthetic observation week (2,000 mobile users) ...")
    records = generate_trace(
        2000, options=GeneratorOptions(max_chunks_per_file=6), seed=7
    )

    profiles = profile_users(records)
    sessions = sessionize(records)

    print()
    print("== User taxonomy (paper Table 3) ==")
    for column, breakdown in table3(profiles).items():
        print(f"  [{column}] ({breakdown.n_users} users)")
        for user_type in UserType:
            share = breakdown.user_share[user_type]
            store_share = breakdown.store_volume_share[user_type]
            print(
                f"    {user_type.value:<14s} {share:6.1%} of users, "
                f"{store_share:6.1%} of stored volume"
            )

    print()
    print("== Do uploaders ever come back? (paper Fig 9) ==")
    curves = retrieval_return_curves(sessions, profiles)
    for curve in curves:
        print(
            f"  {curve.group.value:<14s}: {curve.never_fraction:5.1%} of "
            f"day-one uploaders never retrieve within the week "
            f"(same-day sync: {curve.per_day.get(0, 0.0):.1%})"
        )

    # Cold-storage sizing: stored bytes from users who never retrieved.
    mobile_groups = (DeviceGroup.ONE_MOBILE, DeviceGroup.MULTI_MOBILE)
    cold_bytes = sum(
        p.stored_bytes
        for p in profiles
        if p.group in mobile_groups and p.retrieved_bytes == 0
    )
    total_stored = sum(
        p.stored_bytes for p in profiles if p.group in mobile_groups
    )
    print()
    print("== Cold-storage opportunity ==")
    print(
        f"  {cold_bytes / GB:7.1f} GB of {total_stored / GB:7.1f} GB "
        f"({cold_bytes / total_stored:5.1%}) stored by users who never "
        "retrieved anything -> f4-style warm storage candidate"
    )

    # Deferral: flatten the evening surge.
    store_chunks = [
        r
        for r in records
        if r.is_mobile and r.is_chunk and r.direction is Direction.STORE
    ]
    folded = [0.0] * 24
    for r in store_chunks:
        folded[int((r.timestamp % 86_400) // 3600)] += r.volume
    peak_hours = tuple(sorted(range(24), key=lambda h: folded[h])[-3:])
    target = min(range(10), key=lambda h: folded[h])
    policy = DeferralPolicy(peak_hours=peak_hours, target_hour=target)
    before, after = evaluate_deferral(store_chunks, policy, seed=1)
    print()
    print("== Smart auto-backup deferral (Section 3.2.2) ==")
    print(f"  deferring hours {sorted(peak_hours)} into the {target}:00 trough")
    print(
        f"  peak store load : {before.peak / GB:6.2f} -> {after.peak / GB:6.2f} GB/h"
    )
    print(
        f"  peak-to-mean    : {before.peak_to_mean:6.2f} -> "
        f"{after.peak_to_mean:6.2f}"
    )


if __name__ == "__main__":
    main()
