#!/usr/bin/env python
"""Why is the Android app slower?  A packet-level investigation.

Reproduces the paper's Section 4 diagnosis with the packet-level TCP
simulator: two identical devices upload the same file over the same
network path; the only difference is the client processing time between
chunks.  The Android-profile client idles past its RTO on most gaps, TCP
restarts slow start, and throughput collapses — then the Section 4.3
mitigations are applied one by one.

Run:  python examples/tcp_device_gap.py
"""

import numpy as np

from repro.logs import CHUNK_SIZE, DeviceType, Direction
from repro.tcpsim import (
    ANDROID,
    IOS,
    MITIGATIONS,
    NetworkPath,
    run_mitigation_sweep,
    simulate_flow,
)

KB = 1024.0


def controlled_comparison() -> None:
    print("== Controlled upload: same path, different device (Fig 13) ==")
    for device in (IOS, ANDROID):
        path = NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05)
        flow = simulate_flow(
            direction=Direction.STORE,
            device=device,
            file_size=16 * CHUNK_SIZE,
            path=path,
            seed=11,
        )
        gaps = max(1, len(flow.chunk_results) - 1)
        print(
            f"  {device.device_type.value:<8s}"
            f" goodput={flow.throughput / KB:7.1f} KB/s"
            f"  chunk median={np.median(flow.chunk_times):5.2f} s"
            f"  restarts={flow.slow_start_restarts}/{gaps} gaps"
            f"  max inflight={flow.trace.max_inflight() / KB:5.1f} KB"
        )
    print(
        "  -> the in-flight cap at ~64 KB is the server's unscaled receive"
        " window;\n     the Android flow repeatedly re-enters slow start"
        " after idle gaps."
    )


def idle_dissection() -> None:
    print()
    print("== Where does the idle time come from? (Fig 16) ==")
    for device in (IOS, ANDROID):
        flow = simulate_flow(
            direction=Direction.STORE,
            device=device,
            file_size=12 * CHUNK_SIZE,
            path=NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05),
            seed=13,
        )
        tclt = np.array([c.tclt for c in flow.chunk_results])
        tsrv = np.array([c.tsrv for c in flow.chunk_results])
        ratios = flow.processing_idle_ratios
        print(
            f"  {device.device_type.value:<8s}"
            f" Tclt median={np.median(tclt) * 1000:6.0f} ms"
            f"  Tsrv median={np.median(tsrv) * 1000:5.0f} ms"
            f"  P(idle > RTO)={np.mean(ratios > 1):5.1%}"
        )
    print(
        "  -> server time is device-independent; the client processing"
        " time is the gap."
    )


def mitigation_sweep() -> None:
    print()
    print("== Section 4.3 mitigations (Android uploads) ==")
    outcomes = run_mitigation_sweep(
        device=DeviceType.ANDROID,
        direction=Direction.STORE,
        n_flows=12,
        file_size=8 * CHUNK_SIZE,
        seed=3,
    )
    base = outcomes["baseline"]
    for name in MITIGATIONS:
        outcome = outcomes[name]
        print(
            f"  {name:<22s} goodput={outcome.mean_flow_throughput / KB:7.1f}"
            f" KB/s  speedup={outcome.speedup_over(base):4.2f}x"
            f"  restarts/gap={outcome.restart_fraction:4.2f}"
        )


def main() -> None:
    controlled_comparison()
    idle_dissection()
    mitigation_sweep()


if __name__ == "__main__":
    main()
