"""Benchmark F4 — regenerates the paper's Fig 4 (within-session burstiness)."""

from repro.experiments import fig04_burstiness


def test_fig04_burstiness(experiment):
    experiment(fig04_burstiness)
