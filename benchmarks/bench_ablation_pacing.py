"""Benchmark A5 — regenerates the pacing-after-idle ablation."""

from repro.experiments import ablation_pacing


def test_ablation_pacing(experiment):
    experiment(ablation_pacing)
