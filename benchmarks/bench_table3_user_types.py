"""Benchmark T3 — regenerates the paper's Table 3 (user type taxonomy)."""

from repro.experiments import table3_user_types


def test_table3_user_types(experiment):
    experiment(table3_user_types)
