"""Benchmark A4 — regenerates the delta/chunk-dedup design implication."""

from repro.experiments import ablation_dedup


def test_ablation_dedup(experiment):
    experiment(ablation_dedup)
