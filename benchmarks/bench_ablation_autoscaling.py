"""Benchmark A11 — regenerates the elastic provisioning comparison."""

from repro.experiments import ablation_autoscaling


def test_ablation_autoscaling(experiment):
    experiment(ablation_autoscaling)
