"""Benchmark A10 — regenerates the metadata/data decoupling analysis."""

from repro.experiments import ablation_decoupling


def test_ablation_decoupling(experiment):
    experiment(ablation_decoupling)
