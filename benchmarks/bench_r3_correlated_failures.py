"""Benchmark R3 — correlated failure domains and retry-storm feedback."""

from repro.experiments import r3_correlated_failures


def test_r3_correlated_failures(experiment):
    experiment(r3_correlated_failures)
