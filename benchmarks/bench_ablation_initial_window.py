"""Benchmark A8 — regenerates the initial-window restart-penalty sweep."""

from repro.experiments import ablation_initial_window


def test_ablation_initial_window(experiment):
    experiment(ablation_initial_window)
