"""Benchmark — the paper-scale streaming pipeline (flagship run).

Drives the full bounded-memory pipeline end to end: workers stream
columnar shard parts to disk (``generate_columnar_sharded``), the parent
memory-maps and k-way merges them (``merged_blocks``), and the one-pass
folds in :mod:`repro.core.streaming` reduce the stream to sessions,
profiles and interval histograms.  Records:

* generation throughput (users/sec, records/sec into the part files),
* streaming analysis throughput (records/sec through the folds),
* the peak-RSS **trajectory** — RSS sampled as the stream progresses —
  demonstrating that memory plateaus at O(block_rows × shards) instead
  of growing with the record count.

Two gates, armed by scale:

* at or below ``CHECK_USERS_MAX`` users the streaming report's digest
  must equal the in-memory columnar engine's (the CI equivalence gate);
* the streaming-phase RSS growth must stay under a ceiling derived from
  ``block_rows × shards`` — *not* from the record count (the CI memory
  gate; disable with ``BENCH_PAPER_RSS_GATE=0`` on exotic platforms).

``BENCH_PAPER_USERS`` scales the run (default 500k mobile users — the
flagship; CI smoke uses ~50k).  ``BENCH_PAPER_JSON`` names a JSON output
(uploaded by CI as ``BENCH_paper_scale.json``).
"""

import json
import os
import resource
import sys
import time

import pytest

from repro.core.streaming import StreamingAnalyzer, report_from_columnar
from repro.logs.columnar import ColumnarTrace
from repro.workload import GeneratorOptions
from repro.workload.parallel import generate_columnar_sharded

#: Flagship scale; ``BENCH_PAPER_USERS`` overrides (CI smoke ~50k).
BENCH_USERS = int(os.environ.get("BENCH_PAPER_USERS", "500000"))
BENCH_PC_USERS = BENCH_USERS // 8
BENCH_SEED = 42
BENCH_OPTIONS = GeneratorOptions(max_chunks_per_file=4)
BENCH_SHARDS = int(
    os.environ.get("BENCH_PAPER_SHARDS", str(min(8, os.cpu_count() or 1)))
)
BLOCK_ROWS = int(os.environ.get("BENCH_PAPER_BLOCK_ROWS", str(1 << 20)))

#: The in-memory cross-check materializes the whole trace; keep it to
#: scales where that is cheap.  The flagship run relies on the identical
#: digest having been proven at CI scale plus the Hypothesis merge proof.
CHECK_USERS_MAX = 120_000

#: RSS samples taken across the streaming phase.
RSS_SAMPLES = 16

#: Streaming-phase RSS growth ceiling: the merge holds one block_rows
#: window per shard (~70 B/row on disk) and the emit/gather/lexsort path
#: copies a few multiples of that; 8x covers it with slack.  The fold
#: outputs are O(users + sessions), covered by the flat allowance.
RSS_BYTES_PER_ROW = 70
RSS_SCRATCH_FACTOR = 8
RSS_FLAT_ALLOWANCE_MB = 400


def _emit_json(update: dict) -> None:
    path = os.environ.get("BENCH_PAPER_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload.update(update)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def _rss_mb() -> tuple[float, float]:
    """Current ``(anonymous, total)`` resident set size in MB.

    Anonymous RSS is the honest bounded-memory metric: pages the process
    actually allocated (merge windows, fold state).  Total RSS also
    counts file-backed pages of the memory-mapped part files — clean,
    kernel-reclaimable page cache that grows as the stream reads through
    the parts and vanishes under any memory pressure.  The gate is on
    anonymous growth; the trajectory prints both.
    """
    try:
        anon = total = 0.0
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    total = int(line.split()[1]) / 1024
                elif line.startswith("RssAnon:"):
                    anon = int(line.split()[1]) / 1024
        if total and not anon:
            anon = total
        return anon, total
    except (OSError, ValueError, IndexError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        mb = peak / 1024 if sys.platform != "darwin" else peak / 1024**2
        return mb, mb


def test_paper_scale_streaming(tmp_path):
    total_users = BENCH_USERS + BENCH_PC_USERS

    start = time.perf_counter()
    sharded = generate_columnar_sharded(
        BENCH_USERS,
        n_pc_only_users=BENCH_PC_USERS,
        options=BENCH_OPTIONS,
        seed=BENCH_SEED,
        n_shards=BENCH_SHARDS,
        part_dir=tmp_path / "parts",
    )
    generate_seconds = time.perf_counter() - start
    n_records = sharded.n_records

    baseline_mb, baseline_total_mb = _rss_mb()
    sample_every = max(1, n_records // (RSS_SAMPLES * max(1, BLOCK_ROWS)))
    trajectory: list[tuple[int, float, float]] = []
    analyzer = StreamingAnalyzer()
    rows_done = 0
    start = time.perf_counter()
    for i, block in enumerate(sharded.merged_blocks(block_rows=BLOCK_ROWS)):
        analyzer.feed(block)
        rows_done += len(block)
        if i % sample_every == 0:
            trajectory.append((rows_done, *_rss_mb()))
    report = analyzer.finalize()
    stream_seconds = time.perf_counter() - start
    trajectory.append((rows_done, *_rss_mb()))

    assert report.n_records == n_records
    digest = report.digest()
    peak_stream_mb = max(anon for _, anon, _total in trajectory)

    print()
    print(
        f"paper-scale streaming pipeline: {total_users:,} users, "
        f"{n_records:,} records, {BENCH_SHARDS} shards, "
        f"block {BLOCK_ROWS:,} rows"
    )
    print(
        f"generate  {generate_seconds:>8.2f}s "
        f"{total_users / generate_seconds:>10,.0f} users/s "
        f"{n_records / generate_seconds:>12,.0f} records/s"
    )
    print(
        f"stream    {stream_seconds:>8.2f}s "
        f"{'':>10} {n_records / stream_seconds:>12,.0f} records/s"
    )
    print(
        f"sessions {report.sessions.n_sessions:,}  users "
        f"{report.users.n_users:,}  intervals "
        f"{report.intervals.n_intervals:,}  digest {digest}"
    )
    print(
        f"RSS trajectory (baseline anon {baseline_mb:,.0f} MB, "
        f"total {baseline_total_mb:,.0f} MB; total includes reclaimable "
        f"mmap page cache):"
    )
    print(
        f"{'records streamed':>18} {'anon MB':>9} {'growth MB':>10}"
        f" {'total MB':>9}"
    )
    for rows, anon, total in trajectory:
        print(
            f"{rows:>18,} {anon:>9,.0f} {anon - baseline_mb:>10,.0f}"
            f" {total:>9,.0f}"
        )

    _emit_json(
        {
            "users": total_users,
            "records": n_records,
            "shards": BENCH_SHARDS,
            "block_rows": BLOCK_ROWS,
            "generate_seconds": generate_seconds,
            "users_per_second": total_users / generate_seconds,
            "generate_records_per_second": n_records / generate_seconds,
            "stream_seconds": stream_seconds,
            "stream_records_per_second": n_records / stream_seconds,
            "sessions": report.sessions.n_sessions,
            "digest": digest,
            "baseline_rss_anon_mb": baseline_mb,
            "baseline_rss_total_mb": baseline_total_mb,
            "peak_stream_rss_anon_mb": peak_stream_mb,
            "rss_trajectory": [list(sample) for sample in trajectory],
        }
    )

    if os.environ.get("BENCH_PAPER_RSS_GATE", "1") != "0":
        ceiling_mb = (
            BLOCK_ROWS
            * BENCH_SHARDS
            * RSS_BYTES_PER_ROW
            * RSS_SCRATCH_FACTOR
            / 1024**2
            + RSS_FLAT_ALLOWANCE_MB
        )
        growth_mb = peak_stream_mb - baseline_mb
        assert growth_mb <= ceiling_mb, (
            f"streaming RSS grew {growth_mb:,.0f} MB, over the "
            f"O(block x shards) ceiling of {ceiling_mb:,.0f} MB"
        )

    if total_users > CHECK_USERS_MAX:
        pytest.skip(
            f"in-memory digest check arms at <= {CHECK_USERS_MAX} users, "
            f"ran {total_users} (trajectory printed above)"
        )
    reference = report_from_columnar(
        ColumnarTrace.concatenate(sharded.open_parts()).sorted_by_user_time()
    )
    assert reference.digest() == digest, (
        "streaming report diverged from the in-memory columnar engine"
    )
