"""Benchmark F9 — regenerates the paper's Fig 9 (retrieval after upload)."""

from repro.experiments import fig09_retrieval_return


def test_fig09_retrieval_return(experiment):
    experiment(fig09_retrieval_return)
