"""Benchmark F16 — regenerates the paper's Fig 16 (idle time dissection)."""

from repro.experiments import fig16_idle


def test_fig16_idle(experiment):
    experiment(fig16_idle)
