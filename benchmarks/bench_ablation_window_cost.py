"""Benchmark A7 — regenerates the window-scaling cost sweep."""

from repro.experiments import ablation_window_cost


def test_ablation_window_cost(experiment):
    experiment(ablation_window_cost)
