"""Benchmark V1 — regenerates the paper's end-to-end model recovery."""

from repro.experiments import recovery


def test_recovery(experiment):
    experiment(recovery)
