"""Benchmark F5 — regenerates the paper's Fig 5 (session size vs op count)."""

from repro.experiments import fig05_session_size


def test_fig05_session_size(experiment):
    experiment(fig05_session_size)
