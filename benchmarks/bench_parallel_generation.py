"""Benchmark — serial vs. sharded parallel trace generation throughput.

Both engines are timed producing their on-disk deliverable: the serial
generator writes one TSV trace; the sharded engine writes K sorted part
files on worker processes (downstream analyses read them through the
lazy k-way merge iterator, so the parts *are* the queryable trace).
Prints a records/second table and asserts the determinism contract held
(identical record counts).  The >= 1.5x speedup gate only arms on
machines with at least four cores; on smaller runners the numbers are
still printed so the bench stays informative.
"""

import os
import time

import pytest

from repro.logs.io import write_tsv
from repro.workload import (
    GeneratorOptions,
    TraceGenerator,
    generate_sharded,
)

BENCH_USERS = 1200
BENCH_PC_USERS = 200
BENCH_SEED = 42
BENCH_OPTIONS = GeneratorOptions(max_chunks_per_file=4)

#: The acceptance gate: sharded generation at 4 workers must beat serial
#: by this factor on a >= 4-core runner.
SPEEDUP_GATE = 1.5
GATE_WORKERS = 4


def _serial(tmp_path):
    generator = TraceGenerator(
        BENCH_USERS,
        n_pc_only_users=BENCH_PC_USERS,
        options=BENCH_OPTIONS,
        seed=BENCH_SEED,
    )
    start = time.perf_counter()
    count = write_tsv(generator.generate(), tmp_path / "serial.tsv")
    return count, time.perf_counter() - start


def _parallel(tmp_path, workers):
    start = time.perf_counter()
    sharded = generate_sharded(
        BENCH_USERS,
        n_pc_only_users=BENCH_PC_USERS,
        options=BENCH_OPTIONS,
        seed=BENCH_SEED,
        n_shards=workers,
        n_workers=workers,
        part_dir=tmp_path / f"parts-x{workers}",
    )
    return sharded.n_records, time.perf_counter() - start


def test_parallel_generation_speedup(tmp_path):
    cores = os.cpu_count() or 1
    serial_count, serial_seconds = _serial(tmp_path)
    rows = [("serial", 1, serial_count, serial_seconds, 1.0)]
    speedups = {}
    for workers in (2, GATE_WORKERS):
        count, seconds = _parallel(tmp_path, workers)
        assert count == serial_count, (
            "determinism contract violated: sharded record count "
            f"{count} != serial {serial_count}"
        )
        speedups[workers] = serial_seconds / seconds
        rows.append((f"sharded x{workers}", workers, count, seconds,
                     speedups[workers]))

    print()
    print(f"trace generation to disk, {BENCH_USERS + BENCH_PC_USERS} users, "
          f"{serial_count:,} records, {cores} cores")
    print(f"{'engine':<14} {'workers':>7} {'seconds':>8} "
          f"{'records/s':>10} {'speedup':>8}")
    for name, workers, count, seconds, speedup in rows:
        print(f"{name:<14} {workers:>7} {seconds:>8.2f} "
              f"{count / seconds:>10,.0f} {speedup:>7.2f}x")

    if cores < GATE_WORKERS:
        pytest.skip(
            f"speedup gate needs >= {GATE_WORKERS} cores, have {cores} "
            "(throughput table printed above)"
        )
    assert speedups[GATE_WORKERS] >= SPEEDUP_GATE, (
        f"sharded x{GATE_WORKERS} speedup {speedups[GATE_WORKERS]:.2f}x "
        f"below the {SPEEDUP_GATE}x gate"
    )
