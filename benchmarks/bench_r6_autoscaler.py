"""Benchmark R6 — fault-aware autoscaling in the chaos-coupled live loop."""

from repro.experiments import r6_autoscaler


def test_r6_autoscaler(experiment):
    experiment(r6_autoscaler)
