"""Benchmark R5 — sharded metadata partial unavailability, quorum vs primary."""

from repro.experiments import r5_partial_unavailability


def test_r5_partial_unavailability(experiment):
    experiment(r5_partial_unavailability)
