"""Benchmark — record-path vs. columnar end-to-end trace analysis.

Times the full load -> sessionize -> profile pipeline twice over the same
on-disk TSV trace: once through per-record :class:`LogRecord` objects
(``read_tsv`` + ``sessionize`` + ``profile_users``) and once through the
struct-of-arrays fast path (``read_tsv_columnar`` + ``sessionize_columnar``
+ ``profile_users_columnar``).  Both paths recover the identical sessions
and profiles (the equivalence tests prove it record-for-record; here we
re-check the headline counts), so the ratio is a pure implementation
speedup.

The >= 3x gate arms only at the full 20k-user scale; CI runs a small
smoke via ``BENCH_COLUMNAR_USERS`` where the table is printed but the
gate stays off.  Set ``BENCH_COLUMNAR_JSON`` to a path to emit the
measurements as JSON (the CI job uploads it as ``BENCH_columnar.json``).

A second bench times the :func:`repro.experiments.common.prepared_trace`
disk cache and asserts — via the generation-call counter — that a warm
hit performs no trace generation at all.
"""

import json
import os
import time

import pytest

from repro.core.sessions import sessionize, sessionize_columnar
from repro.core.usage import profile_users, profile_users_columnar
from repro.logs.io import read_tsv, read_tsv_columnar, write_tsv
from repro.workload import GeneratorOptions, generate_columnar_parallel

#: Full benchmark scale; ``BENCH_COLUMNAR_USERS`` overrides (CI smoke).
BENCH_USERS = int(os.environ.get("BENCH_COLUMNAR_USERS", "20000"))
BENCH_PC_USERS = BENCH_USERS // 8
BENCH_SEED = 42
BENCH_OPTIONS = GeneratorOptions(max_chunks_per_file=4)

#: The acceptance gate: the columnar pipeline must beat the record path
#: end to end by this factor — armed only at the full default scale.
SPEEDUP_GATE = 3.0
GATE_USERS = 20_000


def _emit_json(update: dict) -> None:
    path = os.environ.get("BENCH_COLUMNAR_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload.update(update)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def test_columnar_analysis_speedup(tmp_path):
    trace_path = tmp_path / "bench.tsv"
    trace = generate_columnar_parallel(
        BENCH_USERS,
        n_pc_only_users=BENCH_PC_USERS,
        options=BENCH_OPTIONS,
        seed=BENCH_SEED,
        n_shards=os.cpu_count() or 1,
    )
    n_records = write_tsv(trace.iter_records(), trace_path)
    del trace

    # Columnar first, and each path's objects are freed before the other
    # is timed: millions of live LogRecords slow every later allocation
    # (GC pressure), which would bill record-path costs to the columnar
    # engine or vice versa.
    start = time.perf_counter()
    columnar = read_tsv_columnar(trace_path)
    mobile_trace = columnar.select(columnar.mobile_mask)
    columnar_sessions = sessionize_columnar(mobile_trace)
    columnar_profiles = profile_users_columnar(columnar)
    columnar_seconds = time.perf_counter() - start
    n_columnar_sessions = columnar_sessions.n_sessions
    n_columnar_profiles = len(columnar_profiles)
    del columnar, mobile_trace, columnar_sessions, columnar_profiles

    start = time.perf_counter()
    records = list(read_tsv(trace_path))
    mobile = [r for r in records if r.is_mobile]
    record_sessions = sessionize(mobile)
    record_profiles = profile_users(records)
    record_seconds = time.perf_counter() - start

    assert n_columnar_sessions == len(record_sessions)
    assert n_columnar_profiles == len(record_profiles)
    del records, mobile, record_sessions, record_profiles

    speedup = record_seconds / columnar_seconds
    print()
    print(
        f"load + sessionize + profile, {BENCH_USERS + BENCH_PC_USERS} "
        f"users, {n_records:,} records"
    )
    print(f"{'engine':<10} {'seconds':>8} {'records/s':>10} {'speedup':>8}")
    for name, seconds in (
        ("records", record_seconds),
        ("columnar", columnar_seconds),
    ):
        print(
            f"{name:<10} {seconds:>8.2f} {n_records / seconds:>10,.0f} "
            f"{record_seconds / seconds:>7.2f}x"
        )
    _emit_json(
        {
            "users": BENCH_USERS + BENCH_PC_USERS,
            "records": n_records,
            "record_seconds": record_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": speedup,
        }
    )

    if BENCH_USERS < GATE_USERS:
        pytest.skip(
            f"speedup gate arms at {GATE_USERS} users, ran {BENCH_USERS} "
            "(table printed above)"
        )
    assert speedup >= SPEEDUP_GATE, (
        f"columnar speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
    )


#: The cache bench asserts behaviour (no generation on a warm hit), not a
#: ratio, so it runs at a small fixed scale everywhere, CI included.
CACHE_USERS = 400
CACHE_PC_USERS = 60


def test_warm_cache_skips_generation(tmp_path):
    import repro.experiments.common as common

    common.prepared_trace.cache_clear()
    start = time.perf_counter()
    cold = common.prepared_trace(
        n_users=CACHE_USERS,
        n_pc_users=CACHE_PC_USERS,
        seed=BENCH_SEED,
        cache_dir=tmp_path,
    )
    cold_seconds = time.perf_counter() - start
    calls_after_cold = common.GENERATION_CALLS

    common.prepared_trace.cache_clear()
    start = time.perf_counter()
    warm = common.prepared_trace(
        n_users=CACHE_USERS,
        n_pc_users=CACHE_PC_USERS,
        seed=BENCH_SEED,
        cache_dir=tmp_path,
    )
    warm_seconds = time.perf_counter() - start

    assert common.GENERATION_CALLS == calls_after_cold, (
        "warm cache hit ran trace generation"
    )
    assert warm.records == cold.records
    assert warm.sessions == cold.sessions

    print()
    print(
        f"prepared_trace cache, {CACHE_USERS + CACHE_PC_USERS} users, "
        f"{len(cold.records):,} records: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s ({cold_seconds / warm_seconds:.1f}x)"
    )
    _emit_json(
        {
            "cache_cold_seconds": cold_seconds,
            "cache_warm_seconds": warm_seconds,
        }
    )
