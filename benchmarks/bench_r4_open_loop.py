"""Benchmark R4 — open-loop offered-rate sweep and overload knee."""

from repro.experiments import r4_open_loop


def test_r4_open_loop(experiment):
    experiment(r4_open_loop)
