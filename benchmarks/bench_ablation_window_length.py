"""Benchmark A9 — regenerates the observation-window sensitivity sweep."""

from repro.experiments import ablation_window_length


def test_ablation_window_length(experiment):
    experiment(ablation_window_length)
