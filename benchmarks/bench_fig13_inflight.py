"""Benchmark F13 — regenerates the paper's Fig 13 (sequence number / inflight traces)."""

from repro.experiments import fig13_inflight


def test_fig13_inflight(experiment):
    experiment(fig13_inflight)
