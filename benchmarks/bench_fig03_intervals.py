"""Benchmark F3 — regenerates the paper's Fig 3 (inter-operation interval mixture)."""

from repro.experiments import fig03_intervals


def test_fig03_intervals(experiment):
    experiment(fig03_intervals)
