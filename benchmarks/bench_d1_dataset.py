"""Benchmark D1 — regenerates the Section 2.2 dataset overview."""

from repro.experiments import d1_dataset


def test_d1_dataset(experiment):
    experiment(d1_dataset)
