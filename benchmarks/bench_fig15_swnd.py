"""Benchmark F15 — regenerates the paper's Fig 15 (estimated sending window)."""

from repro.experiments import fig15_swnd


def test_fig15_swnd(experiment):
    experiment(fig15_swnd)
