"""Benchmark A6 — regenerates the parallel-connection sweep."""

from repro.experiments import ablation_parallel


def test_ablation_parallel(experiment):
    experiment(ablation_parallel)
