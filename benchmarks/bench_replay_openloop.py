"""Benchmark — open-loop replay driver throughput and telemetry cost.

Times the replay harness itself rather than a paper figure: one synthetic
trace is fired at a fault-free cluster and at an R4 correlated-fault
cluster (2x speedup each), and the telemetry collector is timed both with
full sample retention (exact percentiles) and in fixed-memory streaming
mode (P2 estimators only).  The prints give virtual-ops-per-wall-second —
the number that bounds how large a trace the scaling PRs can afford to
sweep — and the streaming run double-checks that dropping the sample
buffers changes neither the request counters nor the access-log digest.

Set ``BENCH_REPLAY_JSON`` to a path to emit the measurements as JSON (the
CI replay-smoke job uploads it as ``BENCH_replay.json``).
``BENCH_REPLAY_USERS`` overrides the trace scale.
"""

import json
import os
import time

from repro.experiments.r4_open_loop import (
    R4_RETRY_POLICY,
    correlated_config,
)
from repro.service.cluster import ServiceCluster
from repro.service.replay import replay_trace, synthetic_replay_trace

BENCH_USERS = int(os.environ.get("BENCH_REPLAY_USERS", "48"))
BENCH_SEED = 20160814
BENCH_SPEEDUP = 2.0
REPLAY_SEED = 3


def _emit_json(update: dict) -> None:
    path = os.environ.get("BENCH_REPLAY_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload.update(update)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def _cluster(faults):
    return ServiceCluster(
        n_frontends=2,
        faults=faults,
        fault_seed=7,
        frontend_capacity=8,
        retry_policy=R4_RETRY_POLICY,
    )


def test_replay_throughput():
    trace = synthetic_replay_trace(BENCH_USERS, BENCH_SEED)
    rows = []
    digests = {}
    for label, faults, keep in (
        ("fault-free/exact", None, True),
        ("correlated/exact", correlated_config(), True),
        ("correlated/streaming", correlated_config(), False),
    ):
        start = time.perf_counter()
        result = replay_trace(
            trace,
            _cluster(faults),
            speedup=BENCH_SPEEDUP,
            seed=REPLAY_SEED,
            keep_samples=keep,
        )
        seconds = time.perf_counter() - start
        snap = result.snapshot()
        rows.append(
            {
                "arm": label,
                "ops": result.ops_total,
                "records": len(result.records),
                "seconds": seconds,
                "ops_per_second": result.ops_total / seconds,
                "estimator": snap.estimator,
                "shed_rate": result.telemetry.shed_rate,
            }
        )
        digests[label] = (result.log_digest(), result.telemetry.total_requests)

    print()
    print(
        f"open-loop replay, {BENCH_USERS} users, "
        f"{len(trace)} ops, speedup {BENCH_SPEEDUP:g}x"
    )
    header = f"{'arm':<22} {'ops':>5} {'records':>8} {'seconds':>8} {'ops/s':>8}"
    print(header)
    for row in rows:
        print(
            f"{row['arm']:<22} {row['ops']:>5} {row['records']:>8} "
            f"{row['seconds']:>8.3f} {row['ops_per_second']:>8,.0f}"
        )

    # Streaming mode must change the estimator label only: same requests
    # hit the cluster, so the log digest and request count are identical.
    assert digests["correlated/streaming"] == digests["correlated/exact"]
    assert rows[1]["estimator"] == "exact"
    assert rows[2]["estimator"] == "p2"

    _emit_json(
        {
            "users": BENCH_USERS,
            "trace_ops": len(trace),
            "speedup": BENCH_SPEEDUP,
            "log_digest": digests["correlated/exact"][0],
            "arms": rows,
        }
    )
