"""Benchmark A3 — regenerates the download-locality cache ablation."""

from repro.experiments import ablation_cache


def test_ablation_cache(experiment):
    experiment(ablation_cache)
