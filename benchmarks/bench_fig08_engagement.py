"""Benchmark F8 — regenerates the paper's Fig 8 (user engagement)."""

from repro.experiments import fig08_engagement


def test_fig08_engagement(experiment):
    experiment(fig08_engagement)
