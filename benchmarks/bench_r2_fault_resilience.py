"""Benchmark R2 — fault injection, recovery and analysis robustness."""

from repro.experiments import r2_fault_resilience


def test_r2_fault_resilience(experiment):
    experiment(r2_fault_resilience)
