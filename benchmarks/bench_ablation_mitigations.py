"""Benchmark A1 — regenerates the paper's Section 4.3 mitigation ablation."""

from repro.experiments import ablation_mitigations


def test_ablation_mitigations(experiment):
    experiment(ablation_mitigations)
