"""Benchmark F14 — regenerates the paper's Fig 14 (RTT distribution)."""

from repro.experiments import fig14_rtt


def test_fig14_rtt(experiment):
    experiment(fig14_rtt)
