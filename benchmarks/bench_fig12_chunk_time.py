"""Benchmark F12 — regenerates the paper's Fig 12 (chunk time by device)."""

from repro.experiments import fig12_chunk_time


def test_fig12_chunk_time(experiment):
    experiment(fig12_chunk_time)
