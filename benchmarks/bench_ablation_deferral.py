"""Benchmark A2 — regenerates the paper's upload deferral ablation."""

from repro.experiments import ablation_deferral


def test_ablation_deferral(experiment):
    experiment(ablation_deferral)
