"""Benchmark F1 — regenerates the paper's Fig 1 (temporal workload variation)."""

from repro.experiments import fig01_workload


def test_fig01_workload(experiment):
    experiment(fig01_workload)
