"""Benchmark F6/T2 — regenerates the paper's Fig 6 + Table 2 (file size mixture models)."""

from repro.experiments import fig06_filesize_model


def test_fig06_filesize_model(experiment):
    experiment(fig06_filesize_model)
