"""Benchmark S1 — regenerates the paper's Section 3.1.1 session class shares."""

from repro.experiments import s1_session_classes


def test_s1_session_classes(experiment):
    experiment(s1_session_classes)
