"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's tables or figures: it times
the experiment harness with pytest-benchmark, prints the reproduced
rows/series next to the paper's reference values, and asserts the
qualitative shape (who wins, by roughly what factor).

The synthetic trace behind the behaviour experiments is memoized per
process, so the first benchmark pays generation and the rest time only the
analysis.
"""

import pytest


def run_experiment(benchmark, module):
    """Benchmark an experiment module and enforce its paper checks."""
    # Warm the memoized trace outside the timed region.
    module.run()
    result = benchmark.pedantic(module.run, rounds=1, iterations=1)
    print()
    print(result.render())
    failures = result.failures()
    assert not failures, "\n" + "\n".join(c.render() for c in failures)
    return result


@pytest.fixture
def experiment(benchmark):
    def runner(module):
        return run_experiment(benchmark, module)

    return runner
