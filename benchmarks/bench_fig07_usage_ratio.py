"""Benchmark F7 — regenerates the paper's Fig 7 (store/retrieve ratio CDFs)."""

from repro.experiments import fig07_usage_ratio


def test_fig07_usage_ratio(experiment):
    experiment(fig07_usage_ratio)
