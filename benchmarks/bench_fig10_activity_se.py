"""Benchmark F10 — regenerates the paper's Fig 10 (stretched-exponential activity)."""

from repro.experiments import fig10_activity_se


def test_fig10_activity_se(experiment):
    experiment(fig10_activity_se)
