"""Benchmark — fault-injection machinery overhead on the happy path.

The fault layer is threaded through every request the service simulator
handles (preflight crash/shed checks, typed outcomes, retry plumbing).
The zero-overhead-when-off contract says a simulation with a disabled
fault config must stay within 10% of one with no fault plan at all.  A
third armed-but-quiet configuration (vanishingly small error rate, so
every request pays the outage-window lookups and transient-error draw
without ever failing) is reported for context but not gated: it measures
what turning the machinery on actually costs.
"""

import time

from repro.experiments.r2_fault_resilience import _planned_workload
from repro.faults import FaultConfig
from repro.service import ClientNetwork, ServiceCluster

BENCH_USERS = 48
BENCH_SEED = 7
REPEATS = 3

#: The acceptance gate: disabled faults may cost at most this much over
#: no fault plan at all.
OVERHEAD_GATE = 1.10


def _drive(plan, faults):
    cluster = ServiceCluster(
        n_frontends=4,
        faults=faults,
        fault_seed=BENCH_SEED,
        frontend_capacity=64 if faults is not None else None,
    )
    clients = {}
    n_transfers = 0
    for session_start, user, device_type, files in plan:
        client = clients.get(user)
        if client is None:
            client = cluster.new_client(
                user, f"m{user}", device_type,
                network=ClientNetwork(rtt=0.08, bandwidth=4_000_000.0),
                seed=BENCH_SEED,
            )
            clients[user] = client
        client.clock = max(client.clock, session_start)
        for offset, name, content_seed, size in files:
            client.clock = max(client.clock, session_start + offset)
            client.store_file(name, content_seed, size)
            n_transfers += 1
    return cluster, n_transfers


def _best_of(plan, faults):
    best = float("inf")
    cluster = None
    n_transfers = 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        cluster, n_transfers = _drive(plan, faults)
        best = min(best, time.perf_counter() - started)
    return best, cluster, n_transfers


def test_fault_overhead_when_disabled():
    plan = _planned_workload(BENCH_USERS, BENCH_SEED)
    disabled = FaultConfig.at_rate(0.0)
    assert not disabled.enabled
    quiet = FaultConfig(error_rate=1e-12)
    assert quiet.enabled

    none_seconds, _, n_transfers = _best_of(plan, None)
    disabled_seconds, _, _ = _best_of(plan, disabled)
    armed_seconds, armed_cluster, _ = _best_of(plan, quiet)
    # Quiet means quiet: the armed run must not actually have faulted.
    assert armed_cluster.fault_stats.total_faults == 0
    assert armed_cluster.requests_failed == 0

    print()
    print(f"fault machinery overhead, {n_transfers} transfers, "
          f"best of {REPEATS}")
    print(f"{'configuration':<22} {'seconds':>8} {'vs none':>8}")
    for name, seconds in (
        ("no fault plan", none_seconds),
        ("disabled config", disabled_seconds),
        ("armed, quiet (info)", armed_seconds),
    ):
        print(f"{name:<22} {seconds:>8.3f} "
              f"{seconds / none_seconds:>7.2f}x")

    overhead = disabled_seconds / none_seconds
    assert overhead < OVERHEAD_GATE, (
        f"disabled fault config costs {overhead:.2f}x over no plan, "
        f"gate is {OVERHEAD_GATE:.2f}x"
    )
