"""Edge-case tests for the trace generator."""

import pytest
from dataclasses import replace

from repro.logs import Direction
from repro.workload import (
    GeneratorOptions,
    TraceGenerator,
    WorkloadConfig,
    generate_trace,
)


def test_single_user_trace():
    records = generate_trace(1, seed=1)
    assert records
    assert len({r.user_id for r in records}) == 1


def test_longer_observation_window():
    config = replace(WorkloadConfig(), observation_days=14)
    records = generate_trace(
        150, config=config,
        options=GeneratorOptions(max_chunks_per_file=2), seed=2,
    )
    last_day = max(int(r.timestamp // 86_400) for r in records)
    assert 7 <= last_day <= 14


def test_one_day_window():
    config = replace(WorkloadConfig(), observation_days=1)
    records = generate_trace(
        100, config=config,
        options=GeneratorOptions(max_chunks_per_file=2), seed=3,
    )
    assert records
    assert all(r.timestamp < 2 * 86_400 for r in records)


def test_max_chunks_one_preserves_volume():
    generator = TraceGenerator(
        80, options=GeneratorOptions(max_chunks_per_file=1), seed=4
    )
    records = list(generator.generate())
    chunk_volume = sum(r.volume for r in records if r.is_chunk)
    assert chunk_volume > 0
    # One chunk record per file operation of non-dedup users.
    dedup_users = {u.user_id for u in generator.population if u.dedup_only}
    ops = sum(
        1
        for r in records
        if r.is_file_op and r.user_id not in dedup_users
    )
    chunks = sum(1 for r in records if r.is_chunk)
    assert chunks == ops


def test_store_dominates_op_counts():
    records = generate_trace(
        400, options=GeneratorOptions(emit_chunks=False), seed=5
    )
    store_ops = sum(
        1 for r in records
        if r.is_file_op and r.direction is Direction.STORE and r.is_mobile
    )
    retrieve_ops = sum(
        1 for r in records
        if r.is_file_op and r.direction is Direction.RETRIEVE and r.is_mobile
    )
    assert store_ops > 1.4 * retrieve_ops


def test_retrieve_dominates_volume():
    records = generate_trace(
        400, options=GeneratorOptions(max_chunks_per_file=3), seed=5
    )
    store_volume = sum(
        r.volume for r in records
        if r.is_chunk and r.direction is Direction.STORE and r.is_mobile
    )
    retrieve_volume = sum(
        r.volume for r in records
        if r.is_chunk and r.direction is Direction.RETRIEVE and r.is_mobile
    )
    assert retrieve_volume > store_volume


def test_every_user_emits_something():
    generator = TraceGenerator(120, seed=6)
    records = list(generator.generate())
    emitted_users = {r.user_id for r in records}
    planned_users = {u.user_id for u in generator.population}
    assert emitted_users == planned_users


def test_invalid_population_rejected():
    with pytest.raises(ValueError):
        TraceGenerator(0)


def test_zero_mobile_users_rejected_with_clear_message():
    with pytest.raises(ValueError, match="n_mobile_users must be >= 1"):
        TraceGenerator(0)


def test_negative_mobile_users_rejected():
    with pytest.raises(ValueError, match="n_mobile_users must be >= 1"):
        TraceGenerator(-5)


def test_negative_pc_users_rejected():
    with pytest.raises(ValueError, match="n_pc_only_users must be >= 0"):
        TraceGenerator(10, n_pc_only_users=-1)


def test_invalid_population_rejected_before_any_work():
    """Validation happens in __init__, not lazily at generate() time."""
    with pytest.raises(ValueError):
        generate_trace(-1, seed=1)
    with pytest.raises(ValueError):
        generate_trace(5, n_pc_only_users=-3, seed=1)
