"""Edge-case tests for flow/chunk result containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import CHUNK_SIZE, DeviceType, Direction
from repro.tcpsim import IOS, NetworkPath, simulate_flow
from repro.tcpsim.flow import ChunkResult, FlowResult


class TestChunkResult:
    def make(self, idle=0.5, rto=0.3, tchunk=1.0, tsrv=0.2):
        return ChunkResult(
            index=1, size=CHUNK_SIZE, tchunk=tchunk, tsrv=tsrv,
            tclt=0.1, idle_before=idle, rto_at_idle=rto, restarted=idle > rto,
        )

    def test_ttran_decomposition(self):
        chunk = self.make(tchunk=1.0, tsrv=0.2)
        assert chunk.ttran == pytest.approx(0.8)

    def test_ttran_clamped_nonnegative(self):
        chunk = self.make(tchunk=0.1, tsrv=0.5)
        assert chunk.ttran == 0.0

    def test_idle_ratio(self):
        chunk = self.make(idle=0.6, rto=0.3)
        assert chunk.idle_rto_ratio == pytest.approx(2.0)

    def test_zero_idle_has_zero_ratio(self):
        chunk = self.make(idle=0.0)
        assert chunk.idle_rto_ratio == 0.0


class TestFlowResult:
    def test_throughput_requires_duration(self):
        result = FlowResult(
            direction=Direction.STORE, device_type=DeviceType.IOS
        )
        with pytest.raises(ValueError):
            result.throughput

    def test_empty_ratio_arrays(self):
        result = FlowResult(
            direction=Direction.STORE, device_type=DeviceType.IOS
        )
        assert result.idle_rto_ratios.size == 0
        assert result.processing_idle_ratios.size == 0
        assert result.chunk_times.size == 0


class TestRetrieveSemantics:
    @pytest.fixture(scope="class")
    def flow(self):
        return simulate_flow(
            direction=Direction.RETRIEVE,
            device=IOS,
            file_size=5 * CHUNK_SIZE,
            path=NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.04),
            seed=8,
        )

    def test_direction_recorded(self, flow):
        assert flow.direction is Direction.RETRIEVE

    def test_tchunk_covers_request_to_last_byte(self, flow):
        # Retrieval Tchunk includes Tsrv (content preparation) plus the
        # downstream transfer, so it must exceed Tsrv for every chunk.
        for chunk in flow.chunk_results:
            assert chunk.tchunk > chunk.tsrv

    def test_duration_covers_all_chunks(self, flow):
        assert flow.duration > sum(c.ttran for c in flow.chunk_results) * 0.5

    def test_average_rtt_at_least_base_with_queueing(self, flow):
        # Downloads fill the bottleneck queue (the client window is huge),
        # so RTT samples sit above the propagation floor — bufferbloat.
        assert 0.08 <= flow.average_rtt() <= 0.5


@given(
    n_chunks=st.integers(1, 6),
    seed=st.integers(0, 50),
)
@settings(max_examples=15, deadline=None)
def test_flow_invariants_property(n_chunks, seed):
    flow = simulate_flow(
        direction=Direction.STORE,
        device=IOS,
        file_size=n_chunks * CHUNK_SIZE,
        path=NetworkPath(bandwidth=3_000_000.0, one_way_delay=0.03),
        seed=seed,
    )
    assert len(flow.chunk_results) == n_chunks
    assert flow.total_bytes == n_chunks * CHUNK_SIZE
    assert sum(c.size for c in flow.chunk_results) == flow.total_bytes
    assert flow.chunk_results[0].idle_before == 0.0
    assert np.all(flow.chunk_times >= 0)
    assert flow.duration > 0
    # Restart counter agrees with per-chunk flags.
    assert flow.slow_start_restarts == sum(
        c.restarted for c in flow.chunk_results
    )
