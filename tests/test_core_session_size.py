"""Tests for session size analysis and the average-file-size model."""

import numpy as np
import pytest

from repro.core import (
    SessionType,
    average_file_sizes_mb,
    fit_file_size_model,
    ops_per_session,
    storage_slope_mb,
    volume_by_ops,
)
from repro.core.sessions import sessionize_user
from repro.logs import DeviceType, Direction, LogRecord, RequestKind

MB = 1024 * 1024


def build_session(n_ops, per_file_mb, direction=Direction.STORE, user=1):
    """A session with ``n_ops`` files of ``per_file_mb`` each."""
    records = []
    for i in range(n_ops):
        records.append(
            LogRecord(
                timestamp=float(i),
                device_type=DeviceType.ANDROID,
                device_id="d",
                user_id=user,
                kind=RequestKind.FILE_OP,
                direction=direction,
            )
        )
        records.append(
            LogRecord(
                timestamp=float(i) + 0.5,
                device_type=DeviceType.ANDROID,
                device_id="d",
                user_id=user,
                kind=RequestKind.CHUNK,
                direction=direction,
                volume=int(per_file_mb * MB),
            )
        )
    return list(sessionize_user(records))[0]


class TestOpsPerSession:
    def test_counts_by_type(self):
        sessions = [
            build_session(3, 1.0, Direction.STORE),
            build_session(5, 1.0, Direction.RETRIEVE),
        ]
        assert list(ops_per_session(sessions, SessionType.STORE_ONLY)) == [3]
        assert list(ops_per_session(sessions, SessionType.RETRIEVE_ONLY)) == [5]


class TestVolumeByOps:
    def test_linear_data_gives_exact_slope(self):
        sessions = [
            build_session(n, 1.5) for n in (1, 2, 3, 5, 8, 13) for _ in range(3)
        ]
        bins = volume_by_ops(sessions, SessionType.STORE_ONLY)
        assert [b.n_files for b in bins] == [1, 2, 3, 5, 8, 13]
        slope = storage_slope_mb(bins)
        assert slope == pytest.approx(1.5, rel=1e-6)

    def test_statistics_within_bin(self):
        sessions = [build_session(2, s) for s in (1.0, 2.0, 9.0)]
        bins = volume_by_ops(sessions, SessionType.STORE_ONLY)
        (bin2,) = bins
        assert bin2.n_sessions == 3
        assert bin2.mean_mb == pytest.approx(8.0)  # (2+4+18)/3
        assert bin2.median_mb == pytest.approx(4.0)

    def test_max_files_filter(self):
        sessions = [build_session(5, 1.0), build_session(50, 1.0)]
        bins = volume_by_ops(sessions, SessionType.STORE_ONLY, max_files=10)
        assert [b.n_files for b in bins] == [5]

    def test_slope_needs_two_bins(self):
        sessions = [build_session(2, 1.0)]
        with pytest.raises(ValueError):
            storage_slope_mb(volume_by_ops(sessions, SessionType.STORE_ONLY))


class TestAverageFileSizes:
    def test_values_in_mb(self):
        sessions = [build_session(4, 2.0)]
        sizes = average_file_sizes_mb(sessions, SessionType.STORE_ONLY)
        assert sizes[0] == pytest.approx(2.0)

    def test_zero_volume_sessions_excluded(self):
        record = LogRecord(
            timestamp=0.0,
            device_type=DeviceType.ANDROID,
            device_id="d",
            user_id=1,
            kind=RequestKind.FILE_OP,
            direction=Direction.STORE,
        )
        session = list(sessionize_user([record]))[0]
        sizes = average_file_sizes_mb([session], SessionType.STORE_ONLY)
        assert sizes.size == 0


class TestModelFit:
    def synthetic_sessions(self, n=3000, seed=0):
        rng = np.random.default_rng(seed)
        sessions = []
        for i in range(n):
            component = rng.choice(3, p=[0.91, 0.07, 0.02])
            mu = (1.5, 13.1, 77.4)[component]
            avg = max(0.02, float(rng.exponential(mu)))
            sessions.append(build_session(1, avg, user=i))
        return sessions

    def test_recovers_planted_mixture(self):
        fit = fit_file_size_model(
            self.synthetic_sessions(), SessionType.STORE_ONLY
        )
        rows = fit.table_rows()
        assert fit.mixture.n_components == 3
        assert rows[0][0] == pytest.approx(0.91, abs=0.05)
        assert rows[0][1] == pytest.approx(1.5, rel=0.25)

    def test_paper_criterion_supported(self):
        fit = fit_file_size_model(
            self.synthetic_sessions(), SessionType.STORE_ONLY,
            criterion="paper",
        )
        assert fit.mixture.n_components >= 2

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            fit_file_size_model(
                self.synthetic_sessions(n=100), SessionType.STORE_ONLY,
                criterion="aic",
            )

    def test_too_few_sessions_rejected(self):
        with pytest.raises(ValueError):
            fit_file_size_model(
                self.synthetic_sessions(n=10), SessionType.STORE_ONLY
            )
