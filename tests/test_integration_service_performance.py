"""Integration: service-simulator logs feed the Section 4 log analyses."""

import numpy as np
import pytest

from repro.core import (
    device_gap,
    estimate_sending_windows,
    idle_rto_ratios_from_logs,
    window_concentration,
)
from repro.logs import CHUNK_SIZE, DeviceType, Direction
from repro.service import ClientNetwork, ServiceCluster


@pytest.fixture(scope="module")
def cluster_log():
    cluster = ServiceCluster(n_frontends=2)
    rng = np.random.default_rng(4)
    for user in range(1, 41):
        device_type = (
            DeviceType.ANDROID if user % 3 else DeviceType.IOS
        )
        client = cluster.new_client(
            user,
            f"m{user}",
            device_type,
            # Fast paths so uploads are window-limited (the Fig 15 regime).
            network=ClientNetwork(
                rtt=float(rng.uniform(0.06, 0.2)),
                bandwidth=float(rng.uniform(1e6, 4e6)),
            ),
        )
        client.clock = float(rng.uniform(0, 1800))
        stored = client.store_file(
            "a.bin", f"c{user}".encode(), 4 * CHUNK_SIZE
        )
        if user % 4 == 0:
            client.retrieve_url(stored.url)
    return cluster.access_log()


def test_swnd_estimates_cluster_at_server_window(cluster_log):
    windows = estimate_sending_windows(cluster_log, direction=Direction.STORE)
    assert windows.size > 0
    concentration = window_concentration(windows)
    # The service's TransferModel caps uploads at the 64 KB server window.
    assert concentration.fraction_above_cap < 0.05
    assert concentration.fraction_near_cap > 0.5


def test_device_gap_visible_in_cluster_logs(cluster_log):
    gap = device_gap(list(cluster_log), Direction.STORE)
    # Android's longer inter-chunk processing triggers restart penalties.
    assert gap.median_ratio > 1.0


def test_idle_ratios_computable_from_cluster_logs(cluster_log):
    ratios = idle_rto_ratios_from_logs(
        list(cluster_log), direction=Direction.STORE
    )
    assert ratios.size > 0
    assert np.all(ratios >= 0)
