"""Tests for the struct-of-arrays trace (`repro.logs.columnar`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import (
    SCHEMA_VERSION,
    ColumnarTrace,
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    ResultCode,
    as_columnar,
    read_columnar,
    read_jsonl_columnar,
    read_tsv_columnar,
    write_jsonl,
    write_tsv,
)
from repro.logs.columnar import COLUMNS
from repro.workload.generator import GeneratorOptions, generate_trace

SAMPLE = [
    LogRecord(
        timestamp=0.5,
        device_type=DeviceType.IOS,
        device_id="abc",
        user_id=1,
        kind=RequestKind.FILE_OP,
        direction=Direction.STORE,
    ),
    LogRecord(
        timestamp=1.25,
        device_type=DeviceType.ANDROID,
        device_id="def",
        user_id=2,
        kind=RequestKind.CHUNK,
        direction=Direction.RETRIEVE,
        volume=524288,
        processing_time=1.5,
        server_time=0.2,
        rtt=0.1,
        proxied=True,
        session_id=42,
    ),
    LogRecord(
        timestamp=2.0,
        device_type=DeviceType.PC,
        device_id="abc",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=Direction.STORE,
        volume=0,
        result=ResultCode.TIMEOUT,
    ),
]


@st.composite
def valid_record(draw):
    """Any schema-valid record: every enum code, zero-byte files included.

    The schema constrains volume: file operations and failed requests
    carry none, so the strategy draws kind/result first and volume
    conditionally.
    """
    kind = draw(st.sampled_from(list(RequestKind)))
    result = draw(st.sampled_from(list(ResultCode)))
    carries_volume = kind is RequestKind.CHUNK and result is ResultCode.OK
    return LogRecord(
        timestamp=draw(st.floats(0, 1e7, allow_nan=False)),
        device_type=draw(st.sampled_from(list(DeviceType))),
        device_id=draw(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1,
                max_size=12,
            )
        ),
        user_id=draw(st.integers(0, 2**40)),
        kind=kind,
        direction=draw(st.sampled_from(list(Direction))),
        volume=draw(st.integers(0, 2**40)) if carries_volume else 0,
        processing_time=draw(st.floats(0, 1e4, allow_nan=False)),
        server_time=draw(st.floats(0, 1e4, allow_nan=False)),
        rtt=draw(st.floats(0, 100, allow_nan=False)),
        proxied=draw(st.booleans()),
        result=result,
        session_id=draw(st.integers(-1, 2**40)),
    )


@given(records=st.lists(valid_record(), max_size=40))
@settings(max_examples=150, deadline=None)
def test_columnar_roundtrip_property(records):
    """records -> ColumnarTrace -> records is the identity, every field."""
    trace = ColumnarTrace.from_records(records)
    assert len(trace) == len(records)
    assert trace.to_records() == records


def test_roundtrip_preserves_float_precision():
    record = SAMPLE[1]
    oddball = LogRecord(
        **{
            **{f: getattr(record, f) for f in (
                "device_type", "device_id", "user_id", "kind", "direction",
                "volume", "proxied", "result", "session_id",
            )},
            "timestamp": 0.1 + 0.2,  # not representable in short decimal
            "processing_time": 1.0 / 3.0,
            "server_time": 2.0 / 3.0,
            "rtt": 1e-17,
        }
    )
    back = ColumnarTrace.from_records([oddball]).to_records()[0]
    assert back == oddball  # exact, not approx: float64 end to end


def test_empty_trace():
    trace = ColumnarTrace.from_records([])
    assert len(trace) == 0
    assert trace.to_records() == []
    assert len(ColumnarTrace.empty()) == 0


def test_columns_match_logrecord_schema():
    names = {name for name, _ in COLUMNS}
    assert "device_code" in names
    assert "device_id" not in names  # pooled, not a column


def test_as_columnar_passthrough():
    trace = as_columnar(SAMPLE)
    assert as_columnar(trace) is trace
    assert trace.to_records() == SAMPLE


def test_select_and_masks():
    trace = as_columnar(SAMPLE)
    mobile = trace.select(trace.mobile_mask)
    assert mobile.to_records() == [r for r in SAMPLE if r.is_mobile]
    ops = trace.select(trace.file_op_mask)
    assert ops.to_records() == [r for r in SAMPLE if r.is_file_op]
    ok = trace.select(trace.ok_mask)
    assert ok.to_records() == [r for r in SAMPLE if r.is_ok]


def test_concatenate_remaps_device_pools():
    a = ColumnarTrace.from_records(SAMPLE[:2])
    b = ColumnarTrace.from_records(SAMPLE[2:])
    merged = ColumnarTrace.concatenate([a, b])
    assert merged.to_records() == SAMPLE
    # "abc" appears in both inputs but must occupy one pool slot.
    assert sorted(merged.device_pool) == ["abc", "def"]


def test_sorted_by_user_time_stable():
    trace = as_columnar(SAMPLE)
    ordered = trace.sorted_by_user_time().to_records()
    assert ordered == sorted(
        SAMPLE, key=lambda r: (r.user_id, r.timestamp)
    )


def test_npz_roundtrip(tmp_path):
    path = tmp_path / "trace.npz"
    trace = as_columnar(SAMPLE)
    trace.to_npz(path)
    assert ColumnarTrace.from_npz(path).to_records() == SAMPLE


def test_npz_schema_version_mismatch(tmp_path):
    path = tmp_path / "trace.npz"
    payload = as_columnar(SAMPLE).to_npz_payload()
    payload["schema_version"] = np.asarray(SCHEMA_VERSION + 1, dtype=np.int64)
    np.savez_compressed(path, **payload)
    with pytest.raises(ValueError, match="schema version"):
        ColumnarTrace.from_npz(path)


@pytest.fixture(scope="module")
def generated():
    return generate_trace(
        60,
        n_pc_only_users=10,
        options=GeneratorOptions(max_chunks_per_file=3),
        seed=17,
    )


def test_read_tsv_columnar_equals_record_reader(tmp_path, generated):
    path = tmp_path / "trace.tsv"
    write_tsv(generated, path)
    # Compare against the record reader, not the in-memory records: TSV
    # text quantizes floats, and both readers must agree on the result.
    from repro.logs import read_tsv

    assert read_tsv_columnar(path).to_records() == list(read_tsv(path))


def test_read_tsv_columnar_chunked(tmp_path, generated):
    """Tiny chunks exercise the multi-chunk concat + shared device pool."""
    from repro.logs import read_tsv

    path = tmp_path / "trace.tsv"
    write_tsv(generated, path)
    trace = read_tsv_columnar(path, chunk_lines=97)
    assert trace.to_records() == list(read_tsv(path))


def test_read_jsonl_columnar_equals_record_reader(tmp_path, generated):
    from repro.logs import read_jsonl

    path = tmp_path / "trace.jsonl"
    write_jsonl(generated, path)
    assert read_jsonl_columnar(path).to_records() == list(read_jsonl(path))


def test_read_columnar_dispatch(tmp_path):
    tsv = tmp_path / "a.tsv"
    jsonl = tmp_path / "b.jsonl"
    npz = tmp_path / "c.npz"
    write_tsv(SAMPLE, tsv)
    write_jsonl(SAMPLE, jsonl)
    as_columnar(SAMPLE).to_npz(npz)
    for path in (tsv, jsonl, npz):
        assert read_columnar(path).to_records() == SAMPLE
    with pytest.raises(ValueError):
        read_columnar(tmp_path / "trace.csv")


def test_read_tsv_columnar_legacy_12_columns(tmp_path):
    """Pre-``result`` traces (12 columns) parse as all-OK records."""
    path = tmp_path / "legacy.tsv"
    write_tsv(SAMPLE[:2], path)  # OK-result records serialize losslessly
    lines = path.read_text().splitlines()
    legacy = []
    for line in lines:
        if line.startswith("#"):
            legacy.append(line)
            continue
        parts = line.split("\t")
        legacy.append("\t".join(parts[:11] + parts[12:]))  # drop result
    path.write_text("\n".join(legacy) + "\n")
    assert read_tsv_columnar(path).to_records() == SAMPLE[:2]


def test_read_tsv_columnar_crlf_and_trailing_blanks(tmp_path):
    path = tmp_path / "crlf.tsv"
    write_tsv(SAMPLE, path)
    text = path.read_text().replace("\n", "\r\n") + "\r\n\r\n"
    path.write_bytes(text.encode())
    assert read_tsv_columnar(path).to_records() == SAMPLE


def test_read_tsv_columnar_rejects_malformed(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("only\tthree\tcolumns\n")
    with pytest.raises(ValueError):
        read_tsv_columnar(path)


def test_invalid_enum_value_raises(tmp_path):
    path = tmp_path / "bad-enum.tsv"
    write_tsv(SAMPLE[:1], path)
    path.write_text(
        path.read_text().replace("\tios\t", "\tcommodore64\t")
    )
    with pytest.raises(ValueError, match="unknown enum value"):
        read_tsv_columnar(path)


def test_device_ids_shared_pool():
    trace = as_columnar(SAMPLE)
    assert list(trace.device_ids()) == ["abc", "def", "abc"]
    assert len(trace.device_pool) == 2
