"""End-to-end tests of the service cluster (client + metadata + front-ends)."""

import pytest

from repro.logs import CHUNK_SIZE, DeviceType, Direction, RequestKind
from repro.service import ClientNetwork, ServiceCluster


@pytest.fixture()
def cluster():
    return ServiceCluster(n_frontends=2)


class TestStore:
    def test_store_emits_file_op_plus_chunks(self, cluster):
        client = cluster.new_client(1, "m1", DeviceType.ANDROID)
        report = client.store_file("p.jpg", b"c1", 2 * CHUNK_SIZE + 100)
        assert report.n_chunks == 3
        assert not report.deduplicated
        log = cluster.access_log()
        ops = [r for r in log if r.kind is RequestKind.FILE_OP]
        chunks = [r for r in log if r.kind is RequestKind.CHUNK]
        assert len(ops) == 1
        assert len(chunks) == 3
        assert sum(r.volume for r in chunks) == 2 * CHUNK_SIZE + 100

    def test_duplicate_upload_skips_transfer(self, cluster):
        a = cluster.new_client(1, "m1", DeviceType.ANDROID)
        b = cluster.new_client(2, "m2", DeviceType.IOS)
        a.store_file("p.jpg", b"same", CHUNK_SIZE)
        before = len(cluster.access_log())
        report = b.store_file("p.jpg", b"same", CHUNK_SIZE)
        assert report.deduplicated
        assert len(cluster.access_log()) == before
        assert cluster.dedup_ratio == pytest.approx(0.5)

    def test_clock_advances_during_store(self, cluster):
        client = cluster.new_client(1, "m1", DeviceType.ANDROID)
        report = client.store_file("p.jpg", b"c", CHUNK_SIZE)
        assert report.duration > 0
        assert client.clock == report.finished_at


class TestRetrieve:
    def test_roundtrip_volume(self, cluster):
        a = cluster.new_client(1, "m1", DeviceType.ANDROID)
        b = cluster.new_client(2, "m2", DeviceType.IOS)
        stored = a.store_file("p.jpg", b"c", 3 * CHUNK_SIZE)
        fetched = b.retrieve_url(stored.url)
        assert fetched.size == 3 * CHUNK_SIZE
        assert fetched.n_chunks == 3
        assert cluster.bytes_served == 3 * CHUNK_SIZE

    def test_unknown_url_raises(self, cluster):
        client = cluster.new_client(1, "m1", DeviceType.ANDROID)
        with pytest.raises(KeyError):
            client.retrieve_url("https://cloud.example/s/nope")

    def test_retrieval_records_direction(self, cluster):
        a = cluster.new_client(1, "m1", DeviceType.ANDROID)
        stored = a.store_file("p.jpg", b"c", CHUNK_SIZE)
        a.retrieve_url(stored.url)
        directions = {
            r.direction for r in cluster.access_log() if r.is_chunk
        }
        assert directions == {Direction.STORE, Direction.RETRIEVE}


class TestCluster:
    def test_access_log_time_ordered(self, cluster):
        a = cluster.new_client(1, "m1", DeviceType.ANDROID)
        b = cluster.new_client(2, "m2", DeviceType.IOS)
        a.store_file("x", b"1", CHUNK_SIZE)
        b.store_file("y", b"2", CHUNK_SIZE)
        log = cluster.access_log()
        times = [r.timestamp for r in log]
        assert times == sorted(times)

    def test_bytes_stored_accumulates(self, cluster):
        client = cluster.new_client(1, "m1", DeviceType.ANDROID)
        client.store_file("x", b"1", CHUNK_SIZE)
        client.store_file("y", b"2", 2 * CHUNK_SIZE)
        assert cluster.bytes_stored == 3 * CHUNK_SIZE

    def test_network_conditions_affect_duration(self):
        fast = ServiceCluster(n_frontends=1)
        slow = ServiceCluster(n_frontends=1)
        fast_client = fast.new_client(
            1, "m", DeviceType.IOS,
            network=ClientNetwork(rtt=0.02, bandwidth=5_000_000.0),
        )
        slow_client = slow.new_client(
            1, "m", DeviceType.IOS,
            network=ClientNetwork(rtt=0.3, bandwidth=100_000.0),
        )
        fast_report = fast_client.store_file("x", b"1", 2 * CHUNK_SIZE)
        slow_report = slow_client.store_file("x", b"1", 2 * CHUNK_SIZE)
        assert slow_report.duration > fast_report.duration

    def test_client_requires_frontends(self, cluster):
        from repro.service import StorageClient

        with pytest.raises(ValueError):
            StorageClient(
                user_id=1,
                device_id="d",
                device_type=DeviceType.IOS,
                metadata=cluster.metadata,
                frontends=[],
            )

    def test_bad_network_rejected(self):
        with pytest.raises(ValueError):
            ClientNetwork(rtt=0.0)
