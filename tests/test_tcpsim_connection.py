"""Tests for the packet-level TCP transfer simulation."""

import numpy as np
import pytest

from repro.events import EventLoop
from repro.tcpsim import (
    MAX_UNSCALED_RWND,
    CongestionControl,
    FlowTrace,
    NetworkPath,
    TcpTransfer,
)


def run_transfer(size, *, path=None, peer_rwnd=MAX_UNSCALED_RWND,
                 window_scaling=False, trace=None, congestion=None):
    loop = EventLoop()
    path = path or NetworkPath(bandwidth=1_000_000.0, one_way_delay=0.02)
    transfer = TcpTransfer(
        loop,
        path,
        "up",
        peer_rwnd=peer_rwnd,
        window_scaling=window_scaling,
        trace=trace,
        congestion=congestion,
    )
    receipts = []
    transfer.connect(lambda: transfer.send_message(size, receipts.append))
    loop.run()
    assert receipts, "transfer did not complete"
    return transfer, receipts[0]


class TestDelivery:
    def test_small_message_delivered(self):
        # A single-packet message arrives all at once.
        transfer, receipt = run_transfer(1000)
        assert receipt.last_arrival >= receipt.first_arrival > 0
        assert transfer.inflight == 0

    def test_large_message_delivered(self):
        transfer, receipt = run_transfer(500_000)
        assert receipt.last_ack_time > receipt.last_arrival

    def test_sequential_messages(self):
        loop = EventLoop()
        path = NetworkPath(bandwidth=1_000_000.0, one_way_delay=0.02)
        transfer = TcpTransfer(loop, path, "up")
        receipts = []

        def send_second(receipt):
            receipts.append(receipt)
            transfer.send_message(2000, receipts.append)

        transfer.connect(lambda: transfer.send_message(2000, send_second))
        loop.run()
        assert len(receipts) == 2
        assert receipts[1].first_arrival > receipts[0].last_arrival

    def test_overlapping_message_rejected(self):
        loop = EventLoop()
        transfer = TcpTransfer(loop, NetworkPath(), "up")
        transfer.send_message(100_000, lambda r: None)
        with pytest.raises(RuntimeError):
            transfer.send_message(1000, lambda r: None)

    def test_zero_size_rejected(self):
        loop = EventLoop()
        transfer = TcpTransfer(loop, NetworkPath(), "up")
        with pytest.raises(ValueError):
            transfer.send_message(0, lambda r: None)


class TestWindows:
    def test_unscaled_rwnd_cap_enforced_at_construction(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            TcpTransfer(
                loop, NetworkPath(), "up",
                peer_rwnd=1_000_000, window_scaling=False,
            )

    def test_inflight_respects_rwnd(self):
        trace = FlowTrace()
        # High bandwidth-delay product so the window is the binding limit.
        path = NetworkPath(bandwidth=50_000_000.0, one_way_delay=0.05)
        transfer, _ = run_transfer(
            2_000_000, path=path, peer_rwnd=MAX_UNSCALED_RWND, trace=trace
        )
        assert trace.max_inflight() <= MAX_UNSCALED_RWND + transfer.cc.mss

    def test_scaled_window_allows_more_inflight(self):
        trace = FlowTrace()
        path = NetworkPath(bandwidth=50_000_000.0, one_way_delay=0.05)
        run_transfer(
            4_000_000, path=path, peer_rwnd=2_000_000,
            window_scaling=True, trace=trace,
        )
        assert trace.max_inflight() > MAX_UNSCALED_RWND

    def test_throughput_window_limited(self):
        trace = FlowTrace()
        path = NetworkPath(bandwidth=50_000_000.0, one_way_delay=0.05)
        run_transfer(3_000_000, path=path, trace=trace)
        # Steady state: ~64 KB per 100 ms RTT ~ 640 KB/s.
        assert trace.throughput() == pytest.approx(655_360, rel=0.25)


class TestRttSampling:
    def test_rtt_samples_near_path_rtt(self):
        trace = FlowTrace()
        path = NetworkPath(bandwidth=10_000_000.0, one_way_delay=0.04)
        run_transfer(300_000, path=path, trace=trace)
        assert trace.average_rtt() == pytest.approx(0.08, rel=0.35)

    def test_rto_tracks_rtt(self):
        transfer, _ = run_transfer(300_000)
        assert transfer.rto.srtt is not None
        assert transfer.rto.rto >= transfer.rto.srtt


class TestLossRecovery:
    @pytest.mark.parametrize("loss_rate", [0.01, 0.05])
    def test_lossy_path_still_delivers(self, loss_rate):
        path = NetworkPath(
            bandwidth=2_000_000.0, one_way_delay=0.03,
            loss_rate=loss_rate, seed=11,
        )
        transfer, receipt = run_transfer(400_000, path=path)
        assert transfer.retransmissions > 0
        assert receipt.last_arrival > 0

    def test_loss_free_path_has_no_retransmissions(self):
        transfer, _ = run_transfer(400_000)
        assert transfer.retransmissions == 0
        assert transfer.timeouts == 0

    def test_heavy_loss_eventually_completes(self):
        path = NetworkPath(
            bandwidth=2_000_000.0, one_way_delay=0.02,
            loss_rate=0.15, seed=3,
        )
        _, receipt = run_transfer(100_000, path=path)
        assert receipt.last_arrival > 0


class TestTraceConsistency:
    def test_sequence_series_monotone(self):
        trace = FlowTrace()
        run_transfer(500_000, trace=trace)
        _, seqs = trace.sequence_series()
        assert np.all(np.diff(seqs) >= 0)

    def test_ack_series_monotone(self):
        trace = FlowTrace()
        run_transfer(500_000, trace=trace)
        acks = np.asarray(trace.ack_seqs)
        assert np.all(np.diff(acks) >= 0)

    def test_final_ack_covers_message(self):
        trace = FlowTrace()
        run_transfer(123_456, trace=trace)
        assert trace.ack_seqs[-1] == 123_456


class TestIdleRestart:
    def test_idle_gap_triggers_restart(self):
        loop = EventLoop()
        path = NetworkPath(bandwidth=5_000_000.0, one_way_delay=0.05)
        congestion = CongestionControl()
        transfer = TcpTransfer(loop, path, "up", congestion=congestion)
        done = []

        def second(receipt):
            done.append(receipt)

        def after_first(receipt):
            # Wait far beyond the RTO before the next message.
            loop.schedule_after(
                5.0, lambda: transfer.send_message(200_000, second)
            )

        transfer.connect(lambda: transfer.send_message(200_000, after_first))
        loop.run()
        assert done[0].restarted
        assert done[0].idle_before > 4.0
        assert congestion.slow_start_restarts == 1

    def test_short_gap_keeps_window(self):
        loop = EventLoop()
        path = NetworkPath(bandwidth=5_000_000.0, one_way_delay=0.05)
        transfer = TcpTransfer(loop, path, "up")
        done = []

        def after_first(receipt):
            loop.schedule_after(
                0.01, lambda: transfer.send_message(200_000, done.append)
            )

        transfer.connect(lambda: transfer.send_message(200_000, after_first))
        loop.run()
        assert not done[0].restarted
