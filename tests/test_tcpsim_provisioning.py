"""Tests for the window-scaling provisioning analysis."""

import pytest

from repro.tcpsim.connection import MAX_UNSCALED_RWND
from repro.tcpsim.provisioning import (
    WindowOperatingPoint,
    saturation_window,
    window_sweep,
)


@pytest.fixture(scope="module")
def points():
    return window_sweep(
        rwnd_values=(MAX_UNSCALED_RWND, 256 * 1024, 1024 * 1024),
        concurrent_flows_per_server=10_000,
        n_flows=2,
        seed=1,
    )


class TestSweep:
    def test_point_per_window(self, points):
        assert [p.rwnd_bytes for p in points] == [
            MAX_UNSCALED_RWND, 256 * 1024, 1024 * 1024
        ]

    def test_goodput_monotone_nondecreasing(self, points):
        goodputs = [p.goodput for p in points]
        assert goodputs[0] <= goodputs[1] + 1e-6
        assert goodputs[1] <= goodputs[2] * 1.05

    def test_memory_linear_in_window(self, points):
        assert points[1].memory_per_server_bytes == pytest.approx(
            points[0].memory_per_server_bytes * (256 * 1024) / MAX_UNSCALED_RWND
        )

    def test_goodput_per_memory_decreasing(self, points):
        efficiencies = [p.goodput_per_memory() for p in points]
        assert efficiencies[0] > efficiencies[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            window_sweep(concurrent_flows_per_server=0)


class TestSaturation:
    def test_picks_smallest_near_peak(self):
        points = [
            WindowOperatingPoint(64_000, 400_000.0, 1.0),
            WindowOperatingPoint(256_000, 580_000.0, 4.0),
            WindowOperatingPoint(1_024_000, 590_000.0, 16.0),
        ]
        assert saturation_window(points) == 256_000

    def test_first_point_can_saturate(self):
        points = [
            WindowOperatingPoint(64_000, 500_000.0, 1.0),
            WindowOperatingPoint(256_000, 505_000.0, 4.0),
        ]
        assert saturation_window(points) == 64_000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            saturation_window([])

    def test_zero_memory_rejected(self):
        with pytest.raises(ValueError):
            WindowOperatingPoint(64_000, 1.0, 0.0).goodput_per_memory()
