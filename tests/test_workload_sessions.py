"""Tests for session planning and file-size synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    FileSizeModel,
    SessionClass,
    SessionMixModel,
    SessionPlanner,
    sample_average_file_size,
    sample_ops_count,
    spread_file_sizes,
)


@pytest.fixture()
def planner():
    return SessionPlanner(SessionMixModel(), FileSizeModel())


class TestOpsCount:
    def test_respects_budget_cap(self):
        mix = SessionMixModel()
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert sample_ops_count(mix, rng, max_ops=3) <= 3

    def test_cap_one_forces_single(self):
        mix = SessionMixModel()
        rng = np.random.default_rng(0)
        assert sample_ops_count(mix, rng, max_ops=1) == 1

    def test_never_exceeds_max_ops(self):
        mix = SessionMixModel()
        rng = np.random.default_rng(1)
        counts = [sample_ops_count(mix, rng) for _ in range(5000)]
        assert max(counts) <= mix.max_ops
        assert min(counts) >= 1

    def test_tail_exists(self):
        mix = SessionMixModel()
        rng = np.random.default_rng(2)
        counts = np.array([sample_ops_count(mix, rng) for _ in range(5000)])
        assert np.mean(counts > 20) > 0.02


class TestAverageFileSize:
    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            sample_average_file_size((0.5, 0.5), (1.0,), np.random.default_rng(0))

    def test_component_override(self):
        rng = np.random.default_rng(0)
        sizes = [
            sample_average_file_size(
                (0.9, 0.1), (1.0, 100.0), rng, component=1
            )
            for _ in range(200)
        ]
        # All draws come from the 100 MB component.
        assert np.mean(sizes) > 30 * 1024 * 1024

    def test_component_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            sample_average_file_size(
                (1.0,), (1.0,), np.random.default_rng(0), component=2
            )

    def test_minimum_size_floor(self):
        rng = np.random.default_rng(0)
        sizes = [
            sample_average_file_size((1.0,), (0.0001,), rng)
            for _ in range(100)
        ]
        assert min(sizes) >= 16 * 1024


class TestSpreadSizes:
    def test_single_file_exact(self):
        assert spread_file_sizes(1000, 1, np.random.default_rng(0)) == (1000,)

    @given(
        average=st.integers(10_000, 10_000_000),
        n=st.integers(2, 40),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=150)
    def test_mean_preserved_exactly(self, average, n, seed):
        sizes = spread_file_sizes(average, n, np.random.default_rng(seed))
        assert len(sizes) == n
        assert sum(sizes) == average * n
        assert all(s >= 1 for s in sizes)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            spread_file_sizes(100, 0, rng)
        with pytest.raises(ValueError):
            spread_file_sizes(2, 10, rng)


class TestPlanner:
    def test_budgets_respected(self, planner):
        rng = np.random.default_rng(0)
        for _ in range(300):
            plan = planner.plan_session(rng, store_budget=3, retrieve_budget=2)
            assert len(plan.store_sizes) <= 3
            assert len(plan.retrieve_sizes) <= 2

    def test_store_only_budget(self, planner):
        rng = np.random.default_rng(1)
        plan = planner.plan_session(rng, store_budget=5, retrieve_budget=0)
        assert plan.session_class is SessionClass.STORE_ONLY
        assert plan.retrieve_sizes == ()

    def test_retrieve_only_budget(self, planner):
        rng = np.random.default_rng(1)
        plan = planner.plan_session(rng, store_budget=0, retrieve_budget=5)
        assert plan.session_class is SessionClass.RETRIEVE_ONLY

    def test_empty_budgets_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan_session(
                np.random.default_rng(0), store_budget=0, retrieve_budget=0
            )

    def test_bulk_store_session(self, planner):
        rng = np.random.default_rng(2)
        plan = planner.plan_session(
            rng, store_budget=500, retrieve_budget=0, bulk_store_ops=500
        )
        assert plan.session_class is SessionClass.STORE_ONLY
        assert len(plan.store_sizes) == 500

    def test_bulk_retrieve_session(self, planner):
        rng = np.random.default_rng(2)
        plan = planner.plan_session(
            rng, store_budget=0, retrieve_budget=120, bulk_retrieve_ops=120
        )
        assert len(plan.retrieve_sizes) == 120

    def test_bulk_both_directions_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan_session(
                np.random.default_rng(0),
                store_budget=5,
                retrieve_budget=5,
                bulk_store_ops=5,
                bulk_retrieve_ops=5,
            )

    def test_size_cap_bounds_average(self, planner):
        rng = np.random.default_rng(3)
        for _ in range(100):
            plan = planner.plan_session(
                rng,
                store_budget=1,
                retrieve_budget=0,
                max_avg_size_bytes=450 * 1024,
            )
            assert plan.store_volume <= 450 * 1024

    def test_session_class_shares_roughly_planted(self, planner):
        rng = np.random.default_rng(4)
        classes = [
            planner.plan_session(
                rng, store_budget=100, retrieve_budget=100
            ).session_class
            for _ in range(4000)
        ]
        store_share = np.mean([c is SessionClass.STORE_ONLY for c in classes])
        assert store_share == pytest.approx(0.682, abs=0.03)
