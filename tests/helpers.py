"""Shared test helpers: the trace canonicalizer.

The serial generator emits records grouped by user while the sharded
engine merges shards into a globally time-sorted stream, so the two
equal traces arrive in different orders — and a trace that round-tripped
through a TSV part file carries floats quantized to the format's 6
decimal places.  :func:`canonical_lines` maps any of those
representations of the same trace to one canonical form so equivalence
asserts are record-for-record string comparisons:

* every record is serialized with :func:`repro.logs.io.record_to_tsv`,
  which quantizes floats identically whether or not the record already
  visited a file, and covers **every** field including ``session_id``
  (which ``LogRecord.__eq__`` deliberately ignores);
* lines are stable-sorted by the serialized ``(timestamp, user_id)``
  key.  The key is total across users; within one user, equal-timestamp
  records keep their emission order in every representation (per-user
  streams are never split across shards), so the stable sort yields one
  well-defined order.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.logs.io import record_to_tsv
from repro.logs.schema import LogRecord


def canonical_lines(records: Iterable[LogRecord]) -> list[str]:
    """Serialize ``records`` into the canonical sorted line list."""
    lines = [record_to_tsv(record) for record in records]
    lines.sort(key=_line_key)
    return lines


def _line_key(line: str) -> tuple[float, int]:
    parts = line.split("\t")
    return (float(parts[0]), int(parts[3]))


def replay_fingerprint(result) -> dict[str, str]:
    """Byte-level identity of one replay: canonical log + telemetry MD5s.

    ``log`` digests the *canonicalized* access log (same canonical form
    as :func:`canonical_lines`, so it is representation-independent);
    ``telemetry`` digests the snapshot's canonical JSON.  Two replays are
    "byte-identical" exactly when these fingerprints are equal — the
    determinism tests and the golden fixture both pin this dict.
    """
    log_digest = hashlib.md5(
        "\n".join(canonical_lines(result.records)).encode()
    ).hexdigest()
    telemetry_digest = hashlib.md5(
        result.snapshot().to_json().encode()
    ).hexdigest()
    return {"log": log_digest, "telemetry": telemetry_digest}


def assert_traces_equivalent(
    expected: Iterable[LogRecord],
    actual: Iterable[LogRecord],
    *,
    label: str = "trace",
) -> None:
    """Assert two traces are record-for-record identical (canonicalized)."""
    expected_lines = canonical_lines(expected)
    actual_lines = canonical_lines(actual)
    assert len(expected_lines) == len(actual_lines), (
        f"{label}: record count differs: "
        f"{len(expected_lines)} != {len(actual_lines)}"
    )
    for index, (want, got) in enumerate(zip(expected_lines, actual_lines)):
        assert want == got, (
            f"{label}: first mismatch at canonical record {index}:\n"
            f"  expected: {want}\n"
            f"  actual:   {got}"
        )
