"""Tests for the trace generator."""

import numpy as np
import pytest

from repro.logs import DeviceType, Direction, RequestKind
from repro.workload import (
    GeneratorOptions,
    TraceGenerator,
    UserType,
    generate_trace,
)


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(
        300, options=GeneratorOptions(max_chunks_per_file=4), seed=3
    )


def test_options_validation():
    with pytest.raises(ValueError):
        GeneratorOptions(max_chunks_per_file=0)


def test_records_time_ordered_per_user(small_trace):
    last_seen: dict[int, float] = {}
    for record in small_trace:
        previous = last_seen.get(record.user_id)
        if previous is not None:
            assert record.timestamp >= previous
        last_seen[record.user_id] = record.timestamp


def test_ground_truth_session_ids_assigned(small_trace):
    assert all(r.session_id > 0 for r in small_trace)


def test_session_ids_consistent_within_user(small_trace):
    """All records of one session belong to a single user/device."""
    sessions: dict[int, set] = {}
    for record in small_trace:
        sessions.setdefault(record.session_id, set()).add(
            (record.user_id, record.device_id)
        )
    for members in sessions.values():
        assert len(members) == 1


def test_chunk_volume_matches_planned_budget():
    generator = TraceGenerator(
        150, options=GeneratorOptions(max_chunks_per_file=4), seed=8
    )
    records = list(generator.generate())
    ops = {}
    for user in generator.population:
        ops[user.user_id] = (user.store_files, user.retrieve_files)
    emitted_store_ops: dict[int, int] = {}
    for record in records:
        if record.is_file_op and record.direction is Direction.STORE:
            emitted_store_ops[record.user_id] = (
                emitted_store_ops.get(record.user_id, 0) + 1
            )
    for user in generator.population:
        if user.store_files and user.user_type is not UserType.OCCASIONAL:
            # Every planned store file produces exactly one file operation.
            assert emitted_store_ops.get(user.user_id, 0) == user.store_files


def test_chunk_cap_respected():
    records = generate_trace(
        100, options=GeneratorOptions(max_chunks_per_file=2), seed=4
    )
    per_op: dict[tuple, int] = {}
    for r in records:
        if r.is_chunk:
            # Heuristic: chunks of one file share a session and direction;
            # count chunks per (session, direction) and divide by ops later.
            key = (r.session_id, r.direction)
            per_op[key] = per_op.get(key, 0) + 1
    ops_per_session: dict[tuple, int] = {}
    for r in records:
        if r.is_file_op:
            key = (r.session_id, r.direction)
            ops_per_session[key] = ops_per_session.get(key, 0) + 1
    for key, chunk_count in per_op.items():
        assert chunk_count <= 2 * ops_per_session[key]


def test_dedup_only_users_emit_no_chunks():
    generator = TraceGenerator(
        400, options=GeneratorOptions(max_chunks_per_file=4), seed=2
    )
    records = list(generator.generate())
    dedup_users = {
        u.user_id for u in generator.population if u.dedup_only
    }
    assert dedup_users
    for record in records:
        if record.user_id in dedup_users:
            assert record.kind is RequestKind.FILE_OP


def test_emit_chunks_false_gives_ops_only():
    records = generate_trace(
        100, options=GeneratorOptions(emit_chunks=False), seed=1
    )
    assert all(r.is_file_op for r in records)


def test_determinism():
    a = generate_trace(100, seed=6)
    b = generate_trace(100, seed=6)
    assert len(a) == len(b)
    assert all(x == y for x, y in zip(a, b))


def test_different_seeds_differ():
    a = generate_trace(100, seed=1)
    b = generate_trace(100, seed=2)
    assert [r.timestamp for r in a] != [r.timestamp for r in b]


def test_pc_records_present_with_pc_users():
    records = generate_trace(100, n_pc_only_users=50, seed=7)
    assert any(r.device_type is DeviceType.PC for r in records)


def test_timestamps_within_observation_window(small_trace):
    # Sessions may spill slightly past the last midnight while transfers
    # drain, but never beyond a few hours.
    limit = 7 * 86_400.0 + 12 * 3600.0
    assert all(0 <= r.timestamp < limit for r in small_trace)


def test_proxied_fraction_small_but_present(small_trace):
    proxied = np.mean([r.proxied for r in small_trace])
    assert 0.0 < proxied < 0.3
