"""Tests for the network path model."""

import numpy as np
import pytest

from repro.tcpsim import NetworkPath


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NetworkPath(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkPath(one_way_delay=-1)
        with pytest.raises(ValueError):
            NetworkPath(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkPath(jitter=-0.1)
        with pytest.raises(ValueError):
            NetworkPath(down_bandwidth=0)

    def test_transmit_rejects_bad_args(self):
        path = NetworkPath()
        with pytest.raises(ValueError):
            path.transmit("sideways", 0.0, 100)
        with pytest.raises(ValueError):
            path.transmit("up", 0.0, 0)


class TestTiming:
    def test_base_rtt(self):
        assert NetworkPath(one_way_delay=0.05).base_rtt == pytest.approx(0.1)

    def test_arrival_includes_serialization_and_propagation(self):
        path = NetworkPath(bandwidth=1000.0, one_way_delay=0.5)
        arrival, delivered = path.transmit("up", 0.0, 100)
        assert delivered
        assert arrival == pytest.approx(0.1 + 0.5)

    def test_back_to_back_packets_queue(self):
        path = NetworkPath(bandwidth=1000.0, one_way_delay=0.0)
        first, _ = path.transmit("up", 0.0, 500)
        second, _ = path.transmit("up", 0.0, 500)
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)

    def test_directions_independent(self):
        path = NetworkPath(bandwidth=1000.0, one_way_delay=0.0)
        path.transmit("up", 0.0, 1000)
        down, _ = path.transmit("down", 0.0, 500)
        assert down == pytest.approx(0.5)

    def test_fifo_per_direction(self):
        path = NetworkPath(bandwidth=10_000.0, one_way_delay=0.01)
        arrivals = [path.transmit("up", 0.0, 100)[0] for _ in range(20)]
        assert arrivals == sorted(arrivals)

    def test_asymmetric_bandwidth(self):
        path = NetworkPath(bandwidth=1000.0, down_bandwidth=4000.0,
                           one_way_delay=0.0)
        up, _ = path.transmit("up", 0.0, 1000)
        down, _ = path.transmit("down", 0.0, 1000)
        assert up == pytest.approx(1.0)
        assert down == pytest.approx(0.25)

    def test_rate_for_defaults_to_uplink(self):
        path = NetworkPath(bandwidth=1000.0)
        assert path.rate_for("down") == 1000.0

    def test_reset_clears_queue(self):
        path = NetworkPath(bandwidth=1000.0, one_way_delay=0.0)
        path.transmit("up", 0.0, 10_000)
        path.reset()
        arrival, _ = path.transmit("up", 0.0, 1000)
        assert arrival == pytest.approx(1.0)


class TestLossAndJitter:
    def test_zero_loss_always_delivers(self):
        path = NetworkPath(loss_rate=0.0)
        assert all(path.transmit("up", i * 1.0, 100)[1] for i in range(100))

    def test_empirical_loss_rate(self):
        path = NetworkPath(loss_rate=0.2, seed=42)
        outcomes = [path.transmit("up", i * 1.0, 100)[1] for i in range(5000)]
        assert 1.0 - np.mean(outcomes) == pytest.approx(0.2, abs=0.03)

    def test_jitter_perturbs_delay(self):
        path = NetworkPath(
            bandwidth=1e9, one_way_delay=0.1, jitter=0.02, seed=1
        )
        arrivals = [
            path.transmit("up", i * 10.0, 100)[0] - i * 10.0 for i in range(200)
        ]
        assert np.std(arrivals) > 0.005
        assert all(a >= 0 for a in arrivals)

    def test_deterministic_given_seed(self):
        a = NetworkPath(loss_rate=0.3, seed=7)
        b = NetworkPath(loss_rate=0.3, seed=7)
        out_a = [a.transmit("up", i * 1.0, 10)[1] for i in range(50)]
        out_b = [b.transmit("up", i * 1.0, 10)[1] for i in range(50)]
        assert out_a == out_b
