"""Tests for chunk-level performance analysis from logs (Section 4.1)."""

import numpy as np
import pytest

from repro.core import (
    chunk_transfer_times,
    device_gap,
    estimate_sending_windows,
    idle_rto_ratios_from_logs,
    restart_fraction,
    rtt_samples,
    window_concentration,
)
from repro.logs import DeviceType, Direction, LogRecord, RequestKind

KB = 1024


def chunk(ts=0.0, device=DeviceType.ANDROID, direction=Direction.STORE,
          volume=512 * KB, proc=1.0, tsrv=0.1, rtt=0.1, proxied=False,
          device_id="d1", user=1):
    return LogRecord(
        timestamp=ts,
        device_type=device,
        device_id=device_id,
        user_id=user,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
        processing_time=proc,
        server_time=tsrv,
        rtt=rtt,
        proxied=proxied,
    )


class TestTransferTimes:
    def test_filters(self):
        records = [
            chunk(device=DeviceType.ANDROID, proc=2.0),
            chunk(device=DeviceType.IOS, proc=1.0),
            chunk(device=DeviceType.ANDROID, direction=Direction.RETRIEVE),
            chunk(device=DeviceType.ANDROID, proxied=True),
        ]
        times = chunk_transfer_times(
            records, device_type=DeviceType.ANDROID, direction=Direction.STORE
        )
        assert times.size == 1
        assert times[0] == pytest.approx(1.9)

    def test_proxied_included_on_request(self):
        records = [chunk(proxied=True)]
        assert chunk_transfer_times(records, exclude_proxied=False).size == 1


class TestDeviceGap:
    def test_median_ratio(self):
        records = [
            chunk(device=DeviceType.ANDROID, proc=4.1, tsrv=0.0)
            for _ in range(10)
        ] + [
            chunk(device=DeviceType.IOS, proc=1.6, tsrv=0.0) for _ in range(10)
        ]
        gap = device_gap(records, Direction.STORE)
        assert gap.median_ratio == pytest.approx(4.1 / 1.6)

    def test_missing_device_rejected(self):
        records = [chunk(device=DeviceType.ANDROID)]
        with pytest.raises(ValueError):
            device_gap(records, Direction.STORE)


class TestRtt:
    def test_samples_extracted(self):
        records = [chunk(rtt=0.1), chunk(rtt=0.2), chunk(rtt=0.0)]
        samples = rtt_samples(records)
        assert sorted(samples) == [0.1, 0.2]


class TestSendingWindows:
    def test_window_limited_estimate(self):
        # ttran chosen so that swnd = vol * rtt / ttran = 64 KB exactly.
        volume = 512 * KB
        rtt = 0.1
        ttran = volume * rtt / (64 * KB)
        records = [chunk(volume=volume, proc=ttran + 0.1, tsrv=0.1, rtt=rtt)]
        windows = estimate_sending_windows(records)
        assert windows[0] == pytest.approx(64 * KB)

    def test_degenerate_records_skipped(self):
        records = [
            chunk(volume=0),
            chunk(rtt=0.0),
            chunk(proc=0.1, tsrv=0.1),  # zero ttran
        ]
        assert estimate_sending_windows(records).size == 0

    def test_direction_filter(self):
        records = [chunk(direction=Direction.RETRIEVE)]
        assert estimate_sending_windows(records).size == 0


class TestWindowConcentration:
    def test_concentrated_population(self):
        windows = np.concatenate(
            [np.full(80, 64 * KB), np.full(20, 20 * KB)]
        )
        result = window_concentration(windows)
        assert result.fraction_near_cap == pytest.approx(0.8)
        assert result.fraction_above_cap == 0.0
        assert result.median == pytest.approx(64 * KB)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_concentration(np.array([]))
        with pytest.raises(ValueError):
            window_concentration(np.array([1.0]), cap_bytes=0)


class TestIdleRatios:
    def make_pair(self, gap, tsrv=0.3, rtt=0.1, device_id="d1"):
        return [
            chunk(ts=0.0, tsrv=tsrv, proc=0.5, rtt=rtt, device_id=device_id),
            chunk(ts=gap, tsrv=tsrv, proc=0.5, rtt=rtt, device_id=device_id),
        ]

    def test_ratio_from_gap(self):
        # gap=2.0, prev proc=0.5 -> tclt=1.5; idle=0.3+1.5=1.8; rto=0.3.
        ratios = idle_rto_ratios_from_logs(self.make_pair(2.0))
        assert ratios.size == 1
        assert ratios[0] == pytest.approx(1.8 / 0.3)

    def test_long_gaps_treated_as_separate_flows(self):
        ratios = idle_rto_ratios_from_logs(self.make_pair(7200.0))
        assert ratios.size == 0

    def test_devices_not_mixed(self):
        records = self.make_pair(2.0, device_id="a")[:1] + self.make_pair(
            2.0, device_id="b"
        )[1:]
        assert idle_rto_ratios_from_logs(records).size == 0

    def test_restart_fraction(self):
        ratios = np.array([0.5, 1.5, 2.0, 0.8])
        assert restart_fraction(ratios) == pytest.approx(0.5)

    def test_restart_fraction_empty_rejected(self):
        with pytest.raises(ValueError):
            restart_fraction(np.array([]))
