"""Every experiment harness must run and reproduce the paper's shape.

These are the repository's acceptance tests: a failure here means the
reproduction drifted from the paper's qualitative findings.  They share one
memoized trace, so the marginal cost per experiment is the analysis alone.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.base import Check, ExperimentResult


@pytest.mark.parametrize(
    "module",
    ALL_EXPERIMENTS,
    ids=[m.__name__.rsplit(".", 1)[-1] for m in ALL_EXPERIMENTS],
)
def test_experiment_reproduces_paper_shape(module):
    result = module.run()
    assert isinstance(result, ExperimentResult)
    assert result.checks, "experiment must compare against the paper"
    failures = result.failures()
    assert not failures, "\n" + "\n".join(c.render() for c in failures)


class TestCheckSemantics:
    def test_close(self):
        assert Check("x", paper=1.0, measured=1.05, tolerance=0.1).ok()
        assert not Check("x", paper=1.0, measured=1.2, tolerance=0.1).ok()

    def test_ratio(self):
        assert Check("x", 10.0, 14.0, tolerance=0.5, kind="ratio").ok()
        assert Check("x", 10.0, 7.0, tolerance=0.5, kind="ratio").ok()
        assert not Check("x", 10.0, 16.0, tolerance=0.5, kind="ratio").ok()

    def test_one_sided(self):
        assert Check("x", 1.0, 2.0, kind="greater").ok()
        assert not Check("x", 1.0, 0.5, kind="greater").ok()
        assert Check("x", 1.0, 0.5, kind="less").ok()

    def test_info_never_fails(self):
        assert Check("x", 1.0, 99.0, kind="info").ok()

    def test_nan_fails(self):
        assert not Check("x", 1.0, float("nan"), tolerance=10.0).ok()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            Check("x", 1.0, 1.0, kind="banana").ok()

    def test_result_render_includes_status(self):
        result = ExperimentResult(experiment="T", title="demo")
        result.add_check("a", 1.0, 1.0, tolerance=0.1)
        assert "PASS" in result.render()
        result.add_check("b", 1.0, 9.0, tolerance=0.1)
        assert "FAIL" in result.render()
