"""Tests for correlated failure domains, overload coupling and retry storms.

Covers the ZoneConfig layer added on top of the independent fault model:
seeded zone partitions with shared crash windows, metadata-outage ->
front-end overload coupling, the retry-storm pressure feedback, the
out-of-zone failover preference — and the PR 2 compatibility guarantees
(schedule identity with all correlation knobs at zero, byte-identical
logs across processes for correlated plans).
"""

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultConfig,
    FaultPlan,
    Window,
    ZoneConfig,
    _poisson_windows,
    scaled_config,
)
from tests.test_service_faults import drive_workload, log_bytes

from repro.logs.schema import DeviceType
from repro.service import ServiceCluster


def correlated_config(rate=0.08, horizon=48 * 3600.0, **zone_overrides):
    defaults = dict(
        n_zones=2,
        zone_crash_rate=0.3,
        zone_mean_downtime=900.0,
        overload_factor=0.5,
        overload_recovery=60.0,
        pressure_per_failure=2.0,
        pressure_drain_rate=0.1,
        pressure_shed_scale=4.0,
    )
    defaults.update(zone_overrides)
    return FaultConfig.at_rate(
        rate, horizon=horizon, zones=ZoneConfig(**defaults)
    )


class TestZoneConfig:
    def test_default_is_benign(self):
        zones = ZoneConfig()
        assert not zones.enabled
        assert not FaultConfig.at_rate(0.05, zones=zones).correlated

    def test_enabled_by_any_channel(self):
        assert ZoneConfig(n_zones=2, zone_crash_rate=0.1).enabled
        assert ZoneConfig(overload_factor=0.3).enabled
        assert ZoneConfig(pressure_per_failure=1.0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ZoneConfig(n_zones=-1)
        with pytest.raises(ValueError):
            ZoneConfig(n_zones=0, zone_crash_rate=0.1)
        with pytest.raises(ValueError):
            ZoneConfig(n_zones=1, zone_crash_rate=-0.1)
        with pytest.raises(ValueError):
            ZoneConfig(n_zones=1, zone_mean_downtime=0.0)
        with pytest.raises(ValueError):
            ZoneConfig(overload_factor=1.5)
        with pytest.raises(ValueError):
            ZoneConfig(overload_recovery=-1.0)
        with pytest.raises(ValueError):
            ZoneConfig(pressure_per_failure=-0.5)
        with pytest.raises(ValueError):
            ZoneConfig(pressure_drain_rate=0.0)
        with pytest.raises(ValueError):
            ZoneConfig(pressure_shed_scale=0.0)

    def test_scaled_config_scales_zone_rate(self):
        base = correlated_config()
        double = scaled_config(base, 2.0)
        assert double.zones.zone_crash_rate == pytest.approx(
            base.zones.zone_crash_rate * 2
        )
        assert double.zones.n_zones == base.zones.n_zones
        assert double.zones.zone_mean_downtime == base.zones.zone_mean_downtime


class TestAtRateValidation:
    """Satellite bugfix: probabilities >= 1 fail fast with a clear message."""

    def test_rate_of_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            FaultConfig.at_rate(1.0)

    def test_rate_above_one_rejected(self):
        with pytest.raises(ValueError, match="per-request"):
            FaultConfig.at_rate(1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig.at_rate(-0.01)

    def test_rate_just_below_one_accepted(self):
        assert FaultConfig.at_rate(0.999).enabled


class _ScriptedRng:
    """Stands in for a Generator; replays a fixed exponential tape."""

    def __init__(self, draws):
        self.draws = list(draws)

    def exponential(self, scale):
        return self.draws.pop(0)


class TestPoissonWindowsRegression:
    """Satellite bugfix: a pushback landing at the horizon must end the
    schedule, not emit a degenerate ``Window(horizon, horizon)``."""

    def test_pushback_at_horizon_ends_schedule(self):
        # Arrival at 100, duration 950 clipped to the 1000s horizon, then
        # a (scripted, impossible-for-real-exponentials) negative
        # interarrival re-enters the clipped window: the pushback lands
        # exactly on the horizon and must terminate the schedule.
        rng = _ScriptedRng([100.0, 950.0, -850.0])
        windows = _poisson_windows(rng, 1.0, 600.0, 1000.0)
        assert windows == (Window(100.0, 1000.0),)

    def test_degenerate_duration_skipped(self):
        # A zero-length duration draw must not emit an empty window.
        rng = _ScriptedRng([100.0, 0.0, 50.0, 10.0, 1e9])
        windows = _poisson_windows(rng, 1.0, 600.0, 1000.0)
        assert windows == (Window(150.0, 160.0),)

    @given(
        rate=st.floats(0.01, 50.0),
        mean=st.floats(1.0, 5000.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_window_well_formed(self, rate, mean, seed):
        horizon = 24 * 3600.0
        windows = _poisson_windows(
            np.random.default_rng(seed), rate, mean, horizon
        )
        for w in windows:
            assert w.start < w.end <= horizon
        for prev, nxt in zip(windows, windows[1:]):
            assert prev.end <= nxt.start


class TestCorrelatedPlan:
    def make(self, seed=0, n_frontends=6, **zone_overrides):
        return FaultPlan(
            correlated_config(**zone_overrides),
            n_frontends=n_frontends,
            seed=seed,
        )

    def test_benign_zones_identical_to_no_zones(self):
        """All correlation knobs zero -> schedule-identical to PR 2."""
        base = FaultConfig.at_rate(0.08, horizon=48 * 3600.0)
        with_benign = FaultConfig.at_rate(
            0.08, horizon=48 * 3600.0, zones=ZoneConfig()
        )
        a = FaultPlan(base, n_frontends=4, seed=3)
        b = FaultPlan(with_benign, n_frontends=4, seed=3)
        assert not b.correlated
        assert b.zone_config is None
        for fid in range(4):
            assert a.crash_windows(fid) == b.crash_windows(fid)
            assert a.slow_windows(fid) == b.slow_windows(fid)
            assert a.effective_crash_windows(fid) == b.effective_crash_windows(fid)
        assert a.metadata_windows == b.metadata_windows
        assert b.zone_of(0) is None
        assert b.overload_level(100.0) == 0.0

    def test_arming_zones_preserves_independent_schedules(self):
        """Correlation streams spawn after the independent block, so the
        residual/slow/metadata schedules never move."""
        base = FaultPlan(
            FaultConfig.at_rate(0.08, horizon=48 * 3600.0),
            n_frontends=6,
            seed=5,
        )
        armed = self.make(seed=5)
        for fid in range(6):
            assert base.crash_windows(fid) == armed.crash_windows(fid)
            assert base.slow_windows(fid) == armed.slow_windows(fid)
        assert base.metadata_windows == armed.metadata_windows

    def test_zone_assignment_balanced_and_deterministic(self):
        plan = self.make(seed=9, n_frontends=8)
        zones = [plan.zone_of(fid) for fid in range(8)]
        assert sorted(zones) == [0, 0, 0, 0, 1, 1, 1, 1]
        again = self.make(seed=9, n_frontends=8)
        assert zones == [again.zone_of(fid) for fid in range(8)]

    def test_zone_window_downs_every_member(self):
        plan = self.make(seed=2, n_frontends=8)
        hit_any = False
        for zone in range(2):
            for window in plan.zone_windows(zone):
                mid = (window.start + window.end) / 2.0
                hit_any = True
                for fid in range(8):
                    if plan.zone_of(fid) == zone:
                        assert plan.zone_down(fid, mid)
                        assert plan.frontend_down(fid, mid)
                        assert plan.downtime_remaining(fid, mid) >= (
                            window.end - mid
                        )
        assert hit_any, "expected at least one zone window at this seed"

    def test_effective_windows_cover_both_sources(self):
        plan = self.make(seed=4, n_frontends=6)
        for fid in range(6):
            effective = plan.effective_crash_windows(fid)
            for w in effective:
                assert w.start < w.end
            for prev, nxt in zip(effective, effective[1:]):
                assert prev.end <= nxt.start
            def covered(t):
                return any(w.contains(t) for w in effective)
            for w in plan.crash_windows(fid):
                assert covered((w.start + w.end) / 2.0)
            for w in plan.zone_windows(plan.zone_of(fid)):
                assert covered((w.start + w.end) / 2.0)

    def test_reconstructed_plan_byte_identical_schedule(self):
        """Serial vs reconstructed: rebuilding the plan from the same
        (config, n_frontends, seed) reproduces every schedule byte."""
        a = self.make(seed=11, n_frontends=8)
        b = self.make(seed=11, n_frontends=8)
        blob_a = repr(
            (
                [a.effective_crash_windows(f) for f in range(8)],
                [a.zone_windows(z) for z in range(2)],
                [a.zone_of(f) for f in range(8)],
                a.metadata_windows,
            )
        ).encode()
        blob_b = repr(
            (
                [b.effective_crash_windows(f) for f in range(8)],
                [b.zone_windows(z) for z in range(2)],
                [b.zone_of(f) for f in range(8)],
                b.metadata_windows,
            )
        ).encode()
        assert hashlib.md5(blob_a).hexdigest() == hashlib.md5(blob_b).hexdigest()

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_frontends=st.integers(1, 9),
        n_zones=st.integers(1, 4),
        zone_rate=st.floats(0.05, 2.0),
        rate=st.floats(0.0, 0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_invariants_across_random_configs(
        self, seed, n_frontends, n_zones, zone_rate, rate
    ):
        config = FaultConfig.at_rate(
            rate,
            horizon=24 * 3600.0,
            zones=ZoneConfig(n_zones=n_zones, zone_crash_rate=zone_rate),
        )
        plan = FaultPlan(config, n_frontends=n_frontends, seed=seed)
        horizon = config.horizon
        zone_members = {z: [] for z in range(n_zones)}
        for fid in range(n_frontends):
            zone_members[plan.zone_of(fid)].append(fid)
            for source in (
                plan.crash_windows(fid),
                plan.slow_windows(fid),
                plan.effective_crash_windows(fid),
            ):
                for w in source:
                    assert w.start < w.end <= horizon
                for prev, nxt in zip(source, source[1:]):
                    assert prev.end <= nxt.start
        for zone in range(n_zones):
            for w in plan.zone_windows(zone):
                assert w.start < w.end <= horizon
                mid = (w.start + w.end) / 2.0
                for fid in zone_members[zone]:
                    assert plan.frontend_down(fid, mid)


class TestOverloadCoupling:
    def plan(self):
        config = FaultConfig(
            metadata_outage_rate=2.0,
            metadata_mean_downtime=120.0,
            horizon=24 * 3600.0,
            zones=ZoneConfig(overload_factor=0.5, overload_recovery=100.0),
        )
        return FaultPlan(config, n_frontends=2, seed=1)

    def test_full_factor_during_outage(self):
        plan = self.plan()
        windows = plan.metadata_windows
        assert windows, "expected metadata windows at this seed"
        w = windows[0]
        assert plan.overload_level((w.start + w.end) / 2.0) == 0.5

    def test_linear_decay_after_outage(self):
        plan = self.plan()
        w = plan.metadata_windows[0]
        quarter = plan.overload_level(w.end + 25.0)
        mid = plan.overload_level(w.end + 50.0)
        assert quarter == pytest.approx(0.5 * 0.75)
        assert mid == pytest.approx(0.25)
        assert plan.overload_level(w.end + 100.0) == 0.0

    def test_zero_far_from_outages(self):
        plan = self.plan()
        first = plan.metadata_windows[0]
        if first.start > 1.0:
            assert plan.overload_level(first.start - 1.0) == 0.0


class TestRetryStormPressure:
    def plan(self):
        config = FaultConfig(
            horizon=24 * 3600.0,
            zones=ZoneConfig(
                pressure_per_failure=2.0,
                pressure_drain_rate=0.1,
                pressure_shed_scale=4.0,
            ),
        )
        return FaultPlan(config, n_frontends=2, seed=0)

    def test_pressure_accumulates_and_drains(self):
        plan = self.plan()
        for _ in range(3):
            plan.note_failure_pressure(0, 100.0)
        assert plan.pressure_level(0, 100.0) == pytest.approx(6.0)
        assert plan.pressure_level(0, 130.0) == pytest.approx(3.0)
        assert plan.pressure_level(0, 100.0 + 600.0) == 0.0
        # Per-front-end state: front-end 1 is untouched.
        assert plan.pressure_level(1, 100.0) == 0.0

    def test_non_monotone_timestamps_never_rewind(self):
        plan = self.plan()
        plan.note_failure_pressure(0, 200.0)
        before = plan.pressure_level(0, 200.0)
        # An out-of-order earlier query must not resurrect pressure or
        # crash; it observes the state at the latest drain point.
        assert plan.pressure_level(0, 150.0) <= before

    def test_no_draws_at_zero_pressure(self):
        plan = self.plan()
        states = [rng.bit_generator.state for rng in plan._pressure_rngs]
        assert not plan.draw_pressure_shed(0, 50.0)
        assert not plan.draw_pressure_shed(1, 50.0)
        after = [rng.bit_generator.state for rng in plan._pressure_rngs]
        assert states == after

    def test_shed_probability_saturates_with_pressure(self):
        plan = self.plan()
        for _ in range(200):
            plan.note_failure_pressure(0, 500.0)
        sheds = sum(
            plan.draw_pressure_shed(0, 500.0) for _ in range(200)
        )
        # P = p / (p + scale) = 400/404 here: nearly every draw sheds.
        assert sheds > 150


class TestOutOfZoneFailover:
    def test_failover_prefers_other_zone(self):
        cluster = ServiceCluster(
            n_frontends=6,
            faults=correlated_config(),
            fault_seed=7,
        )
        client = cluster.new_client(1, "d1", DeviceType.ANDROID)
        plan = cluster.fault_plan
        for preferred in range(6):
            zone = plan.zone_of(preferred)
            shift = client._failover_shift(preferred, 0)
            landed = (preferred + shift) % 6
            assert plan.zone_of(landed) != zone

    def test_failover_without_zones_is_next_neighbour(self):
        cluster = ServiceCluster(
            n_frontends=4, faults=FaultConfig.at_rate(0.05), fault_seed=7
        )
        client = cluster.new_client(1, "d1", DeviceType.ANDROID)
        assert client._failover_shift(2, 0) == 1
        assert client._failover_shift(2, 1) == 2


class TestClusterIntegration:
    def test_zone_map_exposed(self):
        cluster = ServiceCluster(
            n_frontends=4, faults=correlated_config(), fault_seed=1
        )
        assert sorted(cluster.zone_map.values()) == [0, 0, 1, 1]
        plain = ServiceCluster(n_frontends=4)
        assert plain.zone_map == {}
        assert plain.frontends_down(100.0) == 0

    def test_zero_knob_zones_byte_identical_logs(self):
        """A deployed-but-benign ZoneConfig must not move a single byte."""
        plain = ServiceCluster(
            n_frontends=3, faults=FaultConfig.at_rate(0.08), fault_seed=17
        )
        benign = ServiceCluster(
            n_frontends=3,
            faults=FaultConfig.at_rate(0.08, zones=ZoneConfig()),
            fault_seed=17,
        )
        drive_workload(plain)
        drive_workload(benign)
        assert log_bytes(plain) == log_bytes(benign)
        assert plain.fault_stats.as_dict() == benign.fault_stats.as_dict()
        assert benign.fault_stats.zone_crash_rejections == 0
        assert benign.fault_stats.pressure_sheds == 0
        assert benign.fault_stats.overload_sheds == 0

    def correlated_cluster(self):
        return ServiceCluster(
            n_frontends=4,
            faults=correlated_config(rate=0.06, zone_crash_rate=1.0),
            fault_seed=23,
            frontend_capacity=32,
        )

    def test_correlated_replay_deterministic_in_process(self):
        a, b = self.correlated_cluster(), self.correlated_cluster()
        drive_workload(a)
        drive_workload(b)
        assert log_bytes(a) == log_bytes(b)
        assert a.fault_stats.as_dict() == b.fault_stats.as_dict()

    def test_correlated_byte_identical_across_processes(self):
        """Correlated plans inherit the cross-process determinism contract:
        a fresh interpreter with a different hash salt reproduces the
        access log byte for byte."""
        snippet = (
            "from tests.test_fault_zones import TestClusterIntegration\n"
            "from tests.test_service_faults import drive_workload, log_bytes\n"
            "import hashlib\n"
            "cluster = TestClusterIntegration().correlated_cluster()\n"
            "drive_workload(cluster)\n"
            "print(hashlib.md5(log_bytes(cluster).encode()).hexdigest())\n"
        )
        cluster = self.correlated_cluster()
        drive_workload(cluster)
        local = hashlib.md5(log_bytes(cluster).encode()).hexdigest()
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join((os.path.join(repo, "src"), repo))
        env["PYTHONHASHSEED"] = "999"  # force a different string salt
        remote = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=repo, check=True,
        ).stdout.strip()
        assert remote == local


class TestR3Configs:
    def test_equal_aggregate_crash_budget(self):
        from repro.experiments.r3_correlated_failures import (
            build_configs,
            crash_budget,
        )

        independent, correlated = build_configs()
        assert crash_budget(correlated) == pytest.approx(
            crash_budget(independent)
        )
        assert not independent.correlated
        assert correlated.correlated

    def test_peak_down_fraction_counts_overlap(self):
        from repro.experiments.r3_correlated_failures import (
            build_configs,
            peak_down_fraction,
        )

        plan = FaultPlan(build_configs()[1], n_frontends=8, seed=0)
        peak = peak_down_fraction(plan)
        assert 0.0 <= peak <= 1.0
        if any(plan.zone_windows(z) for z in range(2)):
            assert peak >= 0.5  # a zone window downs half the fleet
