"""Tests for chunking and content manifests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import CHUNK_SIZE
from repro.service import FileManifest, build_manifest, chunk_sizes, content_md5


class TestChunkSizes:
    def test_exact_multiple(self):
        assert chunk_sizes(2 * CHUNK_SIZE) == [CHUNK_SIZE, CHUNK_SIZE]

    def test_remainder_tail(self):
        sizes = chunk_sizes(CHUNK_SIZE + 100)
        assert sizes == [CHUNK_SIZE, 100]

    def test_small_file_single_chunk(self):
        assert chunk_sizes(5000) == [5000]

    def test_zero_byte_file_has_no_chunks(self):
        """Empty files are metadata-only: they split into zero chunks."""
        assert chunk_sizes(0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(-1)
        with pytest.raises(ValueError):
            chunk_sizes(100, chunk_size=0)

    @given(size=st.integers(1, 50 * CHUNK_SIZE))
    @settings(max_examples=200)
    def test_sizes_sum_and_bounds(self, size):
        sizes = chunk_sizes(size)
        assert sum(sizes) == size
        assert all(0 < s <= CHUNK_SIZE for s in sizes)
        # Only the final chunk may be short.
        assert all(s == CHUNK_SIZE for s in sizes[:-1])


class TestContentMd5:
    def test_deterministic(self):
        assert content_md5(b"x") == content_md5(b"x")

    def test_distinct_for_distinct_content(self):
        assert content_md5(b"x") != content_md5(b"y")

    def test_hex_shape(self):
        digest = content_md5(b"content")
        assert len(digest) == 32
        int(digest, 16)


class TestManifest:
    def test_build_manifest_consistency(self):
        manifest = build_manifest("a.jpg", b"seed", 3 * CHUNK_SIZE + 10)
        assert manifest.n_chunks == 4
        assert sum(manifest.chunk_sizes) == manifest.size
        assert len(set(manifest.chunk_md5s)) == 4

    def test_same_content_same_hashes(self):
        a = build_manifest("a.jpg", b"seed", CHUNK_SIZE * 2)
        b = build_manifest("b.jpg", b"seed", CHUNK_SIZE * 2)
        assert a.file_md5 == b.file_md5
        assert a.chunk_md5s == b.chunk_md5s

    def test_different_content_different_hashes(self):
        a = build_manifest("a.jpg", b"seed-1", CHUNK_SIZE)
        b = build_manifest("a.jpg", b"seed-2", CHUNK_SIZE)
        assert a.file_md5 != b.file_md5

    def test_manifest_validation(self):
        with pytest.raises(ValueError):
            FileManifest(
                name="x", size=10, file_md5="a",
                chunk_md5s=("h1", "h2"), chunk_sizes=(10,),
            )
        with pytest.raises(ValueError):
            FileManifest(
                name="x", size=10, file_md5="a",
                chunk_md5s=("h1",), chunk_sizes=(5,),
            )
