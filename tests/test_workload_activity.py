"""Tests for stretched-exponential activity assignment."""

import numpy as np
import pytest

from repro.stats import fit_stretched_exponential
from repro.workload import ActivityModel, assign_store_retrieve_counts
from repro.workload.activity import rank_activity_counts


class TestRankCounts:
    def test_counts_at_least_one(self):
        counts = rank_activity_counts(
            1000, 0.2, 0.448, np.random.default_rng(0)
        )
        assert counts.min() >= 1

    def test_rank_order_without_jitter(self):
        counts = rank_activity_counts(
            1000, 0.2, 0.448, np.random.default_rng(0), jitter_sigma=0.0
        )
        assert list(counts) == sorted(counts, reverse=True)

    def test_top_user_far_more_active(self):
        counts = rank_activity_counts(
            5000, 0.2, 0.448, np.random.default_rng(0), jitter_sigma=0.0
        )
        assert counts[0] > 100 * counts[-1]

    def test_bottom_user_near_one_file(self):
        counts = rank_activity_counts(
            5000, 0.2, 0.448, np.random.default_rng(0), jitter_sigma=0.0
        )
        assert counts[-1] <= 3

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rank_activity_counts(0, 0.2, 0.448, rng)
        with pytest.raises(ValueError):
            rank_activity_counts(10, 0.0, 0.448, rng)
        with pytest.raises(ValueError):
            rank_activity_counts(10, 0.2, 0.0, rng)

    def test_planted_c_recoverable(self):
        counts = rank_activity_counts(
            20_000, 0.2, 0.448, np.random.default_rng(1), jitter_sigma=0.1
        )
        fit = fit_stretched_exponential(counts.astype(float))
        assert fit.c == pytest.approx(0.2, abs=0.06)
        assert fit.r_squared > 0.98


class TestAssignment:
    def test_shapes(self):
        stores, retrieves = assign_store_retrieve_counts(
            100, 50, ActivityModel(), np.random.default_rng(0)
        )
        assert stores.shape == (100,)
        assert retrieves.shape == (50,)

    def test_empty_populations(self):
        stores, retrieves = assign_store_retrieve_counts(
            0, 0, ActivityModel(), np.random.default_rng(0)
        )
        assert stores.size == 0
        assert retrieves.size == 0

    def test_shuffled_not_rank_ordered(self):
        stores, _ = assign_store_retrieve_counts(
            2000, 0, ActivityModel(), np.random.default_rng(2)
        )
        assert list(stores) != sorted(stores, reverse=True)

    def test_retrieval_more_skewed(self):
        # c=0.15 (retrieve) produces a heavier top relative to the median
        # than c=0.2 (store).
        rng = np.random.default_rng(3)
        stores, retrieves = assign_store_retrieve_counts(
            20_000, 20_000, ActivityModel(), rng
        )
        store_skew = stores.max() / np.median(stores)
        retrieve_skew = retrieves.max() / np.median(retrieves)
        assert retrieve_skew > store_skew
