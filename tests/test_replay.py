"""Replay battery: scheduler properties, determinism, reconciliation.

Three layers, mirroring the ISSUE 6 satellite list:

* **Scheduler properties** (Hypothesis) — inter-arrival times scale
  exactly by ``1/speedup`` for power-of-two speedups (to one ulp for
  arbitrary ones), and arrival order is the *stable* sort of the trace.
* **Determinism** — same ``(trace, config, seed)`` yields byte-identical
  access logs and telemetry JSON, in-process and across interpreters
  with different hash salts (the CI replay-smoke job re-checks the CLI
  path).
* **Reconciliation** — replays under R2-style independent and R3-style
  correlated fault plans must tie the telemetry's result-code tallies to
  ``ServiceCluster.fault_stats`` exactly, attribution counters included;
  and at offered rates the cluster can absorb, open- and closed-loop
  replays are request-identical.
"""

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, RetryPolicy
from repro.logs.schema import Direction, DeviceType, ResultCode
from repro.service.cluster import ServiceCluster
from repro.service.replay import (
    ReplayOp,
    natural_rate,
    replay_trace,
    resolve_speedup,
    schedule_arrivals,
    synthetic_replay_trace,
)
from tests.helpers import replay_fingerprint

TRACE_SEED = 20160814


def small_trace(n_users: int = 6) -> tuple[ReplayOp, ...]:
    return synthetic_replay_trace(n_users, TRACE_SEED)


def arrivals(trace) -> np.ndarray:
    return np.array([op.arrival for op in trace])


class TestReplayOp:
    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            ReplayOp(
                arrival=-1.0,
                user_id=1,
                device_id="m1",
                device_type=DeviceType.ANDROID,
                direction=Direction.RETRIEVE,
                name="a",
            )

    def test_rejects_store_without_size(self):
        with pytest.raises(ValueError):
            ReplayOp(
                arrival=0.0,
                user_id=1,
                device_id="m1",
                device_type=DeviceType.ANDROID,
                direction=Direction.STORE,
                name="a",
            )


class TestSyntheticTrace:
    def test_pure_function_of_inputs(self):
        assert small_trace() == small_trace()

    def test_sorted_and_mixed(self):
        trace = small_trace()
        times = arrivals(trace)
        assert (np.diff(times) >= 0).all()
        directions = {op.direction for op in trace}
        assert directions == {Direction.STORE, Direction.RETRIEVE}

    def test_adding_users_never_perturbs_existing_ones(self):
        """Per-user streams come from one spawned child block, so the
        ops of users 1..4 are identical whether 4 or 12 users exist."""
        few = [op for op in synthetic_replay_trace(4, TRACE_SEED)]
        many = [
            op
            for op in synthetic_replay_trace(12, TRACE_SEED)
            if op.user_id <= 4
        ]
        assert few == many

    def test_retrieves_reference_earlier_stores(self):
        trace = small_trace(12)
        stored: set[tuple[int, str]] = set()
        for op in trace:
            if op.direction is Direction.STORE:
                stored.add((op.user_id, op.name))
            else:
                assert (op.user_id, op.name) in stored

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_replay_trace(0, 1)
        with pytest.raises(ValueError):
            synthetic_replay_trace(2, 1, retrieve_fraction=1.0)


class TestScheduler:
    @given(
        times=st.lists(
            # Power-of-two scaling is lossless only while the scaled
            # value stays in the normal range: arrivals within a few
            # ulps of DBL_MIN can underflow into subnormals (fewer
            # mantissa bits) and round.  Timestamps are seconds, so pin
            # the domain to zero-or-normal magnitudes far from that edge.
            st.floats(0.0, 1e6, allow_nan=False, allow_subnormal=False)
            .map(lambda t: 0.0 if t < 1e-300 else t),
            min_size=2, max_size=50,
        ),
        exponent=st.integers(-3, 8),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_of_two_speedup_scales_gaps_exactly(self, times, exponent):
        """IEEE scaling by 2**k is lossless, so inter-arrival times obey
        ``diff(scheduled) == diff(trace) / speedup`` bit for bit."""
        speedup = float(2.0**exponent)
        trace = tuple(
            ReplayOp(
                arrival=t,
                user_id=1,
                device_id="m1",
                device_type=DeviceType.ANDROID,
                direction=Direction.RETRIEVE,
                name="a",
            )
            for t in sorted(times)
        )
        scheduled = schedule_arrivals(trace, speedup=speedup)
        got = np.diff(arrivals(scheduled))
        want = np.diff(arrivals(trace)) / speedup
        assert np.array_equal(got, want)

    @given(
        times=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=2, max_size=50
        ),
        speedup=st.floats(0.01, 1000.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_speedup_scales_gaps_to_float_tolerance(
        self, times, speedup
    ):
        trace = tuple(
            ReplayOp(
                arrival=t,
                user_id=1,
                device_id="m1",
                device_type=DeviceType.ANDROID,
                direction=Direction.RETRIEVE,
                name="a",
            )
            for t in sorted(times)
        )
        scheduled = schedule_arrivals(trace, speedup=speedup)
        got = np.diff(arrivals(scheduled))
        want = np.diff(arrivals(trace)) / speedup
        # The scheduler rescales timestamps, not gaps, so each diff
        # carries the rounding of two scaled *timestamps*: the absolute
        # error bound is a few ulps of the largest scaled arrival, not
        # of the gap itself.
        atol = 4 * np.finfo(float).eps * max(np.max(arrivals(scheduled)), 1.0)
        assert np.allclose(got, want, rtol=1e-12, atol=atol)

    @given(
        arrival_ranks=st.lists(st.integers(0, 3), min_size=1, max_size=30)
    )
    @settings(max_examples=60, deadline=None)
    def test_order_is_stable_sort_of_trace_timestamps(self, arrival_ranks):
        """Equal arrivals keep their trace order (user_id encodes it)."""
        trace = tuple(
            ReplayOp(
                arrival=float(rank),
                user_id=index,
                device_id=f"m{index}",
                device_type=DeviceType.ANDROID,
                direction=Direction.RETRIEVE,
                name="a",
            )
            for index, rank in enumerate(arrival_ranks)
        )
        scheduled = schedule_arrivals(trace, speedup=2.0)
        expected = sorted(
            range(len(trace)), key=lambda i: trace[i].arrival
        )
        assert [op.user_id for op in scheduled] == expected

    def test_rate_targets_mean_offered_rate(self):
        trace = small_trace()
        scheduled = schedule_arrivals(trace, rate=4.0)
        assert natural_rate(scheduled) == pytest.approx(4.0)
        assert resolve_speedup(trace, rate=4.0) == pytest.approx(
            4.0 / natural_rate(trace)
        )

    def test_validation(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            schedule_arrivals(trace, speedup=0.0)
        with pytest.raises(ValueError):
            schedule_arrivals(trace, rate=-1.0)
        with pytest.raises(ValueError):
            resolve_speedup((), rate=1.0)  # no span to target

    def test_degenerate_traces(self):
        assert natural_rate(()) == 0.0
        assert natural_rate(small_trace()[:1]) == 0.0

    def test_rate_on_single_op_trace_names_the_cause(self):
        # A single operation has no span, so no rate can be targeted;
        # the error must say *why* instead of dividing by zero.
        with pytest.raises(ValueError, match="no measurable rate"):
            resolve_speedup(small_trace()[:1], rate=1.0)

    def test_rate_on_zero_span_trace_names_the_cause(self):
        first = small_trace()[0]
        zero_span = (first, first)  # two ops, identical arrivals
        with pytest.raises(ValueError, match="no measurable rate"):
            resolve_speedup(zero_span, rate=1.0)


def fault_free_cluster() -> ServiceCluster:
    return ServiceCluster(n_frontends=2, frontend_capacity=8)


def faulted_cluster(config: FaultConfig) -> ServiceCluster:
    return ServiceCluster(
        n_frontends=2,
        faults=config,
        fault_seed=7,
        frontend_capacity=8,
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay=0.5, max_delay=20.0, multiplier=2.0
        ),
    )


def r4_config() -> FaultConfig:
    from repro.experiments.r4_open_loop import correlated_config

    return correlated_config()


class TestReplayDeterminism:
    def test_same_seed_byte_identical(self):
        trace = small_trace()
        first = replay_trace(
            trace, faulted_cluster(r4_config()), rate=8.0, seed=3
        )
        second = replay_trace(
            trace, faulted_cluster(r4_config()), rate=8.0, seed=3
        )
        assert replay_fingerprint(first) == replay_fingerprint(second)
        assert first.snapshot().to_json() == second.snapshot().to_json()

    def test_different_seed_diverges(self):
        trace = small_trace()
        first = replay_trace(trace, fault_free_cluster(), speedup=2.0, seed=1)
        second = replay_trace(trace, fault_free_cluster(), speedup=2.0, seed=2)
        assert (
            replay_fingerprint(first)["log"]
            != replay_fingerprint(second)["log"]
        )

    def test_byte_identical_across_processes(self):
        """A fresh interpreter with a different hash salt reproduces both
        the access log and the telemetry JSON byte for byte."""
        snippet = (
            "from tests.test_replay import (small_trace, faulted_cluster,"
            " r4_config)\n"
            "from tests.helpers import replay_fingerprint\n"
            "from repro.service.replay import replay_trace\n"
            "result = replay_trace(small_trace(), faulted_cluster("
            "r4_config()), rate=8.0, seed=3)\n"
            "fp = replay_fingerprint(result)\n"
            "print(fp['log'], fp['telemetry'])\n"
        )
        local = replay_trace(
            small_trace(), faulted_cluster(r4_config()), rate=8.0, seed=3
        )
        fp = replay_fingerprint(local)
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join((os.path.join(repo, "src"), repo))
        env["PYTHONHASHSEED"] = "999"  # force a different string salt
        remote = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=repo, check=True,
        ).stdout.split()
        assert remote == [fp["log"], fp["telemetry"]]


class TestReplayMechanics:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            replay_trace(small_trace(), fault_free_cluster(), mode="batch")

    def test_empty_trace(self):
        result = replay_trace((), fault_free_cluster())
        assert result.ops_total == 0
        assert result.records == ()
        assert result.snapshot().requests["total"] == 0

    def test_unresolvable_retrieve_skipped(self):
        trace = (
            ReplayOp(
                arrival=0.0,
                user_id=1,
                device_id="m1",
                device_type=DeviceType.ANDROID,
                direction=Direction.RETRIEVE,
                name="never-stored",
            ),
        )
        result = replay_trace(trace, fault_free_cluster())
        assert result.ops_total == 0
        assert result.ops_skipped == 1

    def test_all_ops_complete_fault_free(self):
        trace = small_trace()
        result = replay_trace(trace, fault_free_cluster(), speedup=2.0)
        assert result.ops_aborted == 0
        assert result.ops_completed == result.ops_total
        labels = {op["label"] for op in result.snapshot().operations}
        assert labels == {"store", "retrieve"}

    def test_open_and_closed_loop_match_below_capacity(self):
        """At offered rates the cluster absorbs, open-loop scheduling is
        request-identical to the historical closed-loop semantics.

        Slowed to 0.25x so every inter-arrival gap (>= 80s) strictly
        exceeds the longest fault-free operation: then ``clock =
        arrival`` and ``clock = max(clock, arrival)`` coincide at every
        step and the two modes must agree byte for byte.
        """
        trace = small_trace()
        open_run = replay_trace(
            trace, fault_free_cluster(), speedup=0.25, mode="open", seed=3
        )
        closed_run = replay_trace(
            trace, fault_free_cluster(), speedup=0.25, mode="closed", seed=3
        )
        assert replay_fingerprint(open_run) == replay_fingerprint(closed_run)


class TestReconciliation:
    @pytest.mark.parametrize(
        "plan",
        ["r2-independent", "r3-correlated"],
    )
    def test_counters_reconcile_exactly(self, plan):
        if plan == "r2-independent":
            config = FaultConfig.at_rate(0.05, horizon=40 * 3600.0)
        else:
            config = r4_config()
        cluster = faulted_cluster(config)
        result = replay_trace(
            small_trace(12), cluster, rate=8.0, seed=3
        )
        stats = cluster.fault_stats
        report = result.telemetry.reconcile(stats)
        assert report["matched"], report
        # The umbrella equalities, spelled out.
        telemetry = result.telemetry
        assert telemetry.result_count(ResultCode.SHED) == stats.shed_requests
        assert (
            telemetry.result_count(ResultCode.UNAVAILABLE)
            == stats.crash_rejections
        )
        assert (
            telemetry.result_count(ResultCode.SERVER_ERROR)
            == stats.injected_errors
        )
        assert telemetry.result_count(ResultCode.TIMEOUT) == stats.timeouts
        # Attribution counters never exceed their umbrellas.
        assert (
            stats.overload_sheds + stats.pressure_sheds
            <= stats.shed_requests
        )
        assert stats.zone_crash_rejections <= stats.crash_rejections

    def test_correlated_overload_sheds_are_observed(self):
        """The R3-style plan at high offered rate actually sheds, so the
        reconciliation above is not vacuous."""
        cluster = faulted_cluster(r4_config())
        result = replay_trace(small_trace(12), cluster, rate=8.0, seed=3)
        assert result.telemetry.result_count(ResultCode.SHED) > 0
        assert result.telemetry.shed_rate > 0.0

    def test_log_digest_matches_r3_idiom(self):
        """ReplayResult.log_digest is the same md5-over-TSV digest the R3
        experiment and the CLI print, so CI can cmp the two paths."""
        from repro.logs.io import record_to_tsv

        result = replay_trace(small_trace(), fault_free_cluster(), seed=1)
        want = hashlib.md5(
            "\n".join(record_to_tsv(r) for r in result.records).encode()
        ).hexdigest()
        assert result.log_digest() == want
