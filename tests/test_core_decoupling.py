"""Tests for the metadata/data decoupling analysis."""

import pytest

from repro.core.decoupling import (
    fine_grained_peak_to_mean,
    session_front_loading,
)
from repro.core.sessions import sessionize_user
from repro.logs import DeviceType, Direction, LogRecord, RequestKind


def op(ts, user=1):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=Direction.STORE,
    )


def chunk(ts, volume=1000, proc=0.0):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=Direction.STORE,
        volume=volume,
        processing_time=proc,
    )


def front_loaded_session():
    """Two ops at t=0..1, transfers until t=100."""
    records = [op(0.0), op(1.0), chunk(5.0), chunk(50.0), chunk(100.0)]
    return list(sessionize_user(records))[0]


def spread_session():
    """Ops and chunks interleaved over the session."""
    records = [op(0.0), chunk(30.0), op(60.0), chunk(100.0)]
    return list(sessionize_user(records))[0]


class TestFrontLoading:
    def test_front_loaded_sessions(self):
        front = session_front_loading([front_loaded_session()])
        assert front.ops_in_first_decile == pytest.approx(1.0)
        assert front.bytes_in_first_decile == pytest.approx(1 / 3)
        assert front.asymmetry == pytest.approx(3.0)

    def test_spread_session(self):
        front = session_front_loading([spread_session()])
        assert front.ops_in_first_decile == pytest.approx(0.5)
        assert front.bytes_in_first_decile == pytest.approx(0.0)

    def test_single_op_sessions_excluded(self):
        single = list(sessionize_user([op(0.0), chunk(10.0)]))[0]
        with pytest.raises(ValueError):
            session_front_loading([single])

    def test_decile_validated(self):
        with pytest.raises(ValueError):
            session_front_loading([front_loaded_session()], decile=0.0)

    def test_mixed_population(self):
        front = session_front_loading(
            [front_loaded_session(), spread_session()]
        )
        assert front.n_sessions == 2
        assert 0.5 < front.ops_in_first_decile < 1.0


class TestPeakToMean:
    def test_profiles_computed(self):
        records = (
            [op(0.0), op(1.0), op(2.0)]
            + [chunk(t * 60.0) for t in range(10)]
        )
        ops_profile, bytes_profile = fine_grained_peak_to_mean(records)
        # All ops in one minute bin -> peak == mean over one active bin.
        assert ops_profile.active_bins == 1
        assert ops_profile.peak_to_mean == pytest.approx(1.0)
        assert bytes_profile.active_bins == 10

    def test_spiky_ops_vs_flat_bytes(self):
        records = [op(float(i)) for i in range(20)]  # one bursty minute
        records += [op(3600.0)]  # a lone op later
        records += [chunk(t * 60.0, volume=100) for t in range(60)]
        ops_profile, bytes_profile = fine_grained_peak_to_mean(records)
        assert ops_profile.peak_to_mean > bytes_profile.peak_to_mean

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            fine_grained_peak_to_mean([op(0.0)])

    def test_bin_validated(self):
        with pytest.raises(ValueError):
            fine_grained_peak_to_mean([op(0.0), chunk(1.0)], bin_seconds=0)
