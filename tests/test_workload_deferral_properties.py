"""Property-based invariants of the deferral policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import DeviceType, Direction, LogRecord, RequestKind
from repro.workload import DeferralPolicy

HOUR = 3600.0
DAY = 86_400.0


def chunk(ts, direction=Direction.STORE, volume=100):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
    )


timestamps = st.lists(
    st.floats(0, 7 * DAY - 1, allow_nan=False), min_size=1, max_size=80
)
policies = st.builds(
    DeferralPolicy,
    peak_hours=st.sets(st.integers(0, 23), min_size=1, max_size=5).map(tuple),
    target_hour=st.integers(0, 9),
    window_hours=st.floats(1.0, 6.0),
    defer_fraction=st.floats(0.0, 1.0),
)


@given(times=timestamps, policy=policies, seed=st.integers(0, 100))
@settings(max_examples=150, deadline=None)
def test_volume_and_count_conserved(times, policy, seed):
    records = [chunk(t) for t in times]
    out = list(policy.apply(records, seed=seed))
    assert len(out) == len(records)
    assert sum(r.volume for r in out) == sum(r.volume for r in records)


@given(times=timestamps, policy=policies, seed=st.integers(0, 100))
@settings(max_examples=150, deadline=None)
def test_deferred_records_land_in_target_window(times, policy, seed):
    records = [chunk(t) for t in times]
    for original, moved in zip(records, policy.apply(records, seed=seed)):
        if moved.timestamp == original.timestamp:
            continue
        # Moved: must be the next day, inside the replay window.
        day = int(original.timestamp // DAY)
        window_start = (day + 1) * DAY + policy.target_hour * HOUR
        window_end = window_start + policy.window_hours * HOUR
        assert window_start <= moved.timestamp < window_end
        # And the original must have been in a peak hour.
        hour = int((original.timestamp % DAY) // HOUR)
        assert hour in policy.peak_hours


@given(times=timestamps, policy=policies, seed=st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_never_moves_retrievals(times, policy, seed):
    records = [chunk(t, direction=Direction.RETRIEVE) for t in times]
    out = list(policy.apply(records, seed=seed))
    assert all(o.timestamp == r.timestamp for o, r in zip(out, records))


@given(times=timestamps, seed=st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_full_fraction_moves_every_peak_record(times, seed):
    policy = DeferralPolicy(peak_hours=(22,), defer_fraction=1.0)
    records = [chunk(t) for t in times]
    for original, moved in zip(records, policy.apply(records, seed=seed)):
        hour = int((original.timestamp % DAY) // HOUR)
        if hour == 22:
            assert moved.timestamp != original.timestamp
        else:
            assert moved.timestamp == original.timestamp
