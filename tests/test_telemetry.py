"""Telemetry battery: P² estimator equivalence, snapshots, SLOs.

The streaming estimator's contract is *rank* accuracy: the value it
reports for quantile ``q`` must sit at empirical rank ``q ± 2.5pp`` of
the observed samples (value error can be arbitrarily large on bimodal
data, where a hair of rank error jumps between modes — which is exactly
why the bound is stated in rank space; see docs/TELEMETRY.md).  Small
series (n <= 5) must match ``numpy.percentile`` exactly.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.schema import ResultCode
from repro.service.telemetry import (
    QUANTILE_LABELS,
    TRACKED_QUANTILES,
    LatencySeries,
    P2Quantile,
    SloPolicy,
    SloThreshold,
    TelemetryCollector,
)

#: Documented rank-error bound for the P² estimates (docs/TELEMETRY.md).
RANK_BOUND = 0.025


def rank_error(samples: np.ndarray, q: float, value: float) -> float:
    """Distance from ``q`` to the empirical-rank interval of ``value``.

    With ties/discrete masses the value occupies a rank *interval*
    ``[#(x < v)/n, #(x <= v)/n]``; the error is zero when ``q`` falls
    inside it (the estimate is as good as any exact quantile).
    """
    n = len(samples)
    low = float(np.count_nonzero(samples < value)) / n
    high = float(np.count_nonzero(samples <= value)) / n
    if low <= q <= high:
        return 0.0
    return min(abs(q - low), abs(q - high))


def p2_estimates(samples) -> dict[float, float]:
    estimators = {q: P2Quantile(q) for q in TRACKED_QUANTILES}
    for x in samples:
        for estimator in estimators.values():
            estimator.add(x)
    return {q: estimator.value for q, estimator in estimators.items()}


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_tiny_series_exact(self, n):
        """n <= k: the estimate is numpy.percentile, not an approximation."""
        rng = np.random.default_rng(7)
        samples = rng.exponential(3.0, size=n)
        for q, value in p2_estimates(samples).items():
            exact = float(np.percentile(samples, q * 100.0))
            assert value == pytest.approx(exact, abs=1e-12), (n, q)

    def test_constant_series_exact(self):
        samples = np.full(2000, 4.25)
        for q, value in p2_estimates(samples).items():
            assert value == 4.25, q

    @pytest.mark.parametrize(
        "shape,sampler",
        [
            ("uniform", lambda rng: rng.uniform(0.0, 10.0, 5000)),
            ("heavy-tail", lambda rng: rng.lognormal(0.0, 2.0, 5000)),
            (
                "bimodal",
                lambda rng: rng.permutation(
                    np.concatenate(
                        [
                            rng.normal(10.0, 1.0, 2500),
                            rng.normal(1000.0, 1.0, 2500),
                        ]
                    )
                ),
            ),
        ],
    )
    def test_adversarial_shapes_within_rank_bound(self, shape, sampler):
        rng = np.random.default_rng(20160814)
        samples = sampler(rng)
        for q, value in p2_estimates(samples).items():
            error = rank_error(samples, q, value)
            assert error <= RANK_BOUND, (shape, q, value, error)

    def test_sorted_and_reversed_input_within_rank_bound(self):
        """Monotone input order is the classic P² stress case."""
        samples = np.arange(1.0, 2001.0)
        for ordered in (samples, samples[::-1]):
            for q, value in p2_estimates(ordered).items():
                assert rank_error(samples, q, value) <= RANK_BOUND, q

    @given(
        values=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=200
        ),
        q_index=st.integers(0, len(TRACKED_QUANTILES) - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_estimate_bounded_by_observed_range(self, values, q_index):
        estimator = P2Quantile(TRACKED_QUANTILES[q_index])
        for x in values:
            estimator.add(x)
        assert min(values) <= estimator.value <= max(values)

    def test_deterministic_for_same_sequence(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(1.0, 500)
        assert p2_estimates(samples) == p2_estimates(samples)


class TestLatencySeries:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencySeries("store").add(-0.1)

    def test_exact_percentiles_match_numpy(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(0.0, 1.0, 400)
        series = LatencySeries("store")
        for x in samples:
            series.add(float(x))
        exact = series.percentiles_exact()
        for label, q in zip(QUANTILE_LABELS, TRACKED_QUANTILES):
            assert exact[label] == pytest.approx(
                float(np.percentile(samples, q * 100.0))
            )

    def test_streaming_mode_has_no_samples_but_valid_percentiles(self):
        series = LatencySeries("store", keep_samples=False)
        rng = np.random.default_rng(12)
        samples = rng.uniform(0.0, 5.0, 1000)
        for x in samples:
            series.add(float(x))
        assert all(math.isnan(v) for v in series.percentiles_exact().values())
        streaming = series.percentiles()
        for label, q in zip(QUANTILE_LABELS, TRACKED_QUANTILES):
            assert rank_error(samples, q, streaming[label]) <= RANK_BOUND

    def test_empty_series_stats_are_nan(self):
        series = LatencySeries("store")
        assert math.isnan(series.mean)
        assert math.isnan(series.max)


class TestSloPolicy:
    def test_parse_full_spec(self):
        policy = SloPolicy.parse("p99=5.0, p50=1, shed=0.01, fail=0.05")
        assert policy.latency == (
            SloThreshold("p99", 5.0),
            SloThreshold("p50", 1.0),
        )
        assert policy.max_shed_rate == 0.01
        assert policy.max_failure_rate == 0.05

    @pytest.mark.parametrize(
        "spec", ["p42=1.0", "p99=fast", "shed=-0.1", "latency=1"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SloPolicy.parse(spec)

    def test_evaluation_flags_violations(self):
        collector = TelemetryCollector()
        collector.record_operation("store", 2.0)
        snap = collector.snapshot(SloPolicy.parse("p99=1.0"))
        assert not snap.slo_ok
        snap = collector.snapshot(SloPolicy.parse("p99=3.0"))
        assert snap.slo_ok


class TestTelemetryCollector:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TelemetryCollector(window_seconds=0.0)

    def test_empty_collector_snapshot_renders(self):
        """Regression: no observations must never divide by zero."""
        snap = TelemetryCollector().snapshot(
            SloPolicy.parse("p99=1.0,shed=0.1,fail=0.1")
        )
        assert snap.requests["total"] == 0
        assert snap.render()
        assert json.loads(snap.to_json())["requests"]["total"] == 0

    def test_all_shed_window_renders_without_zerodivision(self):
        """A window where every attempt was shed has ok == 0; throughput
        and rates must come out 0/1.0, not raise."""
        from repro.logs.schema import (
            Direction,
            DeviceType,
            LogRecord,
            RequestKind,
        )

        collector = TelemetryCollector(window_seconds=60.0)
        for i in range(5):
            collector.observe_record(
                LogRecord(
                    timestamp=10.0 + i,
                    device_type=DeviceType.ANDROID,
                    device_id="m1",
                    user_id=1,
                    kind=RequestKind.CHUNK,
                    direction=Direction.STORE,
                    result=ResultCode.SHED,
                )
            )
        snap = collector.snapshot()
        window = snap.windows[0]
        assert window["shed_rate"] == 1.0
        assert window["failure_rate"] == 1.0
        assert window["throughput_rps"] == 0.0
        assert collector.shed_rate == 1.0
        assert snap.render()

    def test_snapshot_json_round_trips_and_is_deterministic(self):
        collector = TelemetryCollector()
        rng = np.random.default_rng(5)
        for x in rng.exponential(2.0, 50):
            collector.record_operation("store", float(x))
        first = collector.snapshot().to_json()
        second = collector.snapshot().to_json()
        assert first == second
        payload = json.loads(first)  # NaN would fail strict JSON parsers
        assert payload["schema_version"] == 2
        assert payload["operations"][0]["label"] == "store"

    def test_streaming_snapshot_labels_estimator(self):
        exact = TelemetryCollector()
        streaming = TelemetryCollector(keep_samples=False)
        for collector in (exact, streaming):
            collector.record_operation("store", 1.0)
        assert exact.snapshot().estimator == "exact"
        assert streaming.snapshot().estimator == "p2"

    def test_reconcile_empty_ledgers_match(self):
        from repro.faults import FaultStats

        report = TelemetryCollector().reconcile(FaultStats())
        assert report["matched"]
        assert report["attribution_ok"]
