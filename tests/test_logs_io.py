"""Tests for log file I/O (TSV / JSONL, plain and gzipped)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import (
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    open_reader,
    read_jsonl,
    read_tsv,
    record_from_dict,
    record_from_tsv,
    record_to_dict,
    record_to_tsv,
    write_jsonl,
    write_tsv,
)

SAMPLE = [
    LogRecord(
        timestamp=0.5,
        device_type=DeviceType.IOS,
        device_id="abc",
        user_id=1,
        kind=RequestKind.FILE_OP,
        direction=Direction.STORE,
    ),
    LogRecord(
        timestamp=1.25,
        device_type=DeviceType.ANDROID,
        device_id="def",
        user_id=2,
        kind=RequestKind.CHUNK,
        direction=Direction.RETRIEVE,
        volume=524288,
        processing_time=1.5,
        server_time=0.2,
        rtt=0.1,
        proxied=True,
        session_id=42,
    ),
]


def test_tsv_roundtrip(tmp_path):
    path = tmp_path / "trace.tsv"
    count = write_tsv(SAMPLE, path)
    assert count == 2
    assert list(read_tsv(path)) == SAMPLE


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    count = write_jsonl(SAMPLE, path)
    assert count == 2
    assert list(read_jsonl(path)) == SAMPLE


def test_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.tsv.gz"
    write_tsv(SAMPLE, path)
    assert list(read_tsv(path)) == SAMPLE


def test_open_reader_dispatches_by_extension(tmp_path):
    tsv = tmp_path / "a.tsv"
    jsonl = tmp_path / "b.jsonl"
    gz = tmp_path / "c.jsonl.gz"
    write_tsv(SAMPLE, tsv)
    write_jsonl(SAMPLE, jsonl)
    write_jsonl(SAMPLE, gz)
    assert list(open_reader(tsv)) == SAMPLE
    assert list(open_reader(jsonl)) == SAMPLE
    assert list(open_reader(gz)) == SAMPLE


def test_open_reader_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        list(open_reader(tmp_path / "trace.csv"))


def test_tsv_header_line_skipped(tmp_path):
    path = tmp_path / "trace.tsv"
    write_tsv(SAMPLE, path)
    first_line = path.read_text().splitlines()[0]
    assert first_line.startswith("#")


def test_malformed_tsv_line_raises():
    with pytest.raises(ValueError):
        record_from_tsv("too\tfew\tcolumns")


def test_record_from_tsv_tolerates_crlf():
    line = record_to_tsv(SAMPLE[1])
    assert record_from_tsv(line + "\r\n") == SAMPLE[1]
    assert record_from_tsv(line + "\n") == SAMPLE[1]


def test_read_tsv_trailing_blank_lines_and_crlf(tmp_path):
    """Hand-edited or Windows-written traces still parse."""
    path = tmp_path / "trace.tsv"
    write_tsv(SAMPLE, path)
    text = path.read_text().replace("\n", "\r\n") + "\r\n\r\n"
    path.write_bytes(text.encode())
    assert list(read_tsv(path)) == SAMPLE


def test_read_tsv_gz_trailing_blank_lines_and_crlf(tmp_path):
    import gzip

    plain = tmp_path / "trace.tsv"
    write_tsv(SAMPLE, plain)
    text = plain.read_text().replace("\n", "\r\n") + "\r\n\r\n"
    path = tmp_path / "trace.tsv.gz"
    with gzip.open(path, "wt", newline="") as fh:
        fh.write(text)
    assert list(read_tsv(path)) == SAMPLE


def test_read_jsonl_trailing_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(SAMPLE, path)
    path.write_text(path.read_text() + "\n\n")
    assert list(read_jsonl(path)) == SAMPLE


def test_record_dict_roundtrip():
    for record in SAMPLE:
        assert record_from_dict(record_to_dict(record)) == record


def test_record_dict_defaults_for_missing_optionals():
    data = {
        "timestamp": 1.0,
        "device_type": "android",
        "device_id": "x",
        "user_id": 3,
        "kind": "chunk",
        "direction": "store",
        "volume": 10,
    }
    record = record_from_dict(data)
    assert record.rtt == 0.0
    assert record.session_id == -1
    assert not record.proxied


record_strategy = st.builds(
    LogRecord,
    timestamp=st.floats(0, 1e7, allow_nan=False),
    device_type=st.sampled_from(list(DeviceType)),
    device_id=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=12,
    ),
    user_id=st.integers(0, 2**40),
    kind=st.just(RequestKind.CHUNK),
    direction=st.sampled_from(list(Direction)),
    volume=st.integers(0, 2**31),
    processing_time=st.floats(0, 1e4, allow_nan=False),
    server_time=st.floats(0, 1e4, allow_nan=False),
    rtt=st.floats(0, 100, allow_nan=False),
    proxied=st.booleans(),
    session_id=st.integers(-1, 2**31),
)


@given(record=record_strategy)
@settings(max_examples=200)
def test_tsv_line_roundtrip_property(record):
    parsed = record_from_tsv(record_to_tsv(record))
    assert parsed.user_id == record.user_id
    assert parsed.device_id == record.device_id
    assert parsed.volume == record.volume
    assert parsed.timestamp == pytest.approx(record.timestamp, abs=1e-6)
    assert parsed.rtt == pytest.approx(record.rtt, abs=1e-6)
    assert parsed.proxied == record.proxied
    assert parsed.session_id == record.session_id


@given(record=record_strategy)
@settings(max_examples=200)
def test_dict_roundtrip_property(record):
    assert record_from_dict(record_to_dict(record)) == record
