"""Tests for the discrete-event loop core."""

import math

import pytest

from repro.events import EventLoop


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule_at(2.0, lambda: order.append("b"))
    loop.schedule_at(1.0, lambda: order.append("a"))
    loop.schedule_at(3.0, lambda: order.append("c"))
    loop.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    loop = EventLoop()
    order = []
    for i in range(10):
        loop.schedule_at(1.0, lambda i=i: order.append(i))
    loop.run()
    assert order == list(range(10))


def test_now_advances_with_events():
    loop = EventLoop()
    seen = []
    loop.schedule_at(5.0, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [5.0]
    assert loop.now == 5.0


def test_schedule_after_relative_to_now():
    loop = EventLoop(start_time=10.0)
    seen = []
    loop.schedule_after(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [12.5]


def test_schedule_in_past_rejected():
    loop = EventLoop(start_time=10.0)
    with pytest.raises(ValueError):
        loop.schedule_at(9.0, lambda: None)


def test_schedule_nan_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule_at(float("nan"), lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule_after(-1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_at(1.0, lambda: fired.append(1))
    handle.cancel()
    loop.run()
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.run() == 0


def test_events_can_schedule_events():
    loop = EventLoop()
    order = []

    def first():
        order.append("first")
        loop.schedule_after(1.0, lambda: order.append("second"))

    loop.schedule_at(1.0, first)
    loop.run()
    assert order == ["first", "second"]
    assert loop.now == 2.0


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append(1))
    loop.schedule_at(10.0, lambda: fired.append(10))
    executed = loop.run(until=5.0)
    assert executed == 1
    assert fired == [1]
    # The later event remains pending.
    assert loop.pending() == 1


def test_run_returns_event_count():
    loop = EventLoop()
    for i in range(5):
        loop.schedule_at(float(i + 1), lambda: None)
    assert loop.run() == 5


def test_event_budget_guard():
    loop = EventLoop()

    def recurse():
        loop.schedule_after(0.001, recurse)

    loop.schedule_at(0.0, recurse)
    with pytest.raises(RuntimeError):
        loop.run(max_events=1000)


def test_pending_counts_only_live_events():
    loop = EventLoop()
    h1 = loop.schedule_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    h1.cancel()
    assert loop.pending() == 1


def test_run_with_infinite_until_drains_queue():
    loop = EventLoop()
    loop.schedule_at(1.0, lambda: None)
    loop.run(until=math.inf)
    assert loop.pending() == 0
