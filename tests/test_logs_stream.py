"""Tests for streaming aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import (
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    RunningStats,
    VolumeTally,
    devices_by_user,
    group_by_user,
    iter_sorted_runs,
    tally_by_hour,
    tally_by_user,
)


def chunk(user=1, direction=Direction.STORE, volume=100, ts=0.0,
          device=DeviceType.ANDROID, device_id="d1"):
    return LogRecord(
        timestamp=ts,
        device_type=device,
        device_id=device_id,
        user_id=user,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
    )


def file_op(user=1, direction=Direction.STORE, ts=0.0):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d1",
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=direction,
    )


class TestVolumeTally:
    def test_counts_by_direction_and_kind(self):
        tally = VolumeTally()
        tally.add(chunk(direction=Direction.STORE, volume=10))
        tally.add(chunk(direction=Direction.RETRIEVE, volume=30))
        tally.add(file_op(direction=Direction.STORE))
        assert tally.stored_bytes == 10
        assert tally.retrieved_bytes == 30
        assert tally.store_file_ops == 1
        assert tally.retrieve_file_ops == 0
        assert tally.total_bytes == 40
        assert tally.total_file_ops == 1

    def test_merge(self):
        a, b = VolumeTally(), VolumeTally()
        a.add(chunk(volume=5))
        b.add(chunk(direction=Direction.RETRIEVE, volume=7))
        a.merge(b)
        assert a.stored_bytes == 5
        assert a.retrieved_bytes == 7

    def test_ratio_with_epsilon(self):
        tally = VolumeTally()
        tally.add(chunk(volume=1000))
        assert tally.store_retrieve_ratio() == pytest.approx(1001.0)


def test_tally_by_user_groups_correctly():
    records = [chunk(user=1, volume=10), chunk(user=2, volume=20),
               chunk(user=1, volume=5)]
    tallies = tally_by_user(records)
    assert tallies[1].stored_bytes == 15
    assert tallies[2].stored_bytes == 20


def test_tally_by_hour_bins():
    records = [chunk(ts=10.0, volume=1), chunk(ts=3600.0, volume=2),
               chunk(ts=7300.0, volume=4)]
    tallies = tally_by_hour(records)
    assert tallies[0].stored_bytes == 1
    assert tallies[1].stored_bytes == 2
    assert tallies[2].stored_bytes == 4


def test_tally_by_hour_rejects_bad_bin():
    with pytest.raises(ValueError):
        tally_by_hour([], bin_seconds=0)


def test_devices_by_user_partitions_platforms():
    records = [
        chunk(user=1, device=DeviceType.ANDROID, device_id="m1"),
        chunk(user=1, device=DeviceType.PC, device_id="p1"),
        chunk(user=1, device=DeviceType.IOS, device_id="m2"),
    ]
    devices = devices_by_user(records)[1]
    assert devices.uses_pc
    assert devices.uses_mobile
    assert devices.mobile_device_count == 2


def test_group_by_user_sorts_within_group():
    records = [chunk(user=1, ts=5.0), chunk(user=1, ts=1.0), chunk(user=2, ts=3.0)]
    groups = group_by_user(records)
    assert [r.timestamp for r in groups[1]] == [1.0, 5.0]
    assert len(groups[2]) == 1


def test_iter_sorted_runs_splits_on_user_change():
    records = [chunk(user=1), chunk(user=1), chunk(user=2), chunk(user=1)]
    runs = list(iter_sorted_runs(records))
    assert [len(r) for r in runs] == [2, 1, 1]
    assert [r[0].user_id for r in runs] == [1, 2, 1]


class TestRunningStats:
    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    def test_single_value(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0
        assert stats.minimum == stats.maximum == 3.0

    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=100
        )
    )
    @settings(max_examples=100)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        for v in values:
            stats.add(v)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-4
        )
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
