"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_generate_and_analyze_roundtrip(tmp_path, capsys):
    trace = tmp_path / "trace.tsv"
    assert main(["generate", str(trace), "--users", "150",
                 "--max-chunks", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert trace.exists()

    assert main(["analyze", str(trace), "--fast"]) == 0
    out = capsys.readouterr().out
    assert "sessions recovered" in out
    assert "[Sessions]" in out


def test_analyze_columnar_engine(tmp_path, capsys):
    trace = tmp_path / "trace.tsv"
    main(["generate", str(trace), "--users", "150",
          "--max-chunks", "4", "--seed", "3"])
    capsys.readouterr()

    assert main(["analyze", str(trace), "--fast",
                 "--engine", "columnar"]) == 0
    columnar_out = capsys.readouterr().out
    assert "sessions recovered" in columnar_out

    assert main(["analyze", str(trace), "--fast"]) == 0
    records_out = capsys.readouterr().out
    # The engines print identical findings for the same trace.
    assert columnar_out == records_out


def test_analyze_columnar_empty_trace(tmp_path):
    trace = tmp_path / "empty.tsv"
    trace.write_text("#header\n")
    assert main(["analyze", str(trace), "--engine", "columnar"]) == 1


def test_generate_jsonl_gz(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl.gz"
    assert main(["generate", str(trace), "--users", "50",
                 "--max-chunks", "2", "--anonymize"]) == 0
    assert trace.exists()


def test_generate_deterministic(tmp_path):
    a = tmp_path / "a.tsv"
    b = tmp_path / "b.tsv"
    main(["generate", str(a), "--users", "40", "--seed", "9"])
    main(["generate", str(b), "--users", "40", "--seed", "9"])
    assert a.read_text() == b.read_text()


def test_experiments_filter(capsys):
    assert main(["experiments", "dedup"]) == 0
    out = capsys.readouterr().out
    assert "A4" in out
    assert "1/1 experiments pass" in out


def test_experiments_no_match(capsys):
    assert main(["experiments", "nonexistent-experiment"]) == 1


def test_simulate_flow(capsys):
    assert main(["simulate-flow", "--chunks", "3", "--device", "ios"]) == 0
    out = capsys.readouterr().out
    assert "chunk 0" in out
    assert "goodput" in out


def test_analyze_empty_trace(tmp_path, capsys):
    trace = tmp_path / "empty.tsv"
    trace.write_text("#header\n")
    assert main(["analyze", str(trace)]) == 1


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_experiments_json_output(capsys):
    import json

    assert main(["experiments", "dedup", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data[0]["experiment"] == "A4"
    assert data[0]["pass"] is True
    assert all("measured" in c for c in data[0]["checks"])


def test_replay_dashboard_and_determinism(capsys):
    args = ["replay", "--users", "6", "--seed", "3", "--speedup", "2"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "== telemetry" in first
    assert "access-log digest:" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    # Same seed + schedule => the whole dashboard, digest included, is
    # byte-identical (the CI replay-smoke job cmp's the two digests).
    assert first == second


def test_replay_json_snapshot(capsys):
    import json

    assert main(["replay", "--users", "4", "--rate", "2", "--json"]) == 0
    out = capsys.readouterr().out
    body, digest_line = out.rsplit("\n", 2)[0], out.rstrip().rsplit("\n", 1)[1]
    snapshot = json.loads(body)
    assert snapshot["schema_version"] == 2
    assert "access-log digest:" in digest_line


def test_replay_slo_violation_exits_nonzero(capsys):
    assert main(["replay", "--users", "6", "--rate", "8", "--faults",
                 "--slo", "p99=0.001"]) == 1
    out = capsys.readouterr()
    assert "VIOLATED" in out.out
    assert "SLO violated" in out.err


def test_replay_rejects_bad_arguments(capsys):
    assert main(["replay", "--users", "0"]) == 2
    assert main(["replay", "--speedup", "0"]) == 2
    assert main(["replay", "--rate", "-1"]) == 2
    assert main(["replay", "--slo", "p42=1"]) == 2
    capsys.readouterr()


def test_paper_scale_streaming_pipeline(capsys):
    assert main(["paper-scale", "--users", "300", "--pc-users", "60",
                 "--shards", "3", "--seed", "5", "--check"]) == 0
    out = capsys.readouterr().out
    assert "analysis digest: " in out
    assert "check: streaming == in-memory engine" in out
    digest_a = [l for l in out.splitlines() if "analysis digest" in l]

    assert main(["paper-scale", "--users", "300", "--pc-users", "60",
                 "--shards", "3", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    digest_b = [l for l in out.splitlines() if "analysis digest" in l]
    assert digest_a == digest_b, "paper-scale digest not reproducible"


def test_paper_scale_json_output(capsys):
    import json as json_module

    assert main(["paper-scale", "--users", "200", "--pc-users", "40",
                 "--shards", "2", "--json", "--check"]) == 0
    summary = json_module.loads(capsys.readouterr().out)
    assert summary["users"] == 240
    assert summary["records"] > 0
    assert len(summary["digest"]) == 32
    assert summary["sessions"] > 0


def test_paper_scale_rejects_bad_arguments(capsys):
    assert main(["paper-scale", "--users", "0"]) == 2
    assert main(["paper-scale", "--users", "10", "--block-rows", "0"]) == 2
    capsys.readouterr()


def test_autoscale_trajectory_and_determinism(tmp_path, capsys):
    traj = tmp_path / "trajectory.json"
    args = ["autoscale", "--windows", "6", "--strategy", "fault-aware",
            "--json", str(traj)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "autoscale digest:" in first
    assert "server-hours=" in first
    assert traj.exists()
    doc = json.loads(traj.read_text())
    assert doc["strategy"] == "fault-aware"
    assert len(doc["windows"]) == 6
    assert main(args) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-identical double run


def test_autoscale_fault_free_regime(capsys):
    assert main(["autoscale", "--windows", "4", "--strategy", "reactive",
                 "--regime", "fault-free"]) == 0
    out = capsys.readouterr().out
    assert "violations=0/4" in out


def test_autoscale_rejects_bad_arguments(capsys):
    assert main(["autoscale", "--windows", "0"]) == 2
