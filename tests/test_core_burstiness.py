"""Tests for burstiness analysis."""

import pytest

from repro.core import burstiness_curves, normalized_operating_times
from repro.core.sessions import sessionize_user
from repro.logs import DeviceType, Direction, LogRecord, RequestKind


def op(ts, user=1):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=Direction.STORE,
    )


def chunk(ts, proc=1.0):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=Direction.STORE,
        volume=100,
        processing_time=proc,
    )


def session(records):
    return list(sessionize_user(records))[0]


def bursty_session(n_ops=5, tail=100.0):
    """Ops in the first second, transfers until ``tail``."""
    records = [op(0.1 * i) for i in range(n_ops)]
    records.append(chunk(tail, proc=0.0))
    return session(records)


def spread_session(n_ops=5, tail=10.0):
    """Ops spread over the whole session."""
    records = [op(i * tail / (n_ops - 1)) for i in range(n_ops)]
    return session(records)


class TestNormalizedTimes:
    def test_bursty_session_fraction_small(self):
        values = normalized_operating_times([bursty_session()])
        assert values[0] < 0.01

    def test_spread_session_fraction_large(self):
        values = normalized_operating_times([spread_session()])
        assert values[0] > 0.9

    def test_single_op_sessions_excluded(self):
        values = normalized_operating_times([session([op(0.0), chunk(5.0)])])
        assert values.size == 0

    def test_min_ops_threshold(self):
        sessions = [bursty_session(n_ops=3), bursty_session(n_ops=30)]
        assert normalized_operating_times(sessions, min_ops=10).size == 1

    def test_invalid_min_ops(self):
        with pytest.raises(ValueError):
            normalized_operating_times([], min_ops=0)

    def test_values_capped_at_one(self):
        values = normalized_operating_times([spread_session()])
        assert values.max() <= 1.0


class TestCurves:
    def test_curve_family(self):
        sessions = [bursty_session(n_ops=n) for n in (2, 5, 15, 25, 30)]
        curves = burstiness_curves(sessions, thresholds=(1, 10, 20))
        assert [c.min_ops for c in curves] == [1, 10, 20]
        assert curves[0].n_sessions == 5
        assert curves[1].n_sessions == 3
        assert curves[2].n_sessions == 2

    def test_fraction_below(self):
        sessions = [bursty_session(), spread_session()]
        curves = burstiness_curves(sessions, thresholds=(1,))
        assert curves[0].fraction_below(0.1) == pytest.approx(0.5)

    def test_cdf_accessor(self):
        sessions = [bursty_session()]
        curve = burstiness_curves(sessions, thresholds=(1,))[0]
        cdf = curve.cdf()
        assert cdf.evaluate(1.0)[()] == pytest.approx(1.0)
