"""Tests for the exponential mixture EM fitter and order selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import fit_exponential_mixture, select_order
from repro.stats.expmix import ExponentialMixture, bic, select_order_bic


def table2_store_sample(n=40000, seed=0):
    """Sample from the paper's store-only Table 2 mixture."""
    rng = np.random.default_rng(seed)
    sizes = rng.multinomial(n, [0.91, 0.07, 0.02])
    return np.concatenate(
        [
            rng.exponential(1.5, sizes[0]),
            rng.exponential(13.1, sizes[1]),
            rng.exponential(77.4, sizes[2]),
        ]
    )


class TestFit:
    def test_single_component_is_sample_mean(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(3.0, 10000)
        fit = fit_exponential_mixture(data, 1)
        assert fit.means[0] == pytest.approx(data.mean(), rel=1e-6)
        assert fit.weights[0] == pytest.approx(1.0)

    def test_recovers_planted_parameters(self):
        fit = fit_exponential_mixture(table2_store_sample(), 3)
        assert fit.means[0] == pytest.approx(1.5, rel=0.1)
        assert fit.means[1] == pytest.approx(13.1, rel=0.4)
        assert fit.means[2] == pytest.approx(77.4, rel=0.4)
        assert fit.weights[0] == pytest.approx(0.91, abs=0.03)

    def test_components_sorted_by_mean(self):
        fit = fit_exponential_mixture(table2_store_sample(), 3)
        assert list(fit.means) == sorted(fit.means)

    def test_weights_sum_to_one(self):
        fit = fit_exponential_mixture(table2_store_sample(), 3)
        assert sum(fit.weights) == pytest.approx(1.0)

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential_mixture(np.array([1.0, -2.0]), 1)

    def test_zero_data_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential_mixture(np.array([0.0, 1.0]), 1)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential_mixture(np.array([1.0]), 2)

    def test_invalid_component_count_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential_mixture(np.array([1.0, 2.0]), 0)


class TestDensityAndCcdf:
    def fit(self):
        return fit_exponential_mixture(table2_store_sample(), 3)

    def test_pdf_nonnegative_and_integrates(self):
        fit = self.fit()
        grid = np.linspace(0, 500, 100001)
        mass = np.trapezoid(fit.pdf(grid), grid)
        assert mass == pytest.approx(1.0, abs=1e-2)

    def test_ccdf_monotone_decreasing(self):
        fit = self.fit()
        grid = np.linspace(0, 300, 1000)
        values = fit.ccdf(grid)
        assert np.all(np.diff(values) <= 1e-12)
        assert values[0] == pytest.approx(1.0)

    def test_ccdf_negative_x_is_one(self):
        assert self.fit().ccdf(-5.0)[0] == pytest.approx(1.0)

    def test_mixture_mean(self):
        fit = ExponentialMixture(
            weights=(0.5, 0.5), means=(1.0, 3.0),
            log_likelihood=0.0, n_iterations=1, converged=True,
        )
        assert fit.mean == pytest.approx(2.0)

    def test_component_table_rows(self):
        rows = self.fit().component_table()
        assert len(rows) == 3
        assert rows[0][1] < rows[1][1] < rows[2][1]


class TestOrderSelection:
    def test_paper_rule_finds_three_components(self):
        fit = select_order(table2_store_sample())
        assert fit.n_components == 3

    def test_bic_finds_three_components(self):
        fit = select_order_bic(table2_store_sample())
        assert fit.n_components == 3

    def test_single_exponential_yields_one_component(self):
        rng = np.random.default_rng(2)
        data = rng.exponential(2.0, 20000)
        assert select_order(data).n_components == 1
        assert select_order_bic(data).n_components == 1

    def test_bic_prefers_true_order_with_enough_data(self):
        data = table2_store_sample(n=40000)
        f2 = fit_exponential_mixture(data, 2)
        f3 = fit_exponential_mixture(data, 3)
        assert bic(f3, data.size) < bic(f2, data.size)

    def test_bic_ordering_is_monotone_in_likelihood(self):
        data = table2_store_sample(n=4000)
        f3 = fit_exponential_mixture(data, 3)
        # Same component count: higher likelihood must mean lower BIC.
        worse = ExponentialMixture(
            weights=f3.weights,
            means=f3.means,
            log_likelihood=f3.log_likelihood - 100.0,
            n_iterations=f3.n_iterations,
            converged=True,
        )
        assert bic(f3, data.size) < bic(worse, data.size)


class TestSampling:
    def test_sample_refit_roundtrip(self):
        fit = fit_exponential_mixture(table2_store_sample(), 3)
        rng = np.random.default_rng(5)
        draws = fit.sample(40000, rng)
        refit = fit_exponential_mixture(draws, 3)
        for mu, mu_ref in zip(refit.means, fit.means):
            assert mu == pytest.approx(mu_ref, rel=0.35)

    def test_samples_positive(self):
        fit = fit_exponential_mixture(table2_store_sample(), 2)
        draws = fit.sample(1000, np.random.default_rng(0))
        assert np.all(draws >= 0)


@given(mu=st.floats(0.5, 50.0))
@settings(max_examples=20, deadline=None)
def test_single_component_recovery_property(mu):
    rng = np.random.default_rng(11)
    data = rng.exponential(mu, 4000)
    fit = fit_exponential_mixture(data, 1)
    assert fit.means[0] == pytest.approx(mu, rel=0.15)
