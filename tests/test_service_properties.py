"""Property-based invariants of the service simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import CHUNK_SIZE, DeviceType
from repro.service import MetadataServer, ServiceCluster, build_manifest


@given(
    sizes=st.lists(
        st.integers(1, 5 * CHUNK_SIZE), min_size=1, max_size=8
    ),
    seed_tags=st.lists(
        st.integers(0, 3), min_size=1, max_size=8
    ),
)
@settings(max_examples=60, deadline=None)
def test_store_retrieve_volume_conservation(sizes, seed_tags):
    """Bytes logged for a store always equal the file size, and every
    stored URL retrieves the exact same number of bytes."""
    cluster = ServiceCluster(n_frontends=2)
    client = cluster.new_client(1, "m1", DeviceType.ANDROID)
    fetcher = cluster.new_client(2, "m2", DeviceType.IOS)
    stored_urls = []
    unique_bytes = {}
    for index, (size, tag) in enumerate(zip(sizes, seed_tags)):
        seed = f"content-{tag}".encode()
        report = client.store_file(f"f{index}", seed, size)
        stored_urls.append((report.url, size))
        key = (tag, size)
        if key not in unique_bytes and not report.deduplicated:
            unique_bytes[key] = size
    # Dedup means total uploaded bytes equal the sum of *unique* contents.
    assert cluster.bytes_stored == sum(unique_bytes.values())
    for url, size in stored_urls:
        fetched = fetcher.retrieve_url(url)
        assert fetched.size == size


@given(
    n_users=st.integers(1, 12),
    size=st.integers(1, 2 * CHUNK_SIZE),
)
@settings(max_examples=40, deadline=None)
def test_dedup_uploads_identical_content_once(n_users, size):
    server = MetadataServer()
    manifest = build_manifest("same", b"identical", size)
    uploads = 0
    for user in range(1, n_users + 1):
        decision = server.request_store(user, manifest)
        if not decision.duplicate:
            uploads += 1
            server.commit_store(user, manifest, decision.frontend_id)
    assert uploads == 1
    assert server.unique_contents == 1
    # Every user still sees the file in their namespace.
    for user in range(1, n_users + 1):
        assert len(server.user_files(user)) == 1


@given(size=st.integers(1, 20 * CHUNK_SIZE))
@settings(max_examples=100)
def test_manifest_chunks_invariants(size):
    manifest = build_manifest("f", b"x", size)
    assert sum(manifest.chunk_sizes) == size
    assert all(0 < s <= CHUNK_SIZE for s in manifest.chunk_sizes)
    assert len(set(manifest.chunk_md5s)) == manifest.n_chunks
