"""Tests for the reprolint incremental summary cache.

The acceptance-critical property: a warm run re-analyzes *only* edited
files (proven through the cache's hit/miss counters) while still running
every project rule over the full facts set — cached findings are
byte-identical to a cold run.  Invalidation is structural: content
digests per file, a rule-set fingerprint for the whole cache, and a
per-entry rule-subset check for ``--rules`` runs.
"""

import json
import shutil
from pathlib import Path

from repro.devtools import SummaryCache, lint_paths
from repro.devtools import registry
from repro.devtools.cache import CACHE_FORMAT, ruleset_fingerprint

DATA = Path(__file__).resolve().parent / "data" / "lint"

#: A small tree with one D2 positive (a *project*-scope finding, so warm
#: runs must reproduce it from cached facts alone) and two clean files.
TREE_FILES = ("d2_pos.py", "d4_neg.py", "w1_neg.py")


def make_tree(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    for name in TREE_FILES:
        shutil.copy(DATA / name, tree / name)
    return tree


def test_cold_run_misses_warm_run_hits(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"

    cold_cache = SummaryCache(cache_file)
    cold = lint_paths([tree], cache=cold_cache)
    assert (cold_cache.misses, cold_cache.hits) == (len(TREE_FILES), 0)
    assert {f.rule for f in cold} == {"D2"}

    warm_cache = SummaryCache(cache_file)
    warm = lint_paths([tree], cache=warm_cache)
    assert (warm_cache.misses, warm_cache.hits) == (0, len(TREE_FILES))
    # Project-scope findings are recomputed from cached facts and match
    # the cold run exactly.
    assert warm == cold


def test_edit_invalidates_only_the_edited_file(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    lint_paths([tree], cache=SummaryCache(cache_file))

    victim = tree / "w1_neg.py"
    victim.write_text(victim.read_text() + "\nEXTRA = 1\n")

    warm_cache = SummaryCache(cache_file)
    lint_paths([tree], cache=warm_cache)
    assert warm_cache.misses == 1
    assert warm_cache.hits == len(TREE_FILES) - 1


def test_ruleset_version_bump_discards_cache(tmp_path, monkeypatch):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    lint_paths([tree], cache=SummaryCache(cache_file))
    before = ruleset_fingerprint()

    monkeypatch.setattr(registry, "RULESET_VERSION", registry.RULESET_VERSION + 1)
    assert ruleset_fingerprint() != before

    warm_cache = SummaryCache(cache_file)
    lint_paths([tree], cache=warm_cache)
    assert (warm_cache.misses, warm_cache.hits) == (len(TREE_FILES), 0)


def test_corrupt_cache_file_is_treated_as_empty(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{definitely not json")

    cache = SummaryCache(cache_file)
    cold = lint_paths([tree], cache=cache)
    assert cache.misses == len(TREE_FILES)

    # The run repaired the file: the next one is fully warm.
    warm_cache = SummaryCache(cache_file)
    assert lint_paths([tree], cache=warm_cache) == cold
    assert warm_cache.hits == len(TREE_FILES)


def test_foreign_format_cache_is_discarded(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text(
        json.dumps({"cache_format": CACHE_FORMAT + 1, "files": {"x": {}}})
    )
    cache = SummaryCache(cache_file)
    lint_paths([tree], cache=cache)
    assert cache.misses == len(TREE_FILES)


def test_rule_subset_entries_do_not_satisfy_full_runs(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"

    # Entries recorded under --rules D1 only ran the D1 file rule...
    lint_paths([tree], rule_ids={"D1"}, cache=SummaryCache(cache_file))

    # ...so a full run cannot reuse them.
    full_cache = SummaryCache(cache_file)
    lint_paths([tree], cache=full_cache)
    assert (full_cache.misses, full_cache.hits) == (len(TREE_FILES), 0)

    # The reverse direction is safe: full entries satisfy a subset run,
    # and the findings are filtered down to the selection.
    subset_cache = SummaryCache(cache_file)
    findings = lint_paths([tree], rule_ids={"D1"}, cache=subset_cache)
    assert (subset_cache.misses, subset_cache.hits) == (0, len(TREE_FILES))
    assert findings == []


def test_cached_syntax_error_still_reported(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "broken.py").write_text("def oops(:\n")
    cache_file = tmp_path / "cache.json"

    cold = lint_paths([tree], cache=SummaryCache(cache_file))
    warm_cache = SummaryCache(cache_file)
    warm = lint_paths([tree], cache=warm_cache)
    assert warm_cache.hits == 1
    assert warm == cold
    assert {f.rule for f in warm} == {"E0"}


def test_cache_write_is_atomic_and_valid_json(tmp_path):
    tree = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    lint_paths([tree], cache=SummaryCache(cache_file))

    payload = json.loads(cache_file.read_text())
    assert payload["cache_format"] == CACHE_FORMAT
    assert payload["fingerprint"] == ruleset_fingerprint()
    assert len(payload["files"]) == len(TREE_FILES)
    # No stray .tmp file left behind by the atomic rename.
    assert not list(tmp_path.glob("*.tmp"))
