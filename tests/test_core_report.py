"""Tests for the findings report (Table 4 as code)."""

import pytest

from repro.core import analyze_trace
from repro.workload import GeneratorOptions, generate_trace


@pytest.fixture(scope="module")
def report():
    records = generate_trace(
        600, options=GeneratorOptions(max_chunks_per_file=4), seed=21
    )
    return analyze_trace(records)


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        analyze_trace([])


def test_report_recovers_headline_findings(report):
    assert report.interval_model.tau == 3600.0
    assert report.session_shares.store_only > report.session_shares.retrieve_only
    assert report.session_shares.mixed < 0.1
    assert 0.8 <= report.storage_slope_mb <= 2.5
    assert report.upload_only_share > 0.3
    assert report.never_retrieve_fraction > 0.6
    assert 0.1 <= report.store_activity.fit.c <= 0.35


def test_findings_table_complete(report):
    topics = {f.topic for f in report.rows()}
    assert topics == {
        "Sessions",
        "Activity burstiness",
        "File attribute",
        "Usage pattern",
        "User engagement",
        "User activity model",
    }
    for finding in report.rows():
        assert finding.statement
        assert finding.implication


def test_size_model_optional():
    records = generate_trace(
        120, options=GeneratorOptions(max_chunks_per_file=4), seed=22
    )
    report = analyze_trace(records, fit_size_model=False)
    assert report.store_size_model is None
