"""Positive fixture for rule D1: nondeterministic sources."""

import random
import time

import numpy as np
from numpy.random import default_rng


def sample(n):
    started = time.time()
    np.random.seed(7)
    rng = default_rng()
    jitter = random.random()
    return started, rng, jitter, n
