"""Positive fixture for rule D2: RNG built from a non-seed expression."""

import numpy as np


def make_rng(worker_index, n_workers):
    # Neither operand has seed provenance; two differently-sharded runs
    # would silently draw different streams for the same logical worker.
    return np.random.default_rng(worker_index * n_workers + 1)
