"""S1 fixture: the TSV layout (consistent trio)."""

TSV_COLUMNS = (
    "timestamp",
    "device_id",
    "user_id",
    "volume",
)
