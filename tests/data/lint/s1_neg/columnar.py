"""S1 fixture: the columnar layout (consistent trio)."""

COLUMNS = (
    ("timestamp", "float64"),
    ("device_code", "int64"),
    ("user_id", "int64"),
    ("volume", "int64"),
)
