"""S1 fixture: the record schema (consistent trio)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LogRecord:
    timestamp: float
    device_id: str
    user_id: int
    volume: int = 0
