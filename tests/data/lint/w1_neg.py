"""Negative fixture for W1: the safe spellings of default arguments."""

from dataclasses import dataclass, field


def append_event(event, log=None):
    log = [] if log is None else log
    log.append(event)
    return log


def merge_tags(base, extra=(), label=""):
    return {**base, **dict(extra), "label": label}


@dataclass
class Batch:
    items: list = field(default_factory=list)
    limit: int = 16
