"""Positive fixture for D4: unordered set iteration feeding a digest,
a join, and a TSV write."""

import hashlib


def digest_users(users):
    active = {u.name for u in users if u.active}
    h = hashlib.blake2b(digest_size=16)
    for name in active:
        h.update(name.encode())
    return h.hexdigest()


def dump_zones(out, zones, dead):
    live = set(zones) - set(dead)
    out.write(",".join(live))
    out.writerow({z.upper() for z in zones})
