"""Negative fixture for rule D1: explicit, seeded randomness only."""

import numpy as np


def sample(seed, n):
    rng = np.random.default_rng(seed)
    # Attribute names that merely *contain* banned words must not trip the
    # rule: this is a record field, not a clock read.
    arrival_time = float(rng.uniform()) * n
    return rng.normal(loc=arrival_time)
