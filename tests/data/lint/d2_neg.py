"""Negative fixture for rule D2: every accepted seed-provenance form."""

import numpy as np


class Component:
    def __init__(self, seed):
        self.seed = seed
        self.rng = np.random.default_rng(self.seed)


def build(seed, user_id):
    literal = np.random.default_rng(42)
    from_param = np.random.default_rng(seed)
    from_sequence = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(user_id,))
    )
    master = np.random.SeedSequence(seed)
    children = master.spawn(4)
    spawned = [np.random.default_rng(s) for s in children]
    indexed = np.random.default_rng(children[0])
    return literal, from_param, from_sequence, spawned, indexed


def build_replay_trace(n_users, seed):
    # The replay-scheduler idiom: per-user trace streams spawned from one
    # dedicated SeedSequence child block keyed by (seed, module constant),
    # so the trace is a pure function of (n_users, seed) and adding users
    # never perturbs existing ones.
    master = np.random.SeedSequence([seed, 0x4E97A1])
    user_seqs = master.spawn(n_users)
    return [np.random.default_rng(user_seqs[index]) for index in range(n_users)]


def build_metatier(seed, n_shards, n_replicas):
    # The sharded-metadata idiom: per-node streams are grandchildren of
    # the metadata stream (spawn per shard, then spawn per node), so
    # growing the tier never reshuffles existing node schedules.
    metadata_seq = np.random.SeedSequence(seed)
    shard_seqs = metadata_seq.spawn(n_shards)
    node_rngs = []
    for shard in range(n_shards):
        node_seqs = shard_seqs[shard].spawn(1 + n_replicas)
        node_rngs.append([np.random.default_rng(s) for s in node_seqs])
    return node_rngs


def build_zoned(seed, n_frontends, n_zones):
    # The correlated-fault idiom: one spawn, then named slices of the
    # child block feed zone/pressure/assignment streams.
    master = np.random.SeedSequence(seed)
    children = master.spawn(1 + n_zones + n_frontends)
    assign_seq = children[0]
    zone_seqs = children[1 : 1 + n_zones]
    pressure_seqs = children[1 + n_zones :]
    assignment = np.random.default_rng(assign_seq).permutation(n_frontends)
    zone_rngs = [np.random.default_rng(seq) for seq in zone_seqs]
    pressure_rngs = [np.random.default_rng(seq) for seq in pressure_seqs]
    return assignment, zone_rngs, pressure_rngs
