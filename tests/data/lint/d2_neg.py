"""Negative fixture for rule D2: every accepted seed-provenance form."""

import numpy as np


class Component:
    def __init__(self, seed):
        self.seed = seed
        self.rng = np.random.default_rng(self.seed)


def build(seed, user_id):
    literal = np.random.default_rng(42)
    from_param = np.random.default_rng(seed)
    from_sequence = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(user_id,))
    )
    master = np.random.SeedSequence(seed)
    children = master.spawn(4)
    spawned = [np.random.default_rng(s) for s in children]
    indexed = np.random.default_rng(children[0])
    return literal, from_param, from_sequence, spawned, indexed
