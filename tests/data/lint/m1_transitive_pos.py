"""Positive fixture: transitive fork-safety violation at depth 2.

``worker`` itself captures nothing — but it calls ``mid``, which calls
``draw``, which closes over the parent's ``rng``.  v1's per-file closure
check cannot see this; the v2 call graph flags the submission with the
``worker -> mid -> draw`` chain.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def simulate(seed, values):
    rng = np.random.default_rng(seed)

    def draw(x):
        return rng.normal() + x

    def mid(x):
        return draw(x) * 2.0

    def worker(x):
        return mid(x) + 1.0

    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, values))
