"""Positive fixture for W1: mutable default arguments."""


def append_event(event, log=[]):
    log.append(event)
    return log


def merge_tags(base, extra={}, seen=set()):
    seen.update(extra)
    return {**base, **extra}


collect = lambda item, acc=[]: acc + [item]  # noqa: E731
