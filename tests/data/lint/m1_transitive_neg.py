"""Negative fixture: the same call chain, but every RNG is constructed
inside the callee from an argument-passed seed — fork-safe."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def draw(seed, x):
    rng = np.random.default_rng(seed)
    return rng.normal() + x


def mid(seed, x):
    return draw(seed, x) * 2.0


def worker(task):
    seed, x = task
    return mid(seed, x) + 1.0


def simulate(seed_seq, values):
    tasks = [(child, x) for child, x in zip(seed_seq.spawn(len(values)), values)]
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, tasks))
