"""Negative fixture for rule M1: seeds travel as arguments, not closures."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def worker(child_seed, task):
    rng = np.random.default_rng(child_seed)
    return task + rng.normal()


def simulate(seed, tasks):
    children = np.random.SeedSequence(seed).spawn(len(tasks))
    with ProcessPoolExecutor() as pool:
        futures = [
            pool.submit(worker, child, task)
            for child, task in zip(children, tasks)
        ]
    return [f.result() for f in futures]
