"""Positive fixture for rule D3: builtin hash() feeding a seed."""

import numpy as np


def client_rng(user_id, device_id, seed):
    derived = hash((user_id, device_id, seed))
    return np.random.default_rng(derived % 2**32 + seed)
