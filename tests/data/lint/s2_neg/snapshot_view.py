"""Mini telemetry module for the S2 negative pair — every ``stats.x``
read names a real FaultStats member, every metadata-tier counter appears
in DEFAULT_METADATA_AVAILABILITY, and every ``meta[...]`` read exists."""

from fault_ledger import FaultStats

DEFAULT_METADATA_AVAILABILITY = {
    "shards": 4,
    "replicas": 3,
    "shard_rejections": 0,
    "replica_reads": 0,
}


def reconcile(stats: FaultStats, meta=None):
    meta = dict(DEFAULT_METADATA_AVAILABILITY) if meta is None else dict(meta)
    meta["shard_rejections"] = meta["shard_rejections"] + stats.shard_rejections
    meta["replica_reads"] = meta["replica_reads"] + stats.replica_reads
    return meta


def headline(stats: FaultStats) -> int:
    return stats.total_rejections + stats.failovers
