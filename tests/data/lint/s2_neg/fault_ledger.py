"""Mini fault ledger for the S2 negative pair — consistent with
``snapshot_view.py``: every metadata-tier counter is surfaced there."""

from dataclasses import dataclass


@dataclass
class FaultStats:
    shed_requests: int = 0
    shard_rejections: int = 0
    replica_reads: int = 0
    failovers: int = 0

    @property
    def total_rejections(self) -> int:
        return self.shed_requests + self.shard_rejections
