"""Module A of the cross-module *negative* provenance pair: the helper
returns plain arithmetic — no seed anywhere in its dataflow."""


def offset_for(index):
    return index * 1000 + 7
