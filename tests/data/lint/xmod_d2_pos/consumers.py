"""Module B of the cross-module negative pair: the helper resolves, but
its return value has no seed provenance, so the sink is still flagged —
resolution must not launder arbitrary cross-module values into seeds."""

import numpy as np

from offsets import offset_for


def build_generators(count):
    return [np.random.default_rng(offset_for(i)) for i in range(count)]
