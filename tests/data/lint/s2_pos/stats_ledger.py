"""Mini fault ledger for the S2 positive pair.

``stale_writes_refused`` is a metadata-tier counter (``stale_*``) that the
snapshot module next door never added to DEFAULT_METADATA_AVAILABILITY.
"""

from dataclasses import dataclass


@dataclass
class FaultStats:
    shed_requests: int = 0
    shard_rejections: int = 0
    replica_reads: int = 0
    stale_writes_refused: int = 0

    @property
    def total_rejections(self) -> int:
        return self.shed_requests + self.shard_rejections
