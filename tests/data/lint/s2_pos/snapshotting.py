"""Mini telemetry module for the S2 positive pair.

Two drifts against ``stats_ledger.py``: ``stats.shard_rejection`` (typo —
no such FaultStats member) and the ledger's ``stale_writes_refused``
counter missing from DEFAULT_METADATA_AVAILABILITY.
"""

from stats_ledger import FaultStats

DEFAULT_METADATA_AVAILABILITY = {
    "shards": 4,
    "replicas": 3,
    "shard_rejections": 0,
    "replica_reads": 0,
}


def reconcile(stats: FaultStats, meta=None):
    meta = dict(DEFAULT_METADATA_AVAILABILITY) if meta is None else dict(meta)
    meta["shard_rejections"] = meta["shard_rejections"] + stats.shard_rejection
    meta["replica_reads"] = meta["replica_reads"] + stats.replica_reads
    return meta
