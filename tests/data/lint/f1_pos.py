"""Positive fixture for rule F1: equality against float literals."""


def classify(loss_rate, elapsed):
    lossless = loss_rate == 0.0
    if elapsed != 1.5:
        lossless = not lossless
    return lossless or elapsed == -1.0
