"""Fixture for inline suppressions: violations explicitly blessed."""

import time

import numpy as np


def profile(loss_rate):
    started = time.time()  # reprolint: disable=D1
    rng = np.random.default_rng()  # reprolint: disable=all
    exact = loss_rate == 0.0  # reprolint: disable=F1
    return started, rng, exact
