"""Negative fixture for rule F1: bounds, isclose and integer equality."""

import math


def classify(loss_rate, elapsed, count):
    lossless = loss_rate <= 0.0
    on_schedule = math.isclose(elapsed, 1.5, abs_tol=1e-9)
    empty = count == 0
    return lossless, on_schedule, empty
