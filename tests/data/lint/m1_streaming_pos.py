"""Positive fixture: a shard-part writer worker that is not fork-safe.

The streaming pipeline's approved shape is a module-level worker taking
its task (seed included) as an argument; this one closes over parent RNG
state, so every pool worker replays the same stream into its part.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def generate_parts(seed, part_dirs):
    rng = np.random.default_rng(seed)

    def write_part(directory):
        # Pickled with the closure: each worker process clones the parent
        # generator and all parts draw identical records.
        return directory, rng.integers(0, 1 << 30)

    with ProcessPoolExecutor() as pool:
        return list(pool.map(write_part, part_dirs))
