"""Negative fixture for D4: every order-sensitive consumer sees
sorted(...) output, and order-insensitive set uses stay untouched."""

import hashlib


def digest_users(users):
    active = {u.name for u in users if u.active}
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(active):
        h.update(name.encode())
    return h.hexdigest()


def dump_zones(out, zones, dead):
    live = set(zones) - set(dead)
    out.write(",".join(sorted(live)))
    return len(live), sum(1 for z in live if z), ("us-east" in live)
