"""Negative fixture for rule D3: PYTHONHASHSEED-stable digest instead."""

import hashlib

import numpy as np


def client_rng(user_id, device_id, seed):
    digest = hashlib.blake2b(
        f"{user_id}:{device_id}".encode(), digest_size=8
    ).digest()
    entropy = int.from_bytes(digest, "little")
    return np.random.default_rng(np.random.SeedSequence([entropy, seed]))
