"""Module B of the cross-module provenance pair: the RNG consumer.

``stream_for`` lives in another module, so no *per-file* analysis can
certify the ``default_rng`` argument below — reprolint v1 flags it (and
so does v2 when this file is linted alone).  Linted together with
``streams.py``, the call graph proves ``stream_for`` returns a
SeedSequence-derived value and the sink is clean.
"""

import numpy as np

from streams import stream_for


def build_generators(root, count):
    return [np.random.default_rng(stream_for(root, i)) for i in range(count)]
