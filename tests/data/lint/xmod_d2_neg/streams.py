"""Module A of the cross-module provenance pair: the seed factory.

Nothing here names a ``default_rng`` sink; it derives per-worker
SeedSequence children from the run's root entropy.
"""


def stream_for(root, index):
    children = root.spawn(index + 1)
    return children[index]
