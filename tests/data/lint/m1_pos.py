"""Positive fixture for rule M1: pool workers closing over RNG state."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def simulate(seed, tasks):
    rng = np.random.default_rng(seed)

    def worker(task):
        # Pickled with the closure: every worker process replays the SAME
        # generator state, so the "independent" draws are clones.
        return task + rng.normal()

    with ProcessPoolExecutor() as pool:
        mapped = list(pool.map(worker, tasks))
        submitted = pool.submit(lambda t: rng.uniform() * t, tasks[0])
    return mapped, submitted.result()
