"""S1 fixture: the columnar layout, missing a column the schema carries."""

COLUMNS = (
    ("timestamp", "float64"),
    ("device_code", "int64"),
    ("user_id", "int64"),
)
