"""S1 fixture: the TSV layout, silently reordered against the schema."""

TSV_COLUMNS = (
    "timestamp",
    "user_id",
    "device_id",
    "volume",
)
