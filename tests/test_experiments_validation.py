"""Tests for the multi-seed validation harness."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.validation import (
    pass_rate_summary,
    validate,
)


class StableModule:
    """A fake experiment whose check always passes."""

    __name__ = "stable"

    @staticmethod
    def run(seed: int = 0):
        result = ExperimentResult(experiment="STABLE", title="fake")
        result.add_check("always", paper=1.0, measured=1.0, tolerance=0.1)
        result.add_check("note", paper=1.0, measured=5.0, kind="info")
        return result


class SeedyModule:
    """A fake experiment that fails on odd seeds."""

    __name__ = "seedy"

    @staticmethod
    def run(seed: int = 0):
        result = ExperimentResult(experiment="SEEDY", title="fake")
        result.add_check(
            "flaky", paper=1.0, measured=1.0 + (seed % 2), tolerance=0.1
        )
        return result


class NoSeedModule:
    """An experiment without a seed parameter is skipped."""

    __name__ = "noseed"

    @staticmethod
    def run():
        return ExperimentResult(experiment="NOSEED", title="fake")


def test_stable_experiment_is_robust():
    (outcome,) = validate([StableModule], seeds=[1, 2, 3])
    assert outcome.robust
    assert outcome.runs == 4  # default run + 3 seeds
    assert outcome.checks["always"].pass_rate == 1.0


def test_info_checks_not_aggregated():
    (outcome,) = validate([StableModule], seeds=[1])
    assert "note" not in outcome.checks


def test_fragile_experiment_detected():
    (outcome,) = validate([SeedyModule], seeds=[1, 2])
    assert not outcome.robust
    fragile = outcome.fragile_checks
    assert len(fragile) == 1
    assert fragile[0].name == "flaky"
    assert fragile[0].pass_rate == pytest.approx(2 / 3)
    lo, hi = fragile[0].spread
    assert (lo, hi) == (1.0, 2.0)


def test_modules_without_seed_skipped():
    outcomes = validate([NoSeedModule, StableModule], seeds=[1])
    assert [o.experiment for o in outcomes] == ["STABLE"]


def test_empty_seeds_rejected():
    with pytest.raises(ValueError):
        validate([StableModule], seeds=[])


def test_pass_rate_summary():
    outcomes = validate([StableModule, SeedyModule], seeds=[1, 2])
    robust, total, rate = pass_rate_summary(outcomes)
    assert (robust, total) == (1, 2)
    assert 0.5 < rate < 1.0


def test_summary_requires_outcomes():
    with pytest.raises(ValueError):
        pass_rate_summary([])


def test_render_mentions_status():
    (outcome,) = validate([SeedyModule], seeds=[1])
    assert "FRAGILE" in outcome.render()
    (outcome,) = validate([StableModule], seeds=[1])
    assert "ROBUST" in outcome.render()


def test_real_experiment_validates_across_seeds():
    """The dedup ablation is cheap enough to validate for real."""
    from repro.experiments import ablation_dedup

    (outcome,) = validate([ablation_dedup], seeds=[11, 12])
    assert outcome.robust
