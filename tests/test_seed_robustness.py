"""Seed robustness: the headline reproductions must not be seed artifacts.

The default experiment battery runs at one seed; these tests rerun the
most load-bearing recoveries at a *different* seed and scale to confirm
the calibration is structural, not a lucky draw.
"""

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.logs import Direction, DeviceType
from repro.tcpsim import sample_flow_population
from repro.workload import GeneratorOptions, generate_trace

ALT_SEED = 777


@pytest.fixture(scope="module")
def alt_report():
    records = generate_trace(
        1500, options=GeneratorOptions(max_chunks_per_file=5), seed=ALT_SEED
    )
    return analyze_trace(records)


def test_session_model_stable(alt_report):
    model = alt_report.interval_model
    assert model.tau == 3600.0
    assert 4.0 < model.within_session_mean_seconds < 25.0
    assert model.between_session_mean_seconds > 4 * 3600.0


def test_session_shares_stable(alt_report):
    shares = alt_report.session_shares
    assert shares.store_only == pytest.approx(0.70, abs=0.08)
    assert shares.mixed < 0.06


def test_storage_slope_stable(alt_report):
    assert alt_report.storage_slope_mb == pytest.approx(1.5, rel=0.45)


def test_table2_recovery_stable(alt_report):
    model = alt_report.store_size_model
    assert model is not None
    alpha1, mu1 = model.table_rows()[0]
    assert alpha1 == pytest.approx(0.91, abs=0.08)
    assert mu1 == pytest.approx(1.5, rel=0.35)


def test_usage_taxonomy_stable(alt_report):
    assert alt_report.upload_only_share == pytest.approx(0.5, abs=0.12)
    assert alt_report.never_retrieve_fraction == pytest.approx(0.83, abs=0.12)


def test_activity_model_stable(alt_report):
    fit = alt_report.store_activity
    assert fit.fit.c == pytest.approx(0.2, abs=0.08)
    assert fit.fit.r_squared > 0.98


def test_fig16_fractions_stable():
    fractions = {}
    for device in (DeviceType.ANDROID, DeviceType.IOS):
        flows = sample_flow_population(
            direction=Direction.STORE,
            device=device,
            n_flows=25,
            seed=ALT_SEED,
        )
        ratios = np.concatenate([f.processing_idle_ratios for f in flows])
        fractions[device] = float(np.mean(ratios > 1.0))
    assert fractions[DeviceType.ANDROID] == pytest.approx(0.60, abs=0.15)
    assert fractions[DeviceType.IOS] == pytest.approx(0.18, abs=0.12)
    assert fractions[DeviceType.ANDROID] > 2 * fractions[DeviceType.IOS]
