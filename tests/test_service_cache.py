"""Tests for the LRU/LFU web cache proxies."""

import pytest

from repro.service import LfuCache, LruCache


class TestLru:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_miss_then_hit(self):
        cache = LruCache(100)
        assert not cache.request("a", 10)
        assert cache.request("a", 10)
        stats = cache.stats()
        assert stats.requests == 2
        assert stats.hits == 1
        assert stats.hit_ratio == pytest.approx(0.5)

    def test_eviction_order_is_lru(self):
        cache = LruCache(20)
        cache.request("a", 10)
        cache.request("b", 10)
        cache.request("a", 10)  # touch a: b becomes LRU
        cache.request("c", 10)  # evicts b
        assert cache.request("a", 10)
        assert not cache.request("b", 10)

    def test_oversized_object_not_admitted(self):
        cache = LruCache(50)
        cache.request("big", 100)
        assert cache.used_bytes == 0
        assert not cache.request("big", 100)

    def test_used_bytes_tracks_contents(self):
        cache = LruCache(100)
        cache.request("a", 30)
        cache.request("b", 40)
        assert cache.used_bytes == 70

    def test_byte_hit_ratio(self):
        cache = LruCache(1000)
        cache.request("a", 100)  # miss
        cache.request("a", 100)  # hit
        cache.request("b", 300)  # miss
        stats = cache.stats()
        assert stats.byte_hit_ratio == pytest.approx(100 / 500)

    def test_eviction_counter(self):
        cache = LruCache(10)
        cache.request("a", 10)
        cache.request("b", 10)
        assert cache.stats().evictions == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            LruCache(10).request("a", 0)


class TestLfu:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LfuCache(0)

    def test_frequency_protects_hot_object(self):
        cache = LfuCache(20)
        for _ in range(5):
            cache.request("hot", 10)
        cache.request("cold1", 10)
        cache.request("cold2", 10)  # must evict cold1, not hot
        assert cache.request("hot", 10)
        assert not cache.request("cold1", 10)

    def test_tie_break_is_fifo(self):
        cache = LfuCache(20)
        cache.request("a", 10)
        cache.request("b", 10)
        cache.request("c", 10)  # a and b both count 1 -> evict a
        assert cache.request("b", 10)
        assert not cache.request("a", 10)

    def test_stats_shape(self):
        cache = LfuCache(100)
        cache.request("a", 10)
        cache.request("a", 10)
        stats = cache.stats()
        assert stats.hit_ratio == pytest.approx(0.5)
        assert stats.bytes_hit == 10

    def test_oversized_object_skipped(self):
        cache = LfuCache(5)
        cache.request("big", 100)
        assert cache.used_bytes == 0


class TestComparative:
    def test_lfu_beats_lru_on_scan_pollution(self):
        """A one-off scan flushes LRU but not LFU."""
        hot = [("hot", 10)] * 30
        scan = [(f"scan-{i}", 10) for i in range(20)]
        workload = hot[:10] + scan + hot[10:]
        lru, lfu = LruCache(30), LfuCache(30)
        for key, size in workload:
            lru.request(key, size)
            lfu.request(key, size)
        assert lfu.stats().hit_ratio > lru.stats().hit_ratio
