"""Tests for the fault-injection plan and retry policy primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultConfig,
    FaultPlan,
    RequestOutcome,
    RetryPolicy,
    Window,
    scaled_config,
)
from repro.logs import ResultCode


class TestWindow:
    def test_contains_half_open(self):
        w = Window(10.0, 20.0)
        assert w.contains(10.0)
        assert w.contains(19.999)
        assert not w.contains(20.0)
        assert not w.contains(9.999)
        assert w.duration == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Window(5.0, 4.0)


class TestFaultConfig:
    def test_default_is_benign(self):
        assert not FaultConfig().enabled

    def test_at_rate_scales_every_channel(self):
        config = FaultConfig.at_rate(0.05)
        assert config.enabled
        assert config.error_rate == 0.05
        assert config.crash_rate > 0
        assert config.slow_rate > 0
        assert config.metadata_outage_rate > 0

    def test_at_rate_zero_is_disabled(self):
        assert not FaultConfig.at_rate(0.0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(error_rate=1.0)
        with pytest.raises(ValueError):
            FaultConfig(error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(crash_rate=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(slow_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultConfig(horizon=0.0)

    def test_scaled_config(self):
        base = FaultConfig.at_rate(0.02)
        double = scaled_config(base, 2.0)
        assert double.error_rate == pytest.approx(0.04)
        assert double.crash_rate == pytest.approx(base.crash_rate * 2)
        assert double.crash_mean_downtime == base.crash_mean_downtime


class TestFaultPlan:
    def make(self, seed=0, n_frontends=3, rate=0.1):
        return FaultPlan(
            FaultConfig.at_rate(rate, horizon=24 * 3600.0),
            n_frontends=n_frontends,
            seed=seed,
        )

    def test_same_seed_same_schedule(self):
        a, b = self.make(seed=7), self.make(seed=7)
        for fid in range(3):
            assert a.crash_windows(fid) == b.crash_windows(fid)
            assert a.slow_windows(fid) == b.slow_windows(fid)
        assert a.metadata_windows == b.metadata_windows

    def test_different_seeds_differ(self):
        a, b = self.make(seed=1), self.make(seed=2)
        assert (
            a.crash_windows(0) != b.crash_windows(0)
            or a.metadata_windows != b.metadata_windows
        )

    def test_windows_sorted_and_disjoint(self):
        plan = self.make(rate=0.5)
        for windows in (
            *(plan.crash_windows(f) for f in range(3)),
            *(plan.slow_windows(f) for f in range(3)),
            plan.metadata_windows,
        ):
            for earlier, later in zip(windows, windows[1:]):
                assert earlier.end <= later.start

    def test_frontend_down_matches_windows(self):
        plan = self.make(rate=0.5)
        windows = plan.crash_windows(0)
        assert windows, "expected crash windows at rate 0.5 over a day"
        inside = (windows[0].start + windows[0].end) / 2.0
        assert plan.frontend_down(0, inside)
        assert plan.downtime_remaining(0, inside) == pytest.approx(
            windows[0].end - inside
        )
        assert not plan.frontend_down(0, windows[0].end)
        assert plan.downtime_remaining(0, windows[0].end) == 0.0

    def test_latency_multiplier(self):
        plan = self.make(rate=0.5)
        windows = plan.slow_windows(1)
        assert windows
        t = windows[0].start
        assert plan.latency_multiplier(1, t) == plan.config.slow_multiplier
        assert plan.latency_multiplier(1, windows[0].end) == 1.0

    def test_error_draws_are_per_frontend(self):
        """Draws on one front-end's stream never perturb another's."""
        a, b = self.make(seed=3), self.make(seed=3)
        # Interleave extra draws on front-end 0 of plan `a` only.
        seq_a = []
        seq_b = [b.draw_transient_error(1) for _ in range(50)]
        for _ in range(50):
            a.draw_transient_error(0)
            seq_a.append(a.draw_transient_error(1))
        assert seq_a == seq_b

    def test_adding_frontends_preserves_existing_schedules(self):
        small = self.make(seed=9, n_frontends=2)
        large = self.make(seed=9, n_frontends=4)
        # Spawn order is per-component blocks, so front-end 0's crash
        # stream is child 0 in both plans.
        assert small.crash_windows(0) == large.crash_windows(0)

    def test_disabled_plan_draws_nothing(self):
        plan = FaultPlan(FaultConfig(), n_frontends=2, seed=0)
        assert not plan.enabled
        assert not plan.draw_transient_error(0)
        assert not plan.frontend_down(0, 100.0)
        assert not plan.metadata_down(100.0)
        assert plan.latency_multiplier(0, 100.0) == 1.0

    def test_beyond_horizon_is_benign(self):
        plan = self.make(rate=0.5)
        after = plan.config.horizon + 10.0
        assert not plan.frontend_down(0, after)
        assert not plan.metadata_down(after)
        assert plan.latency_multiplier(0, after) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultConfig(), n_frontends=0)


class TestRequestOutcome:
    def test_ok(self):
        outcome = RequestOutcome(ResultCode.OK, elapsed=1.0, tchunk=1.0)
        assert outcome.ok
        assert not outcome.retryable
        assert not outcome.wants_failover

    def test_failover_only_for_unavailable_and_shed(self):
        for code, wants in (
            (ResultCode.UNAVAILABLE, True),
            (ResultCode.SHED, True),
            (ResultCode.SERVER_ERROR, False),
            (ResultCode.TIMEOUT, False),
        ):
            outcome = RequestOutcome(code, elapsed=0.5)
            assert outcome.retryable
            assert outcome.wants_failover is wants


class TestRetryPolicy:
    def test_nominal_delay_doubles_then_caps(self):
        policy = RetryPolicy(base_delay=0.2, max_delay=5.0, multiplier=2.0)
        assert policy.nominal_delay(1) == pytest.approx(0.2)
        assert policy.nominal_delay(2) == pytest.approx(0.4)
        assert policy.nominal_delay(5) == pytest.approx(3.2)
        assert policy.nominal_delay(6) == pytest.approx(5.0)
        assert policy.nominal_delay(50) == pytest.approx(5.0)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_delay(1, rng) == policy.nominal_delay(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.9)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(request_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().nominal_delay(0)

    @given(
        base=st.floats(0.01, 2.0),
        max_delay_extra=st.floats(0.0, 30.0),
        multiplier=st.floats(1.0, 4.0),
        jitter=st.floats(0.0, 0.99),
        failure_index=st.integers(1, 64),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_backoff_capped_and_monotonically_bounded(
        self, base, max_delay_extra, multiplier, jitter, failure_index, seed
    ):
        """Jittered delays never exceed ``max_backoff``; the pre-jitter
        schedule is non-decreasing and capped at ``max_delay``."""
        policy = RetryPolicy(
            base_delay=base,
            max_delay=base + max_delay_extra,
            multiplier=multiplier,
            jitter=jitter,
        )
        rng = np.random.default_rng(seed)
        delay = policy.backoff_delay(failure_index, rng)
        assert 0.0 <= delay <= policy.max_backoff
        nominals = [policy.nominal_delay(i) for i in range(1, failure_index + 1)]
        assert all(
            later >= earlier - 1e-12
            for earlier, later in zip(nominals, nominals[1:])
        )
        assert all(n <= policy.max_delay + 1e-12 for n in nominals)
