"""Tests for usage-pattern classification (Fig 7 / Table 3)."""

import pytest

from repro.core import classify_user, device_group_of, profile_users, table3
from repro.core.usage import ratio_samples
from repro.logs import (
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    UserDevices,
    VolumeTally,
)
from repro.workload import DeviceGroup, UserType

MB = 1024 * 1024


def tally(stored=0, retrieved=0):
    t = VolumeTally()
    t.stored_bytes = stored
    t.retrieved_bytes = retrieved
    return t


class TestClassifyUser:
    def test_occasional_below_1mb(self):
        assert classify_user(tally(stored=500_000)) is UserType.OCCASIONAL

    def test_zero_volume_is_occasional(self):
        assert classify_user(tally()) is UserType.OCCASIONAL

    def test_upload_only_with_zero_retrieval(self):
        assert classify_user(tally(stored=2 * MB)) is UserType.UPLOAD_ONLY

    def test_small_but_pure_upload_still_upload_only(self):
        # 1.1 MB stored, nothing retrieved: ratio is infinite.
        assert classify_user(tally(stored=1_200_000)) is UserType.UPLOAD_ONLY

    def test_download_only_with_zero_storage(self):
        assert classify_user(tally(retrieved=2 * MB)) is UserType.DOWNLOAD_ONLY

    def test_mixed_when_ratio_moderate(self):
        assert classify_user(tally(stored=5 * MB, retrieved=3 * MB)) is UserType.MIXED

    def test_extreme_ratio_upload_only(self):
        assert (
            classify_user(tally(stored=10**12, retrieved=1000))
            is UserType.UPLOAD_ONLY
        )

    def test_extreme_ratio_download_only(self):
        assert (
            classify_user(tally(stored=1000, retrieved=10**12))
            is UserType.DOWNLOAD_ONLY
        )


class TestDeviceGroup:
    def test_groups(self):
        assert (
            device_group_of(UserDevices(mobile_devices={"a"}))
            is DeviceGroup.ONE_MOBILE
        )
        assert (
            device_group_of(UserDevices(mobile_devices={"a", "b"}))
            is DeviceGroup.MULTI_MOBILE
        )
        assert (
            device_group_of(
                UserDevices(mobile_devices={"a"}, pc_devices={"p"})
            )
            is DeviceGroup.MOBILE_AND_PC
        )
        assert (
            device_group_of(UserDevices(pc_devices={"p"}))
            is DeviceGroup.PC_ONLY
        )


def chunk(user, direction, volume, device_type=DeviceType.ANDROID, device="m"):
    return LogRecord(
        timestamp=0.0,
        device_type=device_type,
        device_id=device,
        user_id=user,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
    )


class TestProfiles:
    def records(self):
        return [
            chunk(1, Direction.STORE, 10 * MB),
            chunk(2, Direction.RETRIEVE, 10 * MB),
            chunk(3, Direction.STORE, 10 * MB),
            chunk(3, Direction.RETRIEVE, 8 * MB),
            chunk(4, Direction.STORE, 100),  # occasional
            chunk(5, Direction.STORE, 5 * MB, DeviceType.PC, "p"),
        ]

    def test_profile_types(self):
        profiles = {p.user_id: p for p in profile_users(self.records())}
        assert profiles[1].user_type is UserType.UPLOAD_ONLY
        assert profiles[2].user_type is UserType.DOWNLOAD_ONLY
        assert profiles[3].user_type is UserType.MIXED
        assert profiles[4].user_type is UserType.OCCASIONAL
        assert profiles[5].group is DeviceGroup.PC_ONLY

    def test_ratio_samples_grouped(self):
        profiles = profile_users(self.records())
        mobile = ratio_samples(
            profiles, (DeviceGroup.ONE_MOBILE, DeviceGroup.MULTI_MOBILE)
        )
        pc = ratio_samples(profiles, (DeviceGroup.PC_ONLY,))
        assert mobile.size == 4
        assert pc.size == 1

    def test_table3_shares(self):
        breakdowns = table3(profile_users(self.records()))
        mobile = breakdowns["mobile_only"]
        assert mobile.n_users == 4
        assert mobile.user_share[UserType.UPLOAD_ONLY] == pytest.approx(0.25)
        assert mobile.user_share[UserType.MIXED] == pytest.approx(0.25)
        # Upload-only user 1 stored 10 of the 18 MB (+100 B) mobile total.
        assert mobile.store_volume_share[UserType.UPLOAD_ONLY] == pytest.approx(
            10 * MB / (20 * MB + 100), rel=0.01
        )

    def test_table3_requires_users(self):
        with pytest.raises(ValueError):
            table3([])
