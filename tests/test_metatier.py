"""Sharded metadata tier battery: identity, policies, reconciliation.

Four layers, mirroring the ISSUE 7 acceptance criteria:

* **Zero-knob identity** — a cluster built with the default
  ``metadata_shards=1, metadata_replicas=0`` is the exact historical
  deployment: same ``MetadataServer`` type, byte-identical fault
  schedules, access logs and ``FaultStats``, in-process and across
  interpreters with different hash salts.
* **Stream invariance** — arming the tier never perturbs the
  independent schedules, and growing the tier (more shards, more
  replicas) never reshuffles existing node schedules.
* **Read policies** — primary-only / any-replica / quorum semantics,
  including staleness skips and the replica/failover attribution
  counters, pinned against a controllable fake plan.
* **Partial unavailability + reconciliation** — some users block while
  others proceed; per-shard tallies sum to the ``FaultStats`` umbrellas
  with no slack, and ``telemetry.reconcile`` enforces it.
"""

import os
import subprocess
import sys

import pytest

from repro.faults import (
    FaultConfig,
    FaultPlan,
    FaultStats,
    MetadataUnavailableError,
    RetryPolicy,
    ZoneConfig,
)
from repro.logs.io import record_to_tsv
from repro.logs.schema import DeviceType
from repro.service import (
    ClientNetwork,
    MetadataServer,
    ServiceCluster,
    ShardedMetadataTier,
    build_manifest,
    frontend_for,
    shard_for,
    stable_placement,
)
from repro.service.replay import replay_trace, synthetic_replay_trace

CHAOS_POLICY = RetryPolicy(
    max_attempts=10, base_delay=0.5, max_delay=25.0, multiplier=2.0
)


def outage_config(rate=120.0, downtime=12.0):
    return FaultConfig(
        metadata_outage_rate=rate, metadata_mean_downtime=downtime
    )


def sharded_cluster(policy="quorum", replicas=2, shards=4, config=None):
    return ServiceCluster(
        n_frontends=2,
        faults=config or outage_config(),
        fault_seed=7,
        retry_policy=CHAOS_POLICY,
        metadata_shards=shards,
        metadata_replicas=replicas,
        read_policy=policy,
    )


def log_bytes(cluster):
    return "\n".join(record_to_tsv(r) for r in cluster.access_log())


def drive_workload(cluster, n_users=6, files_per_user=3, seed=11):
    reports = []
    for user in range(1, n_users + 1):
        client = cluster.new_client(
            user, f"dev{user}", DeviceType.ANDROID,
            network=ClientNetwork(rtt=0.1, bandwidth=2_000_000.0),
            seed=seed,
        )
        client.clock = 40.0 * user
        for f in range(files_per_user):
            reports.append(
                client.store_file(
                    f"u{user}f{f}.jpg", f"u{user}/f{f}".encode(),
                    500_000 + 10_000 * f,
                )
            )
    return reports


# ----------------------------------------------------------------------
# Placement helpers
# ----------------------------------------------------------------------


class TestPlacement:
    def test_rejects_empty_bucket_set(self):
        with pytest.raises(ValueError):
            stable_placement("x", 1, 0)

    def test_placement_in_range_and_deterministic(self):
        for uid in range(200):
            b = stable_placement("shard", uid, 7)
            assert 0 <= b < 7
            assert b == stable_placement("shard", uid, 7)

    def test_domains_are_independent(self):
        # Identical keys land differently across domains for *some* user
        # — the digests are keyed by the domain prefix.
        assert any(
            frontend_for(uid, 8) != shard_for(uid, 8) for uid in range(64)
        )

    def test_spreads_sequential_users(self):
        buckets = {shard_for(uid, 4) for uid in range(40)}
        assert buckets == {0, 1, 2, 3}

    def test_pinned_values_for_cross_process_stability(self):
        # blake2b is salt-free: these literals must never drift.
        assert frontend_for(0, 4) == stable_placement("frontend", 0, 4)
        assert [shard_for(u, 4) for u in range(6)] == [
            stable_placement("shard", u, 4) for u in range(6)
        ]


# ----------------------------------------------------------------------
# Zero-knob identity
# ----------------------------------------------------------------------


class TestZeroKnobIdentity:
    def test_default_knobs_build_plain_metadata_server(self):
        cluster = ServiceCluster(n_frontends=2, faults=outage_config())
        assert type(cluster.metadata) is MetadataServer

    def test_logs_and_stats_identical_with_explicit_defaults(self):
        config = FaultConfig.at_rate(0.05)
        base = ServiceCluster(
            n_frontends=2, faults=config, fault_seed=7,
            retry_policy=CHAOS_POLICY,
        )
        explicit = ServiceCluster(
            n_frontends=2, faults=config, fault_seed=7,
            retry_policy=CHAOS_POLICY,
            metadata_shards=1, metadata_replicas=0,
            read_policy="primary-only",
        )
        drive_workload(base)
        drive_workload(explicit)
        assert log_bytes(base) == log_bytes(explicit)
        assert base.fault_stats.as_dict() == explicit.fault_stats.as_dict()
        assert base.fault_stats.shard_rejections == 0

    def test_plan_schedules_unchanged_by_arming_the_tier(self):
        config = FaultConfig.at_rate(0.05)
        plain = FaultPlan(config, n_frontends=3, seed=9)
        armed = FaultPlan(
            config, n_frontends=3, seed=9,
            n_metadata_shards=4, n_metadata_replicas=2,
        )
        assert plain.metadata_windows == armed.metadata_windows
        for fid in range(3):
            assert plain.crash_windows(fid) == armed.crash_windows(fid)
            assert plain.slow_windows(fid) == armed.slow_windows(fid)
        assert not plain.metatier_armed
        assert armed.metatier_armed

    def test_byte_identical_across_processes(self):
        """A fresh interpreter with a different hash salt reproduces the
        default-knob access log byte for byte."""
        snippet = (
            "from tests.test_metatier import (sharded_cluster, log_bytes,"
            " drive_workload, outage_config)\n"
            "import hashlib\n"
            "cluster = sharded_cluster()\n"
            "drive_workload(cluster)\n"
            "print(hashlib.md5(log_bytes(cluster).encode()).hexdigest())\n"
        )
        import hashlib

        local = sharded_cluster()
        drive_workload(local)
        digest = hashlib.md5(log_bytes(local).encode()).hexdigest()
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join((os.path.join(repo, "src"), repo))
        env["PYTHONHASHSEED"] = "999"
        remote = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=repo, check=True,
        ).stdout.strip()
        assert remote == digest


# ----------------------------------------------------------------------
# Stream invariance (growth never reshuffles)
# ----------------------------------------------------------------------


class TestStreamInvariance:
    def test_adding_replicas_keeps_existing_node_schedules(self):
        config = outage_config()
        small = FaultPlan(
            config, seed=7, n_metadata_shards=4, n_metadata_replicas=1
        )
        grown = FaultPlan(
            config, seed=7, n_metadata_shards=4, n_metadata_replicas=3
        )
        for shard in range(4):
            for node in range(2):
                assert small.metadata_node_windows(
                    shard, node
                ) == grown.metadata_node_windows(shard, node)

    def test_adding_shards_keeps_existing_shard_schedules(self):
        config = outage_config()
        small = FaultPlan(
            config, seed=7, n_metadata_shards=4, n_metadata_replicas=2
        )
        grown = FaultPlan(
            config, seed=7, n_metadata_shards=6, n_metadata_replicas=2
        )
        for shard in range(4):
            for node in range(3):
                assert small.metadata_node_windows(
                    shard, node
                ) == grown.metadata_node_windows(shard, node)

    def test_zone_spread_never_colocates_shard_nodes(self):
        config = FaultConfig(
            metadata_outage_rate=10.0,
            zones=ZoneConfig(n_zones=3, zone_crash_rate=0.5),
        )
        plan = FaultPlan(
            config, n_frontends=3, seed=1,
            n_metadata_shards=4, n_metadata_replicas=2,
        )
        for shard in range(4):
            zones = [plan.metadata_node_zone(shard, n) for n in range(3)]
            assert len(set(zones)) == 3


# ----------------------------------------------------------------------
# Read policies, pinned against a controllable plan
# ----------------------------------------------------------------------


class FakePlan:
    """A plan stub whose down/stale sets the test controls directly."""

    def __init__(self, n_shards, n_replicas):
        self.n_metadata_shards = n_shards
        self.n_metadata_replicas = n_replicas
        self.stats = FaultStats()
        self.enabled = True
        self.metatier_armed = True
        self.down = set()   # (shard, node)
        self.stale = set()  # (shard, node)

    def metadata_node_down(self, shard, node, t):
        return (shard, node) in self.down

    def metadata_node_stale(self, shard, node, t):
        return (shard, node) in self.stale


def tier_with(plan, policy):
    return ShardedMetadataTier(
        n_frontends=2,
        n_shards=plan.n_metadata_shards,
        n_replicas=plan.n_metadata_replicas,
        read_policy=policy,
        fault_plan=plan,
    )


def seed_file(tier, user):
    m = build_manifest(f"u{user}.jpg", f"u{user}".encode(), 400_000)
    decision = tier.request_store(user, m, now=0.0)
    return tier.commit_store(user, m, decision.frontend_id, now=0.0)


class TestReadPolicies:
    def test_rejects_unknown_policy_and_mismatched_plan(self):
        with pytest.raises(ValueError):
            ShardedMetadataTier(n_shards=2, read_policy="gossip")
        plan = FakePlan(4, 2)
        with pytest.raises(ValueError):
            ShardedMetadataTier(n_shards=2, n_replicas=1, fault_plan=plan)

    def test_primary_only_ignores_healthy_replicas(self):
        plan = FakePlan(2, 2)
        tier = tier_with(plan, "primary-only")
        user = next(u for u in range(50) if tier.shard_of(u) == 0)
        seed_file(tier, user)
        plan.down = {(0, 0)}  # replicas both up
        with pytest.raises(MetadataUnavailableError):
            tier.user_files(user, now=5.0)
        assert tier.per_shard_rejections[0] == 1
        assert plan.stats.shard_rejections == 1
        assert plan.stats.metadata_rejections == 1
        assert plan.stats.replica_reads == 0

    def test_any_replica_serves_through_primary_outage(self):
        plan = FakePlan(2, 2)
        tier = tier_with(plan, "any-replica")
        user = next(u for u in range(50) if tier.shard_of(u) == 0)
        seed_file(tier, user)
        plan.down = {(0, 0)}
        assert len(tier.user_files(user, now=5.0)) == 1
        assert plan.stats.replica_reads == 1
        assert plan.stats.failover_reads == 1
        # All nodes down: even any-replica rejects.
        plan.down = {(0, 0), (0, 1), (0, 2)}
        with pytest.raises(MetadataUnavailableError):
            tier.user_files(user, now=6.0)

    def test_any_replica_round_robin_counts_replica_reads(self):
        plan = FakePlan(1, 2)
        tier = tier_with(plan, "any-replica")
        user = 1
        seed_file(tier, user)
        for _ in range(6):  # all nodes up: rotation 0,1,2,0,1,2
            tier.user_files(user, now=1.0)
        assert plan.stats.replica_reads == 4
        assert plan.stats.failover_reads == 0  # primary was never down

    def test_quorum_needs_majority(self):
        plan = FakePlan(2, 2)
        tier = tier_with(plan, "quorum")
        user = next(u for u in range(50) if tier.shard_of(u) == 0)
        seed_file(tier, user)
        plan.down = {(0, 0), (0, 2)}  # 1 of 3 up: no majority
        with pytest.raises(MetadataUnavailableError):
            tier.user_files(user, now=5.0)
        plan.down = {(0, 0)}  # 2 of 3 up: replica serves
        assert len(tier.user_files(user, now=6.0)) == 1
        assert plan.stats.replica_reads == 1
        assert plan.stats.failover_reads == 1

    def test_quorum_skips_stale_replica(self):
        plan = FakePlan(1, 2)
        tier = tier_with(plan, "quorum")
        seed_file(tier, 1)
        plan.down = {(0, 0)}
        plan.stale = {(0, 1)}  # first replica catching up
        assert len(tier.user_files(1, now=5.0)) == 1
        assert plan.stats.stale_reads_avoided == 1
        assert plan.stats.replica_reads == 1
        # Both replicas stale: consistency wins, read rejected.
        plan.stale = {(0, 1), (0, 2)}
        with pytest.raises(MetadataUnavailableError):
            tier.user_files(1, now=6.0)

    def test_quorum_primary_serves_without_counters(self):
        plan = FakePlan(1, 2)
        tier = tier_with(plan, "quorum")
        seed_file(tier, 1)
        plan.down = {(0, 1)}  # a replica down, primary fine
        assert len(tier.user_files(1, now=5.0)) == 1
        assert plan.stats.replica_reads == 0

    def test_writes_are_primary_first_under_every_policy(self):
        for policy in ("primary-only", "quorum", "any-replica"):
            plan = FakePlan(1, 2)
            tier = tier_with(plan, policy)
            plan.down = {(0, 0)}
            m = build_manifest("f.jpg", b"x", 400_000)
            with pytest.raises(MetadataUnavailableError):
                tier.request_store(1, m, now=5.0)

    def test_commit_accepted_during_primary_outage(self):
        plan = FakePlan(1, 2)
        tier = tier_with(plan, "quorum")
        m = build_manifest("f.jpg", b"x", 400_000)
        decision = tier.request_store(1, m, now=0.0)
        plan.down = {(0, 0), (0, 1), (0, 2)}
        url = tier.commit_store(1, m, decision.frontend_id, now=5.0)
        assert url
        plan.down = set()
        record, _ = tier.resolve_url(url, now=10.0)
        assert record.owner == 1

    def test_unknown_url_raises_key_error(self):
        tier = ShardedMetadataTier(n_shards=2)
        with pytest.raises(KeyError):
            tier.resolve_url("https://nope")

    def test_blocked_users_tracks_rejected_user_ids(self):
        plan = FakePlan(2, 0)
        tier = tier_with(plan, "primary-only")
        u0 = next(u for u in range(50) if tier.shard_of(u) == 0)
        u1 = next(u for u in range(50) if tier.shard_of(u) == 1)
        plan.down = {(0, 0)}
        with pytest.raises(MetadataUnavailableError):
            tier.user_files(u0, now=5.0)
        assert tier.user_files(u1, now=5.0) == []
        assert tier.blocked_users == {u0}


# ----------------------------------------------------------------------
# Dedup semantics across shards
# ----------------------------------------------------------------------


class TestShardedNamespace:
    def test_same_shard_users_dedup_cross_shard_users_do_not(self):
        tier = ShardedMetadataTier(n_shards=4)
        users = list(range(200))
        s0 = [u for u in users if tier.shard_of(u) == 0]
        s1 = [u for u in users if tier.shard_of(u) == 1]
        m = build_manifest("f.jpg", b"shared", 400_000)
        decision = tier.request_store(s0[0], m)
        tier.commit_store(s0[0], m, decision.frontend_id)
        assert tier.request_store(s0[1], m).duplicate
        assert not tier.request_store(s1[0], m).duplicate
        assert tier.store_requests == 3
        assert tier.dedup_hits == 1

    def test_shard_routing_is_stable(self):
        tier = ShardedMetadataTier(n_shards=4)
        for user in range(64):
            assert tier.shard_of(user) == shard_for(user, 4)


# ----------------------------------------------------------------------
# Partial unavailability + exact reconciliation (full replay)
# ----------------------------------------------------------------------


class TestPartialUnavailability:
    def _replay(self, policy, replicas):
        cluster = sharded_cluster(policy=policy, replicas=replicas)
        trace = synthetic_replay_trace(16, 20160814)
        result = replay_trace(trace, cluster, rate=0.5, seed=3)
        return cluster, result

    def test_some_users_blocked_others_untouched(self):
        cluster, result = self._replay("primary-only", 0)
        tier = cluster.metadata
        trace_users = {op.user_id for op in synthetic_replay_trace(16, 20160814)}
        assert tier.blocked_users, "outages must block someone"
        assert tier.blocked_users < trace_users, "but never everyone"
        assert sum(tier.per_shard_rejections) > 0
        assert 0 in tier.per_shard_rejections or min(
            tier.per_shard_rejections
        ) < max(tier.per_shard_rejections), "impact must be imbalanced"

    def test_reconciliation_exact_no_slack(self):
        cluster, result = self._replay("quorum", 2)
        stats = cluster.fault_stats
        tier = cluster.metadata
        assert sum(tier.per_shard_rejections) == stats.shard_rejections
        assert stats.shard_rejections == stats.metadata_rejections
        assert stats.failover_reads <= stats.replica_reads
        report = result.telemetry.reconcile(stats)
        assert report["metadata_ok"]
        assert report["matched"]
        pair = report["counters"]["metadata_rejections"]
        assert pair["telemetry"] == pair["fault_stats"]

    def test_reconciliation_catches_tampering(self):
        cluster, result = self._replay("quorum", 2)
        stats = cluster.fault_stats
        stats.shard_rejections += 1
        assert not result.telemetry.reconcile(stats)["matched"]

    def test_snapshot_carries_metadata_section(self):
        cluster, result = self._replay("quorum", 2)
        snap = result.snapshot()
        meta = snap.metadata
        assert meta["shards"] == 4
        assert meta["replicas"] == 2
        assert meta["read_policy"] == "quorum"
        assert meta["shard_rejections"] == list(
            cluster.metadata.per_shard_rejections
        )
        assert "metadata" in snap.to_json()
        assert "metadata:" in snap.render()

    def test_unsharded_availability_summary(self):
        cluster = ServiceCluster(n_frontends=2)
        avail = cluster.metadata_availability()
        assert avail["shards"] == 1
        assert avail["replicas"] == 0
        assert avail["shard_rejections"] == [0]
