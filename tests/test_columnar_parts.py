"""Tests for memory-mappable columnar parts and the mmap NPZ loader.

Covers the zero-copy worker hand-off surface: the append-then-finalize
part writer (`repro.logs.parts`), the torn-write/corruption rejection
paths of `read_columnar_part`, and the zip-offset NPZ loader
(`repro.logs.npz.load_npz`) that memory-maps stored members where
`np.load(mmap_mode=...)` silently refuses to.
"""

import json

import numpy as np
import pytest

from repro.core.sessions import sessionize_columnar
from repro.core.usage import profile_users_columnar
from repro.logs.columnar import COLUMNS, ColumnarTrace
from repro.logs.npz import load_npz
from repro.logs.parts import (
    PART_META,
    ColumnarPartWriter,
    read_columnar_part,
    write_columnar_part,
)
from repro.workload.generator import GeneratorOptions, generate_trace

OPTIONS = GeneratorOptions(max_chunks_per_file=3)


def small_trace(n_users=12, n_pc=3, seed=7):
    return ColumnarTrace.from_records(
        generate_trace(n_users, n_pc_only_users=n_pc, options=OPTIONS, seed=seed)
    )


def assert_traces_equal(a: ColumnarTrace, b: ColumnarTrace) -> None:
    """Byte-level equality: every column and the device pool."""
    assert len(a) == len(b)
    assert a.device_pool == b.device_pool
    for name, dtype in COLUMNS:
        left = np.asarray(getattr(a, name))
        right = np.asarray(getattr(b, name))
        assert left.dtype == np.dtype(dtype)
        assert right.dtype == np.dtype(dtype)
        assert np.array_equal(left, right), f"column {name} differs"


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


def test_part_roundtrip(tmp_path):
    trace = small_trace()
    write_columnar_part(trace, tmp_path / "p")
    back = read_columnar_part(tmp_path / "p")
    assert_traces_equal(back, trace)


def test_part_roundtrip_without_mmap(tmp_path):
    trace = small_trace()
    write_columnar_part(trace, tmp_path / "p")
    back = read_columnar_part(tmp_path / "p", mmap=False)
    assert_traces_equal(back, trace)
    assert not isinstance(back.timestamp, np.memmap)


def test_empty_part_roundtrip(tmp_path):
    write_columnar_part(ColumnarTrace.empty(), tmp_path / "p")
    back = read_columnar_part(tmp_path / "p")
    assert len(back) == 0
    assert back.device_pool == ()


def test_multi_append_matches_concatenate(tmp_path):
    """Batches with different device pools merge exactly like concatenate."""
    batches = [small_trace(seed=s, n_users=6, n_pc=2) for s in (1, 2, 3)]
    # The batches genuinely have distinct pools (fresh device ids per seed).
    assert len({b.device_pool for b in batches}) == len(batches)
    with ColumnarPartWriter(tmp_path / "p") as writer:
        for batch in batches:
            writer.append(batch)
        writer.append(ColumnarTrace.empty())  # no-op, not an error
    assert writer.n_rows == sum(len(b) for b in batches)
    back = read_columnar_part(tmp_path / "p")
    assert_traces_equal(back, ColumnarTrace.concatenate(batches))


def test_append_after_close_rejected(tmp_path):
    writer = ColumnarPartWriter(tmp_path / "p")
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.append(small_trace(n_users=2, n_pc=0))


# ----------------------------------------------------------------------
# Memory-mapped parts flow through the analyses
# ----------------------------------------------------------------------


def test_mmap_part_is_readonly_memmap(tmp_path):
    trace = small_trace()
    write_columnar_part(trace, tmp_path / "p")
    back = read_columnar_part(tmp_path / "p", mmap=True)
    for name, _ in COLUMNS:
        column = getattr(back, name)
        assert isinstance(column, np.memmap), name
        assert not column.flags.writeable, name
        with pytest.raises((ValueError, RuntimeError)):
            column[:1] = column[:1]


def test_mmap_part_supports_analyses(tmp_path):
    """Read-only memmap columns must survive every downstream consumer."""
    trace = small_trace().sorted_by_user_time()
    write_columnar_part(trace, tmp_path / "p")
    back = read_columnar_part(tmp_path / "p")

    mobile = back.select(back.mobile_mask)
    reference = trace.select(trace.mobile_mask)
    got = sessionize_columnar(mobile)
    want = sessionize_columnar(reference)
    for field in (
        "user_id", "start", "end", "first_op", "last_op",
        "n_store_ops", "n_retrieve_ops", "store_volume", "retrieve_volume",
    ):
        assert np.array_equal(getattr(got, field), getattr(want, field)), field
    assert profile_users_columnar(back) == profile_users_columnar(trace)
    assert_traces_equal(
        ColumnarTrace.concatenate([back, back]),
        ColumnarTrace.concatenate([trace, trace]),
    )


# ----------------------------------------------------------------------
# Corruption and torn writes
# ----------------------------------------------------------------------


def test_missing_manifest_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    (tmp_path / "p" / PART_META).unlink()
    with pytest.raises(ValueError, match="unreadable"):
        read_columnar_part(tmp_path / "p")


def test_garbage_manifest_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    (tmp_path / "p" / PART_META).write_text("{not json")
    with pytest.raises(ValueError, match="unreadable"):
        read_columnar_part(tmp_path / "p")


def test_schema_version_mismatch_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    meta = json.loads((tmp_path / "p" / PART_META).read_text())
    meta["schema_version"] = meta["schema_version"] + 1
    (tmp_path / "p" / PART_META).write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="schema version"):
        read_columnar_part(tmp_path / "p")


def test_malformed_manifest_fields_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    meta = json.loads((tmp_path / "p" / PART_META).read_text())
    meta["n_records"] = "many"
    (tmp_path / "p" / PART_META).write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="malformed"):
        read_columnar_part(tmp_path / "p")


def test_missing_column_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    (tmp_path / "p" / "volume.npy").unlink()
    with pytest.raises(ValueError, match="volume"):
        read_columnar_part(tmp_path / "p")


def test_truncated_column_rejected(tmp_path):
    write_columnar_part(small_trace(), tmp_path / "p")
    path = tmp_path / "p" / "timestamp.npy"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 16])
    with pytest.raises(ValueError, match="timestamp"):
        read_columnar_part(tmp_path / "p")


def test_row_count_mismatch_rejected(tmp_path):
    """A manifest claiming more rows than the columns hold never parses."""
    write_columnar_part(small_trace(), tmp_path / "p")
    meta = json.loads((tmp_path / "p" / PART_META).read_text())
    meta["n_records"] += 1
    (tmp_path / "p" / PART_META).write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="does not match"):
        read_columnar_part(tmp_path / "p")


def test_aborted_writer_leaves_invalid_part(tmp_path):
    """An exception mid-write must not produce a readable part."""
    trace = small_trace()
    with pytest.raises(RuntimeError, match="mid-write"):
        with ColumnarPartWriter(tmp_path / "p") as writer:
            writer.append(trace)
            raise RuntimeError("simulated crash mid-write")
    assert not (tmp_path / "p" / PART_META).exists()
    with pytest.raises(ValueError):
        read_columnar_part(tmp_path / "p")


# ----------------------------------------------------------------------
# load_npz — the zip-offset mmap loader
# ----------------------------------------------------------------------


def _payload():
    return {
        "a": np.arange(10, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 7),
        "flag": np.array([True, False, True]),
        "scalar": np.int64(5),
    }


def test_load_npz_matches_np_load(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, **_payload())
    ours = load_npz(path)
    theirs = np.load(path, allow_pickle=False)
    assert set(ours) == set(theirs.files)
    for name in theirs.files:
        assert np.array_equal(np.asarray(ours[name]), theirs[name]), name
        assert np.asarray(ours[name]).dtype == theirs[name].dtype


def test_load_npz_uncompressed_members_are_memmapped(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, **_payload())
    data = load_npz(path, mmap=True)
    assert isinstance(data["a"], np.memmap)
    assert isinstance(data["b"], np.memmap)
    assert not data["a"].flags.writeable


def test_load_npz_mmap_false_reads_plain_arrays(tmp_path):
    path = tmp_path / "x.npz"
    np.savez(path, **_payload())
    data = load_npz(path, mmap=False)
    for name in ("a", "b", "flag"):
        assert not isinstance(data[name], np.memmap), name


def test_load_npz_compressed_falls_back(tmp_path):
    """Deflated members cannot be mapped; they still load correctly."""
    path = tmp_path / "x.npz"
    np.savez_compressed(path, **_payload())
    data = load_npz(path, mmap=True)
    theirs = np.load(path, allow_pickle=False)
    for name in theirs.files:
        assert not isinstance(data[name], np.memmap), name
        assert np.array_equal(np.asarray(data[name]), theirs[name]), name


def test_load_npz_rejects_corrupt_file(tmp_path):
    path = tmp_path / "x.npz"
    path.write_bytes(b"this is not a zip archive at all")
    with pytest.raises(ValueError):
        load_npz(path)


def test_load_npz_missing_file(tmp_path):
    with pytest.raises(OSError):
        load_npz(tmp_path / "absent.npz")
