"""Tests for the paper-calibrated configuration defaults."""

import pytest

from repro.workload import (
    DeviceGroup,
    PAPER_CONFIG,
    UserType,
    WorkloadConfig,
)
from repro.workload.config import DiurnalModel


def test_default_config_is_complete():
    config = WorkloadConfig()
    assert config.observation_days == 7
    assert 0 < config.first_day_cohort < 1


def test_user_mix_shares_normalized():
    config = WorkloadConfig()
    for group in DeviceGroup:
        shares = config.user_mix.shares(group)
        assert set(shares) == set(UserType)
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.02)


def test_multi_mobile_users_more_mixed_than_single():
    """The Fig 7b mechanism: multi-device users sync between devices."""
    config = WorkloadConfig()
    single = config.user_mix.shares(DeviceGroup.ONE_MOBILE)
    multi = config.user_mix.shares(DeviceGroup.MULTI_MOBILE)
    assert multi[UserType.MIXED] > single[UserType.MIXED]
    assert multi[UserType.UPLOAD_ONLY] < single[UserType.UPLOAD_ONLY]


def test_table2_plants_match_paper():
    sizes = WorkloadConfig().file_sizes
    assert sizes.store_weights == (0.91, 0.07, 0.02)
    assert sizes.store_means_mb == (1.5, 13.1, 77.4)
    assert sizes.retrieve_weights == (0.46, 0.26, 0.28)
    assert sizes.retrieve_means_mb == (1.6, 29.8, 146.8)


def test_session_mix_matches_paper():
    mix = WorkloadConfig().session_mix
    assert mix.store_only == pytest.approx(0.682)
    assert mix.retrieve_only == pytest.approx(0.299)
    assert mix.store_only + mix.retrieve_only + mix.mixed == pytest.approx(
        1.0
    )


def test_activity_plants_match_fig10():
    activity = WorkloadConfig().activity
    assert activity.store_c == 0.20
    assert activity.retrieve_c == 0.15
    assert activity.retrieve_c < activity.store_c


def test_engagement_probabilities_valid():
    engagement = WorkloadConfig().engagement
    for group in DeviceGroup:
        assert 0.0 < engagement.p_engaged[group] <= 1.0
    assert engagement.p_engaged[DeviceGroup.MULTI_MOBILE] > (
        engagement.p_engaged[DeviceGroup.ONE_MOBILE]
    )


def test_diurnal_surge_in_evening():
    weights = WorkloadConfig().diurnal.hourly_weights
    assert max(weights) == weights[22]
    assert min(weights) in (weights[3], weights[4])


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalModel(hourly_weights=(1.0,) * 12)


def test_paper_config_singleton_equals_defaults():
    assert PAPER_CONFIG.session_mix == WorkloadConfig().session_mix
    assert PAPER_CONFIG.file_sizes == WorkloadConfig().file_sizes


def test_interval_model_scales():
    intervals = WorkloadConfig().intervals
    assert 10 ** intervals.within_mean_log10 == pytest.approx(11.2, rel=0.1)
    assert 10 ** intervals.between_mean_log10 == pytest.approx(
        86_400.0, rel=0.15
    )
    assert 0 <= intervals.p_batch_small <= 1
