"""Tests for parallel striping, pacing-after-idle and shallow buffers."""

import pytest

from repro.events import EventLoop
from repro.logs import CHUNK_SIZE, Direction
from repro.tcpsim import (
    ANDROID,
    NetworkPath,
    PACED_RESTART,
    TcpTransfer,
    connection_sweep,
    simulate_flow,
    simulate_parallel_upload,
)
from repro.tcpsim.congestion import CongestionControl


class TestShallowBuffer:
    def test_buffer_validated(self):
        with pytest.raises(ValueError):
            NetworkPath(buffer_bytes=0)

    def test_burst_into_shallow_buffer_drops_tail(self):
        path = NetworkPath(
            bandwidth=1_000_000.0, one_way_delay=0.05, buffer_bytes=3000.0
        )
        outcomes = [path.transmit("up", 0.0, 1400)[1] for _ in range(5)]
        assert outcomes[0] and outcomes[1]
        assert not all(outcomes)

    def test_spaced_packets_survive_shallow_buffer(self):
        path = NetworkPath(
            bandwidth=1_000_000.0, one_way_delay=0.05, buffer_bytes=3000.0
        )
        outcomes = [
            path.transmit("up", i * 0.01, 1400)[1] for i in range(20)
        ]
        assert all(outcomes)

    def test_unbounded_buffer_never_drops(self):
        path = NetworkPath(bandwidth=1_000_000.0, one_way_delay=0.05)
        assert all(path.transmit("up", 0.0, 1400)[1] for _ in range(100))


class TestPacing:
    def run_two_chunk_flow(self, pace):
        loop = EventLoop()
        path = NetworkPath(bandwidth=5_000_000.0, one_way_delay=0.05)
        transfer = TcpTransfer(
            loop,
            path,
            "up",
            congestion=CongestionControl(slow_start_after_idle=False),
            pace_after_idle=pace,
        )
        done = []

        def after_first(receipt):
            loop.schedule_after(
                5.0, lambda: transfer.send_message(300_000, done.append)
            )

        transfer.connect(lambda: transfer.send_message(300_000, after_first))
        loop.run()
        return transfer, done

    def test_pacing_activates_after_long_idle(self):
        transfer, done = self.run_two_chunk_flow(pace=True)
        assert transfer.paced_windows == 1
        assert len(done) == 1
        assert not done[0].restarted  # SSAI is off

    def test_no_pacing_without_option(self):
        transfer, _ = self.run_two_chunk_flow(pace=False)
        assert transfer.paced_windows == 0

    def test_pacing_spreads_the_post_idle_burst(self):
        """With pacing the first post-idle window's sends are spaced."""
        from repro.tcpsim import FlowTrace

        for pace in (False, True):
            loop = EventLoop()
            path = NetworkPath(bandwidth=5_000_000.0, one_way_delay=0.05)
            trace = FlowTrace()
            transfer = TcpTransfer(
                loop, path, "up",
                congestion=CongestionControl(slow_start_after_idle=False),
                pace_after_idle=pace, trace=trace,
            )
            done = []

            def after_first(receipt, t=transfer, d=done):
                loop.schedule_after(
                    5.0, lambda: t.send_message(200_000, d.append)
                )

            transfer.connect(
                lambda: transfer.send_message(200_000, after_first)
            )
            loop.run()
            # Find the sends right after the 5 s idle.
            post_idle = [t for t in trace.send_times if t > 5.0]
            gaps = [b - a for a, b in zip(post_idle, post_idle[1:])][:10]
            if pace:
                paced_gaps = gaps
            else:
                burst_gaps = gaps
        assert max(paced_gaps[:5]) > max(burst_gaps[:5])

    def test_paced_flow_loses_less_on_shallow_buffer(self):
        retx = {}
        for name, options in (("paced", PACED_RESTART),):
            path = NetworkPath(
                bandwidth=2_000_000.0, one_way_delay=0.05,
                buffer_bytes=56_000.0, seed=2,
            )
            flow = simulate_flow(
                direction=Direction.STORE,
                device=ANDROID,
                file_size=8 * CHUNK_SIZE,
                path=path,
                options=options,
                seed=2,
            )
            retx[name] = flow.retransmissions
        from repro.tcpsim.mitigations import NO_SSAI

        path = NetworkPath(
            bandwidth=2_000_000.0, one_way_delay=0.05,
            buffer_bytes=56_000.0, seed=2,
        )
        burst = simulate_flow(
            direction=Direction.STORE,
            device=ANDROID,
            file_size=8 * CHUNK_SIZE,
            path=path,
            options=NO_SSAI,
            seed=2,
        )
        assert retx["paced"] <= burst.retransmissions


class TestParallel:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_parallel_upload(0, 1)
        with pytest.raises(ValueError):
            simulate_parallel_upload(1000, 0)

    def test_stripes_cover_file(self):
        result = simulate_parallel_upload(1_000_001, 4)
        assert sum(result.per_connection_bytes) == 1_000_001
        assert result.n_connections == 4

    def test_single_connection_window_limited(self):
        path = NetworkPath(bandwidth=4_000_000.0, one_way_delay=0.05)
        result = simulate_parallel_upload(2_000_000, 1, path=path)
        # ~64 KB per 100 ms RTT -> ~640 KB/s.
        assert result.aggregate_throughput == pytest.approx(
            655_360, rel=0.3
        )

    def test_two_connections_faster(self):
        sweep = connection_sweep(
            8 * CHUNK_SIZE, connection_counts=(1, 2),
            bandwidth=4_000_000.0,
        )
        assert sweep[2].speedup_over(sweep[1]) > 1.5

    def test_saturation_at_bottleneck(self):
        sweep = connection_sweep(
            8 * CHUNK_SIZE, connection_counts=(1, 16),
            bandwidth=1_000_000.0, one_way_delay=0.02,
        )
        # BDP (40 KB) < one window: parallelism cannot help much.
        assert sweep[16].speedup_over(sweep[1]) < 1.6
