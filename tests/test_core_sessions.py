"""Tests for sessionization and session classification."""

import numpy as np
import pytest

from repro.core import (
    SessionType,
    classify_sessions,
    file_operation_intervals,
    fit_interval_model,
    sessionize,
    sessionize_user,
)
from repro.logs import DeviceType, Direction, LogRecord, RequestKind


def op(ts, user=1, direction=Direction.STORE, device="d1"):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id=device,
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=direction,
    )


def chunk(ts, user=1, direction=Direction.STORE, volume=1000, proc=0.5):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d1",
        user_id=user,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
        processing_time=proc,
    )


class TestSessionizeUser:
    def test_single_session(self):
        records = [op(0.0), op(10.0), chunk(11.0)]
        sessions = list(sessionize_user(records))
        assert len(sessions) == 1
        assert sessions[0].n_ops == 2

    def test_gap_above_tau_splits(self):
        records = [op(0.0), op(4000.0)]
        sessions = list(sessionize_user(records, tau=3600.0))
        assert len(sessions) == 2

    def test_gap_below_tau_does_not_split(self):
        records = [op(0.0), op(3500.0)]
        assert len(list(sessionize_user(records, tau=3600.0))) == 1

    def test_chunks_never_split_sessions(self):
        records = [op(0.0), chunk(5000.0), op(5100.0)]
        # The op gap (5100) exceeds tau, so this splits into two sessions
        # and the chunk belongs to the first.
        sessions = list(sessionize_user(records, tau=3600.0))
        assert len(sessions) == 2
        assert len(sessions[0].chunks) == 1

    def test_chunk_only_groups_dropped(self):
        records = [chunk(0.0)]
        assert list(sessionize_user(records)) == []

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            list(sessionize_user([op(0.0)], tau=0.0))


class TestSessionProperties:
    def make_session(self):
        records = [
            op(0.0, direction=Direction.STORE),
            op(10.0, direction=Direction.STORE),
            chunk(11.0, volume=100, proc=2.0),
            chunk(20.0, volume=200, proc=5.0),
        ]
        return list(sessionize_user(records))[0]

    def test_lengths_and_volumes(self):
        session = self.make_session()
        assert session.start == 0.0
        assert session.end == 25.0  # 20.0 + 5.0 processing
        assert session.length == 25.0
        assert session.operating_time == 10.0
        assert session.store_volume == 300
        assert session.retrieve_volume == 0
        assert session.average_file_size() == 150.0

    def test_session_type_store_only(self):
        assert self.make_session().session_type is SessionType.STORE_ONLY

    def test_mixed_session(self):
        records = [
            op(0.0, direction=Direction.STORE),
            op(5.0, direction=Direction.RETRIEVE),
        ]
        session = list(sessionize_user(records))[0]
        assert session.session_type is SessionType.MIXED

    def test_average_size_requires_ops(self):
        session = self.make_session()
        object.__setattr__  # no-op, documents intent
        assert session.n_ops == 2


class TestIntervals:
    def test_intervals_per_user(self):
        records = [op(0.0, user=1), op(10.0, user=1), op(5.0, user=2),
                   op(105.0, user=2)]
        intervals = file_operation_intervals(records)
        assert sorted(intervals) == [10.0, 100.0]

    def test_chunks_ignored(self):
        records = [op(0.0), chunk(3.0), op(10.0)]
        assert list(file_operation_intervals(records)) == [10.0]

    def test_zero_gaps_clamped(self):
        records = [op(0.0), op(0.0)]
        intervals = file_operation_intervals(records)
        assert intervals[0] == pytest.approx(1e-3)


class TestIntervalModel:
    def sample(self):
        rng = np.random.default_rng(0)
        within = 10 ** rng.normal(1.0, 0.5, 5000)
        between = 10 ** rng.normal(4.9, 0.4, 2000)
        return np.concatenate([within, between])

    def test_fit_recovers_components(self):
        model = fit_interval_model(self.sample())
        assert model.within_session_mean_seconds == pytest.approx(10.0, rel=0.3)
        assert model.between_session_mean_seconds == pytest.approx(
            86_400.0, rel=0.5
        )

    def test_tau_snaps_to_hour(self):
        model = fit_interval_model(self.sample())
        assert model.tau == 3600.0

    def test_raw_valley_without_rounding(self):
        model = fit_interval_model(self.sample(), round_tau_to_hour=False)
        assert 360.0 < model.tau < 36_000.0
        assert model.tau != 3600.0

    def test_min_interval_filter(self):
        data = np.concatenate([self.sample(), np.full(50_000, 0.2)])
        model = fit_interval_model(data, min_interval=1.0)
        # The sub-second batch spike is excluded from the fit.
        assert model.within_session_mean_seconds > 3.0

    def test_too_few_intervals_rejected(self):
        with pytest.raises(ValueError):
            fit_interval_model(np.array([1.0, 2.0]))


class TestClassification:
    def test_shares(self):
        records = []
        # Three store-only users, one retrieve-only, separated in time.
        for user in (1, 2, 3):
            records.append(op(0.0, user=user, direction=Direction.STORE))
        records.append(op(0.0, user=4, direction=Direction.RETRIEVE))
        shares = classify_sessions(sessionize(records))
        assert shares.n_sessions == 4
        assert shares.store_only == pytest.approx(0.75)
        assert shares.retrieve_only == pytest.approx(0.25)
        assert shares.mixed == 0.0
        assert shares.dominant() is SessionType.STORE_ONLY

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_sessions([])
