"""Tests for the 1-D Gaussian mixture EM fitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import fit_gmm


def two_component_sample(n1=5000, n2=2000, mu1=0.0, mu2=5.0, s1=0.5, s2=0.5,
                         seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.normal(mu1, s1, n1), rng.normal(mu2, s2, n2)]
    )


class TestFit:
    def test_recovers_well_separated_components(self):
        data = two_component_sample()
        fit = fit_gmm(data, 2)
        assert fit.means[0] == pytest.approx(0.0, abs=0.05)
        assert fit.means[1] == pytest.approx(5.0, abs=0.05)
        assert fit.weights[0] == pytest.approx(5 / 7, abs=0.02)
        assert fit.stds[0] == pytest.approx(0.5, abs=0.05)

    def test_components_sorted_by_mean(self):
        data = two_component_sample(mu1=10.0, mu2=-3.0)
        fit = fit_gmm(data, 2)
        assert fit.means[0] < fit.means[1]

    def test_weights_sum_to_one(self):
        fit = fit_gmm(two_component_sample(), 3)
        assert fit.weights.sum() == pytest.approx(1.0)

    def test_converges(self):
        fit = fit_gmm(two_component_sample(), 2)
        assert fit.converged

    def test_single_component_is_sample_moments(self):
        rng = np.random.default_rng(1)
        data = rng.normal(3.0, 2.0, 10000)
        fit = fit_gmm(data, 1)
        assert fit.means[0] == pytest.approx(data.mean(), abs=1e-6)
        assert fit.stds[0] == pytest.approx(data.std(), abs=1e-4)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_gmm(np.array([1.0]), 2)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            fit_gmm(np.array([1.0, np.nan, 2.0]), 2)

    def test_deterministic_given_seed(self):
        data = two_component_sample()
        a = fit_gmm(data, 2, seed=3)
        b = fit_gmm(data, 2, seed=3)
        assert a.means.tolist() == b.means.tolist()


class TestDensity:
    def test_pdf_integrates_to_one(self):
        fit = fit_gmm(two_component_sample(), 2)
        grid = np.linspace(-5, 10, 20001)
        mass = np.trapezoid(fit.pdf(grid), grid)
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_responsibilities_rows_sum_to_one(self):
        fit = fit_gmm(two_component_sample(), 2)
        resp = fit.responsibilities(np.linspace(-2, 7, 50))
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_responsibilities_assign_extremes(self):
        fit = fit_gmm(two_component_sample(), 2)
        resp = fit.responsibilities(np.array([-1.0, 6.0]))
        assert resp[0, 0] > 0.99
        assert resp[1, 1] > 0.99


class TestValleyAndCrossover:
    def test_valley_between_means(self):
        fit = fit_gmm(two_component_sample(), 2)
        valley = fit.valley()
        assert fit.means[0] < valley < fit.means[1]

    def test_crossover_near_valley_for_symmetric_mixture(self):
        data = two_component_sample(n1=4000, n2=4000, s1=0.5, s2=0.5)
        fit = fit_gmm(data, 2)
        assert fit.crossover() == pytest.approx(fit.valley(), abs=0.15)

    def test_valley_requires_two_components(self):
        rng = np.random.default_rng(0)
        fit = fit_gmm(rng.normal(0, 1, 100), 1)
        with pytest.raises(ValueError):
            fit.valley()
        with pytest.raises(ValueError):
            fit.crossover()


class TestSampling:
    def test_sample_roundtrip(self):
        fit = fit_gmm(two_component_sample(), 2)
        rng = np.random.default_rng(0)
        draws = fit.sample(20000, rng)
        refit = fit_gmm(draws, 2)
        assert refit.means[0] == pytest.approx(fit.means[0], abs=0.1)
        assert refit.means[1] == pytest.approx(fit.means[1], abs=0.1)


@given(
    mu2=st.floats(4.0, 20.0),
    w=st.floats(0.2, 0.8),
)
@settings(max_examples=20, deadline=None)
def test_recovery_property(mu2, w):
    """EM recovers the means of well-separated planted mixtures."""
    rng = np.random.default_rng(17)
    n = 4000
    n1 = int(n * w)
    data = np.concatenate(
        [rng.normal(0.0, 0.5, n1), rng.normal(mu2, 0.5, n - n1)]
    )
    fit = fit_gmm(data, 2)
    assert fit.means[0] == pytest.approx(0.0, abs=0.25)
    assert fit.means[1] == pytest.approx(mu2, abs=0.25)
