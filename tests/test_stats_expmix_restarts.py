"""Tests for multi-restart EM initialization diversity."""

import numpy as np
import pytest

from repro.stats.expmix import (
    _best_of_restarts,
    fit_exponential_mixture,
    select_order_bic,
)


def rare_tail_sample(n=4000, seed=401):
    """A mixture whose rare tail component traps single-start EM."""
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(n, [0.91, 0.07, 0.02])
    return np.concatenate(
        [
            rng.exponential(1.5, counts[0]),
            rng.exponential(13.1, counts[1]),
            rng.exponential(77.4, counts[2]),
        ]
    )


def test_random_init_differs_from_quantile():
    data = rare_tail_sample()
    quantile = fit_exponential_mixture(data, 3, seed=5, init="quantile")
    random = fit_exponential_mixture(data, 3, seed=5, init="random")
    assert quantile.means != random.means


def test_unknown_init_rejected():
    with pytest.raises(ValueError):
        fit_exponential_mixture(rare_tail_sample(), 2, init="banana")


def test_restarts_never_worse_than_single_start():
    data = rare_tail_sample()
    single = fit_exponential_mixture(data, 3, seed=0)
    multi = _best_of_restarts(data, 3, seed=0, restarts=4)
    assert multi.log_likelihood >= single.log_likelihood


@pytest.mark.parametrize("seed", [400, 401, 402, 403, 404])
def test_order_selection_finds_three_components_across_seeds(seed):
    data = rare_tail_sample(seed=seed)
    fit = select_order_bic(data, seed=seed)
    assert fit.n_components == 3
    means = sorted(fit.means)
    assert means[0] == pytest.approx(1.5, rel=0.25)
    assert means[2] == pytest.approx(77.4, rel=0.5)
