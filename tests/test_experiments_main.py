"""Tests for the experiment battery CLI entry point."""

from repro.experiments.__main__ import main


def test_main_runs_battery_and_reports(capsys, monkeypatch):
    """The CLI entry runs every experiment and returns 0 when all pass.

    The full battery is slow, so patch ALL_EXPERIMENTS down to a cheap
    pair and one deliberate failure to exercise both exit codes.
    """
    import repro.experiments as experiments
    from repro.experiments.base import ExperimentResult

    class FakePass:
        __name__ = "fake_pass"

        @staticmethod
        def run():
            result = ExperimentResult(experiment="OK", title="fake")
            result.add_check("x", 1.0, 1.0, tolerance=0.1)
            return result

    class FakeFail:
        __name__ = "fake_fail"

        @staticmethod
        def run():
            result = ExperimentResult(experiment="BAD", title="fake")
            result.add_check("x", 1.0, 99.0, tolerance=0.1)
            return result

    monkeypatch.setattr(experiments, "run_all", lambda verbose=True: [
        FakePass.run(), FakePass.run()
    ])
    import repro.experiments.__main__ as main_module

    monkeypatch.setattr(main_module, "run_all", lambda verbose=True: [
        FakePass.run(), FakePass.run()
    ])
    assert main() == 0
    out = capsys.readouterr().out
    assert "2/2 experiments" in out

    monkeypatch.setattr(main_module, "run_all", lambda verbose=True: [
        FakePass.run(), FakeFail.run()
    ])
    assert main() == 1
    out = capsys.readouterr().out
    assert "failing: BAD" in out
