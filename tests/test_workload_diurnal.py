"""Tests for diurnal time-of-day sampling."""

import numpy as np
import pytest

from repro.workload import (
    SECONDS_PER_DAY,
    DiurnalModel,
    DiurnalSampler,
)


@pytest.fixture()
def sampler():
    return DiurnalSampler(DiurnalModel())


def test_model_validation():
    with pytest.raises(ValueError):
        DiurnalModel(hourly_weights=(1.0,) * 23)
    with pytest.raises(ValueError):
        DiurnalModel(hourly_weights=(0.0,) + (1.0,) * 23)


def test_sample_within_day(sampler):
    rng = np.random.default_rng(0)
    samples = [sampler.sample_time_of_day(rng) for _ in range(1000)]
    assert all(0 <= s < SECONDS_PER_DAY for s in samples)


def test_timestamp_lands_in_requested_day(sampler):
    rng = np.random.default_rng(0)
    for day in (0, 3, 6):
        ts = sampler.sample_timestamp(day, rng)
        assert day * SECONDS_PER_DAY <= ts < (day + 1) * SECONDS_PER_DAY


def test_negative_day_rejected(sampler):
    with pytest.raises(ValueError):
        sampler.sample_timestamp(-1, np.random.default_rng(0))


def test_distribution_matches_weights(sampler):
    rng = np.random.default_rng(1)
    counts = np.zeros(24)
    for _ in range(50_000):
        hour = int(sampler.sample_time_of_day(rng) // 3600)
        counts[hour] += 1
    empirical = counts / counts.sum()
    expected = sampler.hourly_probabilities()
    assert np.max(np.abs(empirical - expected)) < 0.01


def test_peak_hours_reflect_surge(sampler):
    # The paper's surge: the busiest hours are in the late evening.
    assert set(sampler.peak_hours(2)) <= {21, 22, 23}


def test_trough_hours_early_morning(sampler):
    assert set(sampler.trough_hours(2)) <= {2, 3, 4, 5}


def test_peak_hours_validation(sampler):
    with pytest.raises(ValueError):
        sampler.peak_hours(0)
    with pytest.raises(ValueError):
        sampler.trough_hours(25)


def test_probabilities_sum_to_one(sampler):
    assert sampler.hourly_probabilities().sum() == pytest.approx(1.0)
