"""Golden replay fixture: a pinned end-to-end service-path snapshot.

``tests/data/golden_replay.json`` freezes the byte-level fingerprint
(canonical access-log MD5 + telemetry-JSON MD5) and the headline counts
of one small open-loop replay with the R4 correlated fault plan armed.
Any service-path refactor that changes what requests hit the cluster, in
what order, or what the telemetry reports will trip this test — which is
the point: if the change is intentional, regenerate the fixture and let
the diff document the behaviour change:

    PYTHONPATH=src:. python tests/test_golden_replay.py --regenerate
"""

import json
import pathlib
import sys

from repro.logs.schema import ResultCode
from repro.service.replay import replay_trace, synthetic_replay_trace
from tests.helpers import replay_fingerprint
from tests.test_replay import faulted_cluster, r4_config

FIXTURE = pathlib.Path(__file__).parent / "data" / "golden_replay.json"


def run_golden_replay(fixture: dict):
    trace = synthetic_replay_trace(
        fixture["trace"]["n_users"], fixture["trace"]["seed"]
    )
    cluster = faulted_cluster(r4_config())
    result = replay_trace(
        trace,
        cluster,
        rate=fixture["replay"]["rate"],
        seed=fixture["replay"]["seed"],
    )
    return result


def measured_state(result) -> dict:
    return {
        "fingerprint": replay_fingerprint(result),
        "counts": {
            "ops_total": result.ops_total,
            "ops_completed": result.ops_completed,
            "ops_skipped": result.ops_skipped,
            "records": len(result.records),
            "requests_total": result.telemetry.total_requests,
            "shed": result.telemetry.result_count(ResultCode.SHED),
            "unavailable": result.telemetry.result_count(
                ResultCode.UNAVAILABLE
            ),
            "server_error": result.telemetry.result_count(
                ResultCode.SERVER_ERROR
            ),
        },
    }


def test_replay_matches_golden_fixture():
    fixture = json.loads(FIXTURE.read_text())
    state = measured_state(run_golden_replay(fixture))
    assert state["counts"] == fixture["counts"]
    assert state["fingerprint"] == fixture["fingerprint"], (
        "service-path behaviour changed; if intentional, regenerate via "
        "PYTHONPATH=src:. python tests/test_golden_replay.py --regenerate"
    )


def test_fixture_exercises_the_shed_path():
    """The fixture must stay adversarial: a config that never sheds
    would silently stop covering the admission-control path."""
    fixture = json.loads(FIXTURE.read_text())
    assert fixture["counts"]["shed"] > 0


def _regenerate() -> None:
    fixture = json.loads(FIXTURE.read_text())
    fixture.update(measured_state(run_golden_replay(fixture)))
    FIXTURE.write_text(
        json.dumps(fixture, indent=2, sort_keys=True) + "\n"
    )
    print(f"rewrote {FIXTURE}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
