"""Tests for chunked storage/retrieval flows."""

import numpy as np
import pytest

from repro.logs import CHUNK_SIZE, DeviceType, Direction
from repro.tcpsim import (
    ANDROID,
    IOS,
    NetworkPath,
    TransferOptions,
    sample_flow_population,
    simulate_flow,
)


def store_flow(file_size=4 * CHUNK_SIZE, device=IOS, **kwargs):
    return simulate_flow(
        direction=Direction.STORE,
        device=device,
        file_size=file_size,
        path=NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05),
        **kwargs,
    )


class TestOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferOptions(chunk_size=0)
        with pytest.raises(ValueError):
            TransferOptions(batch_size=0)
        with pytest.raises(ValueError):
            TransferOptions(server_rwnd=1_000_000)  # needs scaling

    def test_scaled_server_rwnd_allowed(self):
        options = TransferOptions(
            server_window_scaling=True, server_rwnd=1_000_000
        )
        assert options.server_rwnd == 1_000_000


class TestStoreFlow:
    def test_chunk_count(self):
        flow = store_flow(file_size=4 * CHUNK_SIZE)
        assert len(flow.chunk_results) == 4
        assert flow.total_bytes == 4 * CHUNK_SIZE

    def test_last_chunk_may_be_short(self):
        flow = store_flow(file_size=CHUNK_SIZE + 1000)
        sizes = [c.size for c in flow.chunk_results]
        assert sizes == [CHUNK_SIZE, 1000]

    def test_ttran_positive_and_decomposed(self):
        flow = store_flow()
        for chunk in flow.chunk_results:
            assert chunk.ttran > 0
            assert chunk.tchunk == pytest.approx(chunk.ttran + chunk.tsrv)

    def test_throughput_positive(self):
        flow = store_flow()
        assert flow.throughput > 0
        assert flow.duration > 0

    def test_idle_ratio_series_lengths(self):
        flow = store_flow(file_size=5 * CHUNK_SIZE)
        assert len(flow.idle_rto_ratios) == 4
        assert len(flow.processing_idle_ratios) == 4

    def test_first_chunk_has_no_idle(self):
        flow = store_flow()
        assert flow.chunk_results[0].idle_before == 0.0
        assert flow.chunk_results[0].idle_rto_ratio == 0.0

    def test_invalid_file_size_rejected(self):
        with pytest.raises(ValueError):
            store_flow(file_size=0)

    def test_device_type_accepted_as_enum(self):
        flow = simulate_flow(
            direction=Direction.STORE,
            device=DeviceType.IOS,
            file_size=CHUNK_SIZE,
        )
        assert flow.device_type is DeviceType.IOS


class TestRetrieveFlow:
    def test_completes_with_client_window(self):
        flow = simulate_flow(
            direction=Direction.RETRIEVE,
            device=IOS,
            file_size=3 * CHUNK_SIZE,
            seed=2,
        )
        assert len(flow.chunk_results) == 3
        # Downloads are not bound by the 64 KB server window.
        assert flow.trace.max_inflight() > 65_535


class TestDeviceEffect:
    def test_android_restarts_more_than_ios(self):
        android = sum(
            store_flow(file_size=8 * CHUNK_SIZE, device=ANDROID,
                       seed=s).slow_start_restarts
            for s in range(3)
        )
        ios = sum(
            store_flow(file_size=8 * CHUNK_SIZE, device=IOS,
                       seed=s).slow_start_restarts
            for s in range(3)
        )
        assert android > ios


class TestMitigationMechanics:
    def test_batching_reduces_request_count(self):
        baseline = store_flow(
            file_size=8 * CHUNK_SIZE, options=TransferOptions(batch_size=1)
        )
        batched = store_flow(
            file_size=8 * CHUNK_SIZE, options=TransferOptions(batch_size=4)
        )
        assert len(batched.chunk_results) == 2
        assert len(baseline.chunk_results) == 8

    def test_larger_chunks_reduce_gaps(self):
        big = store_flow(
            file_size=8 * CHUNK_SIZE,
            options=TransferOptions(chunk_size=2 * 1024 * 1024),
        )
        assert len(big.chunk_results) == 2

    def test_no_ssai_eliminates_restarts(self):
        flow = store_flow(
            file_size=8 * CHUNK_SIZE,
            device=ANDROID,
            options=TransferOptions(slow_start_after_idle=False),
            seed=5,
        )
        assert flow.slow_start_restarts == 0

    def test_scaled_server_window_raises_inflight(self):
        flow = store_flow(
            file_size=8 * CHUNK_SIZE,
            options=TransferOptions(
                server_window_scaling=True, server_rwnd=512 * 1024
            ),
            seed=1,
        )
        assert flow.trace.max_inflight() > 65_535


class TestPopulation:
    def test_population_size_and_determinism(self):
        flows_a = sample_flow_population(
            direction=Direction.STORE, device=IOS, n_flows=5, seed=4
        )
        flows_b = sample_flow_population(
            direction=Direction.STORE, device=IOS, n_flows=5, seed=4
        )
        assert len(flows_a) == 5
        assert [f.duration for f in flows_a] == [f.duration for f in flows_b]

    def test_population_heterogeneous_rtts(self):
        flows = sample_flow_population(
            direction=Direction.STORE, device=IOS, n_flows=10, seed=1
        )
        rtts = [f.average_rtt() for f in flows]
        assert np.std(rtts) > 0.01

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_flow_population(
                direction=Direction.STORE, device=IOS, n_flows=0
            )
        with pytest.raises(ValueError):
            sample_flow_population(
                direction=Direction.STORE, device=IOS, n_flows=1,
                downlink_factor=0.0,
            )
