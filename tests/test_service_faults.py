"""Tests for fault injection, recovery and determinism in the service layer.

Covers the three contracts of the fault subsystem:

* injected faults surface as typed failure records in the Table 1 log and
  the retry policy recovers from them;
* the whole faulty simulation is deterministic — same seed and plan,
  byte-identical logs;
* zero overhead when off — a cluster with no fault plan and one with a
  disabled plan produce record-identical logs.
"""

import pytest

from repro.faults import FaultConfig, RetryPolicy
from repro.logs import DeviceType, RequestKind, ResultCode
from repro.logs.io import record_to_tsv
from repro.service import ClientNetwork, MetadataUnavailableError, ServiceCluster


def drive_workload(cluster, n_users=6, files_per_user=4, seed=11):
    """A small deterministic store workload; returns transfer reports."""
    reports = []
    for user in range(1, n_users + 1):
        client = cluster.new_client(
            user, f"dev{user}", DeviceType.ANDROID,
            network=ClientNetwork(rtt=0.1, bandwidth=2_000_000.0),
            seed=seed,
        )
        client.clock = 100.0 * user
        for f in range(files_per_user):
            reports.append(
                client.store_file(
                    f"u{user}f{f}.jpg", f"u{user}/f{f}".encode(),
                    700_000 + 10_000 * f,
                )
            )
    return reports


def log_bytes(cluster):
    return "\n".join(record_to_tsv(r) for r in cluster.access_log())


class TestFaultInjection:
    def test_transient_errors_logged_and_recovered(self):
        cluster = ServiceCluster(
            n_frontends=2,
            faults=FaultConfig(error_rate=0.2),
            fault_seed=5,
        )
        reports = drive_workload(cluster)
        assert all(r.completed for r in reports)
        failures = [r for r in cluster.access_log() if not r.is_ok]
        assert failures, "expected injected transient errors at rate 0.2"
        assert all(f.result is ResultCode.SERVER_ERROR for f in failures)
        assert all(f.volume == 0 for f in failures)
        assert cluster.fault_stats.injected_errors == len(failures)
        assert cluster.fault_stats.retries >= len(failures)
        assert cluster.failure_rate > 0

    def test_crash_window_rejections_fail_over(self):
        config = FaultConfig(crash_rate=3.0, crash_mean_downtime=300.0)
        cluster = ServiceCluster(
            n_frontends=3, faults=config, fault_seed=1,
        )
        # Find a crash window and aim a client straight into it.
        plan = cluster.fault_plan
        windows = next(
            (f, plan.crash_windows(f)[0])
            for f in range(3)
            if plan.crash_windows(f)
        )
        fid, window = windows
        client = cluster.new_client(
            1, "d1", DeviceType.IOS,
            network=ClientNetwork(rtt=0.05, bandwidth=2_000_000.0),
        )
        client.clock = window.start + 1.0
        report = client.store_file("a.jpg", b"a", 400_000)
        assert report.completed
        unavailable = [
            r for r in cluster.access_log()
            if r.result is ResultCode.UNAVAILABLE
        ]
        if unavailable:
            assert cluster.fault_stats.crash_rejections == len(unavailable)
            assert cluster.fault_stats.failovers >= 0

    def test_load_shedding_at_capacity(self):
        cluster = ServiceCluster(
            n_frontends=1,
            faults=FaultConfig(error_rate=1e-9),  # arm the plan, stay quiet
            frontend_capacity=0,  # every data request sheds
            retry_policy=RetryPolicy(max_attempts=2, failover=False),
        )
        client = cluster.new_client(
            1, "d1", DeviceType.ANDROID,
            network=ClientNetwork(rtt=0.1, bandwidth=2_000_000.0),
        )
        report = client.store_file("a.jpg", b"a", 400_000)
        assert not report.completed
        shed = [
            r for r in cluster.access_log() if r.result is ResultCode.SHED
        ]
        assert shed
        assert cluster.fault_stats.shed_requests == len(shed)
        assert cluster.fault_stats.aborted_transfers == 1

    def test_metadata_outage_raises_then_client_retries(self):
        config = FaultConfig(
            metadata_outage_rate=2.0, metadata_mean_downtime=10.0
        )
        cluster = ServiceCluster(n_frontends=2, faults=config, fault_seed=3)
        plan = cluster.fault_plan
        assert plan.metadata_windows
        window = plan.metadata_windows[0]
        inside = (window.start + window.end) / 2.0
        with pytest.raises(MetadataUnavailableError):
            cluster.metadata.resolve_url("no-such-url", now=inside)
        client = cluster.new_client(
            1, "d1", DeviceType.ANDROID,
            network=ClientNetwork(rtt=0.05, bandwidth=2_000_000.0),
        )
        # Start just before the outage lifts so the retry budget spans it.
        client.clock = max(window.start, window.end - 0.3)
        started = client.clock
        report = client.store_file("a.jpg", b"a", 200_000)
        assert report.completed
        assert cluster.metadata.rejected_requests >= 1
        assert cluster.fault_stats.metadata_rejections >= 1
        assert client.clock > started

    def test_timeout_result_on_extreme_slow_episode(self):
        config = FaultConfig(
            slow_rate=50.0, slow_mean_duration=3600.0, slow_multiplier=1000.0
        )
        cluster = ServiceCluster(
            n_frontends=1,
            faults=config,
            fault_seed=2,
            retry_policy=RetryPolicy(max_attempts=2, request_timeout=5.0),
        )
        plan = cluster.fault_plan
        assert plan.slow_windows(0)
        window = plan.slow_windows(0)[0]
        client = cluster.new_client(
            1, "d1", DeviceType.ANDROID,
            network=ClientNetwork(rtt=0.1, bandwidth=2_000_000.0),
        )
        client.clock = window.start + 0.5
        client.store_file("a.jpg", b"a", 512 * 1024)
        timeouts = [
            r for r in cluster.access_log()
            if r.result is ResultCode.TIMEOUT
        ]
        assert timeouts
        assert cluster.fault_stats.timeouts == len(timeouts)


class TestDeterminism:
    def faulty_cluster(self):
        return ServiceCluster(
            n_frontends=3,
            faults=FaultConfig.at_rate(0.08),
            fault_seed=17,
            frontend_capacity=32,
        )

    def test_same_seed_same_plan_byte_identical_logs(self):
        a, b = self.faulty_cluster(), self.faulty_cluster()
        drive_workload(a)
        drive_workload(b)
        assert log_bytes(a) == log_bytes(b)
        assert a.fault_stats.as_dict() == b.fault_stats.as_dict()

    def test_byte_identical_across_processes(self):
        """Same seed + same plan in a fresh interpreter with a different
        hash salt: byte-identical logs (client seeding must not depend on
        Python's per-process string hashing)."""
        import hashlib
        import os
        import subprocess
        import sys

        snippet = (
            "from tests.test_service_faults import "
            "TestDeterminism, drive_workload, log_bytes\n"
            "import hashlib\n"
            "cluster = TestDeterminism().faulty_cluster()\n"
            "drive_workload(cluster)\n"
            "print(hashlib.md5(log_bytes(cluster).encode()).hexdigest())\n"
        )
        cluster = self.faulty_cluster()
        drive_workload(cluster)
        local = hashlib.md5(log_bytes(cluster).encode()).hexdigest()
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            (os.path.join(repo, "src"), repo)
        )
        env["PYTHONHASHSEED"] = "12345"  # force a different string salt
        remote = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, cwd=repo, check=True,
        ).stdout.strip()
        assert remote == local

    def test_zero_overhead_when_off(self):
        """No plan at all vs a disabled plan: record-identical logs."""
        plain = ServiceCluster(n_frontends=2)
        disabled = ServiceCluster(
            n_frontends=2, faults=FaultConfig.at_rate(0.0)
        )
        assert disabled.fault_plan is not None
        assert not disabled.fault_plan.enabled
        drive_workload(plain)
        drive_workload(disabled)
        assert log_bytes(plain) == log_bytes(disabled)
        assert disabled.fault_stats.total_faults == 0

    def test_fault_free_logs_all_ok(self):
        cluster = ServiceCluster(n_frontends=2)
        reports = drive_workload(cluster)
        assert all(r.completed and r.retries == 0 for r in reports)
        assert all(r.is_ok for r in cluster.access_log())
        assert cluster.requests_failed == 0
        assert cluster.failure_rate == 0.0


class TestProfileIsolation:
    def test_each_cluster_owns_its_server_profile(self):
        """Regression: deployments must not share one mutable profile."""
        a = ServiceCluster(n_frontends=2)
        b = ServiceCluster(n_frontends=2)
        assert a.server_profile is not b.server_profile
        for frontend in a.frontends:
            assert frontend.profile is a.server_profile
        from repro.service import FrontendServer

        f1, f2 = FrontendServer(server_id=0), FrontendServer(server_id=1)
        assert f1.profile is not f2.profile


class TestZeroByteTransfers:
    def test_store_zero_byte_file_is_metadata_only(self):
        cluster = ServiceCluster(n_frontends=1)
        client = cluster.new_client(
            1, "d1", DeviceType.IOS,
            network=ClientNetwork(rtt=0.1, bandwidth=1_000_000.0),
        )
        report = client.store_file("empty.txt", b"empty", 0)
        assert report.completed
        assert report.n_chunks == 0
        kinds = [r.kind for r in cluster.access_log()]
        assert RequestKind.CHUNK not in kinds
        assert kinds.count(RequestKind.FILE_OP) == 1

    def test_retrieve_zero_byte_file(self):
        cluster = ServiceCluster(n_frontends=1)
        client = cluster.new_client(
            1, "d1", DeviceType.IOS,
            network=ClientNetwork(rtt=0.1, bandwidth=1_000_000.0),
        )
        stored = client.store_file("empty.txt", b"empty", 0)
        fetched = client.retrieve_url(stored.url)
        assert fetched.completed
        assert fetched.size == 0
        chunk_records = [
            r for r in cluster.access_log()
            if r.kind is RequestKind.CHUNK
        ]
        assert chunk_records == []
