"""Tests for activity modeling (Fig 10) and workload series (Fig 1)."""

import numpy as np
import pytest

from repro.core import (
    files_per_user,
    fit_activity_model,
    workload_series,
)
from repro.logs import DeviceType, Direction, LogRecord, RequestKind

HOUR = 3600.0


def op(user, direction=Direction.STORE, ts=0.0):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=direction,
    )


def chunk(ts, direction=Direction.STORE, volume=100):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
    )


class TestFilesPerUser:
    def test_counts_ops_by_direction(self):
        records = [op(1), op(1), op(2), op(1, Direction.RETRIEVE)]
        counts = files_per_user(records, Direction.STORE)
        assert sorted(counts, reverse=True) == [2, 1]
        assert list(files_per_user(records, Direction.RETRIEVE)) == [1]

    def test_chunks_not_counted(self):
        records = [op(1), chunk(1.0)]
        assert list(files_per_user(records, Direction.STORE)) == [1]


class TestActivityFit:
    def test_fit_on_se_population(self):
        n = 3000
        ranks = np.arange(1, n + 1)
        b = 0.448 * np.log(n) + 1.0
        counts = np.clip(b - 0.448 * np.log(ranks), 1e-9, None) ** 5.0
        counts = np.maximum(1, np.round(counts)).astype(int)
        records = []
        for user, count in enumerate(counts):
            records.extend(op(user) for _ in range(int(count)))
        fit = fit_activity_model(records, Direction.STORE)
        assert fit.fit.c == pytest.approx(0.2, abs=0.05)
        assert fit.fit.r_squared > 0.98
        assert fit.se_beats_power_law

    def test_rank_curve_decreasing(self):
        records = [op(u) for u in range(20) for _ in range(u + 1)]
        fit = fit_activity_model(records, Direction.STORE)
        ranks, values = fit.rank_curve(n_points=5)
        assert np.all(np.diff(values) <= 0)

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            fit_activity_model([op(1)], Direction.STORE)


class TestWorkloadSeries:
    def records(self):
        return [
            chunk(0.5 * HOUR, Direction.STORE, volume=100),
            chunk(0.6 * HOUR, Direction.RETRIEVE, volume=300),
            chunk(2.5 * HOUR, Direction.STORE, volume=50),
            op(1, Direction.STORE, ts=0.1 * HOUR),
            op(1, Direction.STORE, ts=0.2 * HOUR),
            op(1, Direction.RETRIEVE, ts=2.9 * HOUR),
        ]

    def test_hourly_binning(self):
        series = workload_series(self.records())
        assert series.n_hours == 3
        assert series.store_volume[0] == 100
        assert series.retrieve_volume[0] == 300
        assert series.store_volume[2] == 50
        assert series.store_files[0] == 2
        assert series.retrieve_files[2] == 1

    def test_ratios(self):
        series = workload_series(self.records())
        assert series.retrieve_to_store_volume_ratio == pytest.approx(2.0)
        assert series.store_to_retrieve_file_ratio == pytest.approx(2.0)

    def test_peak_detection(self):
        series = workload_series(self.records())
        assert series.peak_hour == 0  # 400 bytes in hour 0
        assert series.peak_to_mean > 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            workload_series([])

    def test_hour_of_day_profile_folds(self):
        records = [
            chunk(5 * HOUR, volume=10),
            chunk(24 * HOUR + 5 * HOUR, volume=20),
        ]
        series = workload_series(records)
        profile = series.hour_of_day_profile()
        assert profile[5] == 30
