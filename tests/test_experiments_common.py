"""Tests for the shared experiment preparation layer."""

import pytest

from repro.experiments.common import PreparedTrace, prepared_trace


@pytest.fixture(scope="module")
def small_trace():
    return prepared_trace(n_users=200, n_pc_users=30, seed=5)


def test_prepared_trace_structure(small_trace):
    assert isinstance(small_trace, PreparedTrace)
    assert len(small_trace.records) > 0
    assert len(small_trace.sessions) > 0
    assert len(small_trace.profiles) > 0


def test_mobile_records_filtered(small_trace):
    assert all(r.is_mobile for r in small_trace.mobile_records)
    assert len(small_trace.mobile_records) < len(small_trace.records)


def test_mobile_sessions_subset_of_all(small_trace):
    # PC sessions exist only in the all-platform view.
    assert len(small_trace.all_sessions) > len(small_trace.sessions)


def test_sessions_cover_only_mobile_users(small_trace):
    mobile_users = {r.user_id for r in small_trace.mobile_records}
    assert {s.user_id for s in small_trace.sessions} <= mobile_users


def test_memoization_returns_same_object(small_trace):
    again = prepared_trace(n_users=200, n_pc_users=30, seed=5)
    assert again is small_trace


def test_different_arguments_differ():
    a = prepared_trace(n_users=200, n_pc_users=30, seed=5)
    b = prepared_trace(n_users=200, n_pc_users=30, seed=6)
    assert a is not b
    assert a.records != b.records
