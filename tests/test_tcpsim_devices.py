"""Tests for device/server profiles and the lognormal helper."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.logs import DeviceType
from repro.tcpsim import ANDROID, DEFAULT_SERVER, IOS, PC, Lognormal, profile_for


class TestLognormal:
    def test_validation(self):
        with pytest.raises(ValueError):
            Lognormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            Lognormal(median=1.0, sigma=-1.0)

    def test_sample_median(self):
        dist = Lognormal(median=0.2, sigma=0.8)
        rng = np.random.default_rng(0)
        draws = dist.sample(rng, 50_000)
        assert float(np.median(draws)) == pytest.approx(0.2, rel=0.05)

    def test_mean_formula(self):
        dist = Lognormal(median=1.0, sigma=0.5)
        assert dist.mean == pytest.approx(np.exp(0.125))

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    def test_quantile_matches_scipy(self, q):
        dist = Lognormal(median=0.3, sigma=1.2)
        reference = float(
            scipy_stats.lognorm.ppf(q, s=1.2, scale=0.3)
        )
        assert dist.quantile(q) == pytest.approx(reference, rel=1e-6)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Lognormal(median=1.0, sigma=1.0).quantile(0.0)


class TestProfiles:
    def test_profile_lookup(self):
        assert profile_for(DeviceType.ANDROID) is ANDROID
        assert profile_for(DeviceType.IOS) is IOS
        assert profile_for(DeviceType.PC) is PC

    def test_android_slower_client_processing(self):
        assert ANDROID.upload_tclt.median > IOS.upload_tclt.median

    def test_android_heavier_download_tail(self):
        assert ANDROID.download_tclt.quantile(0.9) > IOS.download_tclt.quantile(0.9)
        # Paper: Android retrieval Tclt p90 ~1 s, iOS ~0.1 s.
        assert ANDROID.download_tclt.quantile(0.9) > 0.5
        assert IOS.download_tclt.quantile(0.9) < 0.25

    def test_clients_enable_window_scaling(self):
        assert ANDROID.window_scaling
        assert IOS.window_scaling
        assert ANDROID.advertised_rwnd == 4 * 1024 * 1024
        assert IOS.advertised_rwnd == 2 * 1024 * 1024

    def test_server_window_unscaled(self):
        assert not DEFAULT_SERVER.window_scaling
        assert DEFAULT_SERVER.advertised_rwnd == 65_535

    def test_server_tsrv_near_100ms(self):
        assert DEFAULT_SERVER.tsrv.median == pytest.approx(0.1, abs=0.05)

    def test_tclt_selector(self):
        assert ANDROID.tclt(True) is ANDROID.upload_tclt
        assert ANDROID.tclt(False) is ANDROID.download_tclt
