"""Tests for stretched-exponential rank models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    StretchedExponentialFit,
    fit_stretched_exponential,
    fit_weibull_mle,
    power_law_r_squared,
)


def se_sample(c=0.2, x0=5.0, n=20000, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.uniform(1e-12, 1.0, n)
    return x0 * (-np.log(u)) ** (1.0 / c)


class TestFit:
    def test_recovers_planted_c(self):
        fit = fit_stretched_exponential(se_sample(c=0.2))
        assert fit.c == pytest.approx(0.2, abs=0.02)

    def test_high_r_squared_on_true_model(self):
        fit = fit_stretched_exponential(se_sample())
        assert fit.r_squared > 0.995

    def test_zeros_dropped(self):
        data = np.concatenate([se_sample(n=500), np.zeros(100)])
        fit = fit_stretched_exponential(data)
        assert fit.n == 500

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            fit_stretched_exponential(np.array([1.0, 2.0]))

    def test_paper_parameters_recovered(self):
        """The paper's storage fit: c=0.2, a=0.448, b=7.239."""
        n = 50000
        ranks = np.arange(1, n + 1)
        b = 0.448 * np.log(n) + 1.0
        values = np.clip(b - 0.448 * np.log(ranks), 1e-9, None) ** 5.0
        fit = fit_stretched_exponential(values)
        assert fit.c == pytest.approx(0.2, abs=0.01)
        assert fit.a == pytest.approx(0.448, rel=0.05)


class TestModelFunctions:
    def fit(self):
        return fit_stretched_exponential(se_sample())

    def test_ccdf_monotone(self):
        fit = self.fit()
        grid = np.linspace(0, 100, 500)
        ccdf = fit.ccdf(grid)
        assert np.all(np.diff(ccdf) <= 1e-12)
        assert ccdf[0] == pytest.approx(1.0)

    def test_value_at_rank_decreasing(self):
        fit = self.fit()
        values = fit.value_at_rank(np.array([1.0, 10.0, 100.0]))
        assert values[0] > values[1] > values[2]

    def test_value_at_rank_rejects_below_one(self):
        with pytest.raises(ValueError):
            self.fit().value_at_rank(0.5)

    def test_sample_statistics(self):
        model = StretchedExponentialFit(
            c=0.5, a=1.0, b=1.0, x0=2.0, r_squared=1.0, n=0
        )
        draws = model.sample(50000, np.random.default_rng(0))
        # Weibull(shape c, scale x0) mean = x0 * Gamma(1 + 1/c) = 2 * 2! = 4.
        assert draws.mean() == pytest.approx(4.0, rel=0.05)


class TestWeibullMle:
    def test_agrees_with_rank_fit(self):
        data = se_sample(c=0.3, x0=3.0)
        c, x0 = fit_weibull_mle(data)
        assert c == pytest.approx(0.3, abs=0.02)
        assert x0 == pytest.approx(3.0, rel=0.1)

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            fit_weibull_mle(np.array([1.0]))

    @given(c=st.floats(0.2, 2.0), x0=st.floats(0.5, 20.0))
    @settings(max_examples=20, deadline=None)
    def test_recovery_property(self, c, x0):
        rng = np.random.default_rng(23)
        data = x0 * rng.weibull(c, 5000)
        c_hat, x0_hat = fit_weibull_mle(data)
        assert c_hat == pytest.approx(c, rel=0.1)
        assert x0_hat == pytest.approx(x0, rel=0.15)


class TestPowerLawComparison:
    def test_se_data_prefers_se(self):
        data = se_sample(c=0.15)
        se_fit = fit_stretched_exponential(data)
        assert se_fit.r_squared > power_law_r_squared(data)

    def test_power_law_data_fits_power_law_well(self):
        rng = np.random.default_rng(3)
        data = (1.0 - rng.uniform(0, 1, 20000)) ** (-1.0 / 1.5)
        assert power_law_r_squared(data) > 0.98

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            power_law_r_squared(np.array([1.0]))
