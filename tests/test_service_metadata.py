"""Tests for the metadata server (namespaces + dedup)."""

import dataclasses

import pytest

from repro.faults import FaultConfig, FaultPlan, MetadataUnavailableError
from repro.logs import CHUNK_SIZE
from repro.service import MetadataServer, build_manifest, frontend_for


def manifest(seed=b"content", size=CHUNK_SIZE, name="f.jpg"):
    return build_manifest(name, seed, size)


class TestStorePath:
    def test_first_upload_is_not_duplicate(self):
        server = MetadataServer()
        decision = server.request_store(1, manifest())
        assert not decision.duplicate
        assert decision.frontend_id is not None

    def test_second_upload_of_same_content_deduplicated(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        server.commit_store(1, m, decision.frontend_id)
        dup = server.request_store(2, m)
        assert dup.duplicate
        assert dup.frontend_id is None
        assert dup.url  # registered directly in user 2's space

    def test_dedup_ratio(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        server.commit_store(1, m, decision.frontend_id)
        server.request_store(2, m)
        server.request_store(3, m)
        assert server.dedup_ratio == pytest.approx(2 / 3)
        assert server.unique_contents == 1

    def test_commit_registers_user_file(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        files = server.user_files(1)
        assert len(files) == 1
        assert files[0].url == url
        assert files[0].size == m.size

    def test_commit_to_unknown_frontend_rejected(self):
        server = MetadataServer(n_frontends=2)
        with pytest.raises(ValueError):
            server.commit_store(1, manifest(), 5)

    def test_frontend_assignment_stable(self):
        server = MetadataServer(n_frontends=4)
        d1 = server.request_store(6, manifest(b"a"))
        d2 = server.request_store(6, manifest(b"b"))
        assert d1.frontend_id == d2.frontend_id

    def test_reregistering_same_file_keeps_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url1 = server.commit_store(1, m, decision.frontend_id)
        url2 = server.commit_store(1, m, decision.frontend_id)
        assert url1 == url2
        assert len(server.user_files(1)) == 1


class TestRetrievalPath:
    def test_resolve_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        record, frontend = server.resolve_url(url)
        assert record.file_md5 == m.file_md5
        assert frontend == decision.frontend_id

    def test_any_user_can_resolve_shared_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        record, _ = server.resolve_url(url)  # user 2 fetches user 1's link
        assert record.owner == 1

    def test_unknown_url_raises(self):
        with pytest.raises(KeyError):
            MetadataServer().resolve_url("https://nope")


def test_needs_at_least_one_frontend():
    with pytest.raises(ValueError):
        MetadataServer(n_frontends=0)


def test_dedup_decision_is_frozen():
    server = MetadataServer()
    decision = server.request_store(1, manifest())
    with pytest.raises(dataclasses.FrozenInstanceError):
        decision.duplicate = True


def test_frontend_assignment_uses_stable_placement():
    server = MetadataServer(n_frontends=4)
    decision = server.request_store(123, manifest())
    assert decision.frontend_id == frontend_for(123, 4)


class TestOutageWindowReads:
    """resolve_url and user_files must reject during an outage window,
    counting exactly one rejection per call on both ledgers."""

    def _server_inside_outage(self):
        config = FaultConfig(
            metadata_outage_rate=3.0, metadata_mean_downtime=120.0
        )
        plan = FaultPlan(config, n_frontends=2, seed=5)
        assert plan.metadata_windows, "seed must schedule an outage"
        window = plan.metadata_windows[0]
        inside = (window.start + window.end) / 2.0
        server = MetadataServer(n_frontends=2, fault_plan=plan)
        assert window.start > 0.0  # t=0 is safely outside
        return server, plan, inside

    def test_resolve_url_rejects_and_counts_exactly_once(self):
        server, plan, inside = self._server_inside_outage()
        m = manifest()
        decision = server.request_store(1, m, now=0.0)
        url = server.commit_store(1, m, decision.frontend_id, now=0.0)
        with pytest.raises(MetadataUnavailableError):
            server.resolve_url(url, now=inside)
        assert server.rejected_requests == 1
        assert plan.stats.metadata_rejections == 1
        with pytest.raises(MetadataUnavailableError):
            server.resolve_url(url, now=inside)
        assert server.rejected_requests == 2
        assert plan.stats.metadata_rejections == 2
        # Outside the window the same URL resolves fine, no new tallies.
        record, _ = server.resolve_url(url, now=0.0)
        assert record.file_md5 == m.file_md5
        assert server.rejected_requests == 2
        assert plan.stats.metadata_rejections == 2

    def test_user_files_rejects_and_counts_exactly_once(self):
        server, plan, inside = self._server_inside_outage()
        m = manifest()
        decision = server.request_store(1, m, now=0.0)
        server.commit_store(1, m, decision.frontend_id, now=0.0)
        with pytest.raises(MetadataUnavailableError):
            server.user_files(1, now=inside)
        assert server.rejected_requests == 1
        assert plan.stats.metadata_rejections == 1
        with pytest.raises(MetadataUnavailableError):
            server.user_files(1, now=inside)
        assert server.rejected_requests == 2
        assert plan.stats.metadata_rejections == 2
        assert len(server.user_files(1, now=0.0)) == 1
        assert server.rejected_requests == 2
