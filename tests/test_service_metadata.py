"""Tests for the metadata server (namespaces + dedup)."""

import pytest

from repro.logs import CHUNK_SIZE
from repro.service import MetadataServer, build_manifest


def manifest(seed=b"content", size=CHUNK_SIZE, name="f.jpg"):
    return build_manifest(name, seed, size)


class TestStorePath:
    def test_first_upload_is_not_duplicate(self):
        server = MetadataServer()
        decision = server.request_store(1, manifest())
        assert not decision.duplicate
        assert decision.frontend_id is not None

    def test_second_upload_of_same_content_deduplicated(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        server.commit_store(1, m, decision.frontend_id)
        dup = server.request_store(2, m)
        assert dup.duplicate
        assert dup.frontend_id is None
        assert dup.url  # registered directly in user 2's space

    def test_dedup_ratio(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        server.commit_store(1, m, decision.frontend_id)
        server.request_store(2, m)
        server.request_store(3, m)
        assert server.dedup_ratio == pytest.approx(2 / 3)
        assert server.unique_contents == 1

    def test_commit_registers_user_file(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        files = server.user_files(1)
        assert len(files) == 1
        assert files[0].url == url
        assert files[0].size == m.size

    def test_commit_to_unknown_frontend_rejected(self):
        server = MetadataServer(n_frontends=2)
        with pytest.raises(ValueError):
            server.commit_store(1, manifest(), 5)

    def test_frontend_assignment_stable(self):
        server = MetadataServer(n_frontends=4)
        d1 = server.request_store(6, manifest(b"a"))
        d2 = server.request_store(6, manifest(b"b"))
        assert d1.frontend_id == d2.frontend_id

    def test_reregistering_same_file_keeps_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url1 = server.commit_store(1, m, decision.frontend_id)
        url2 = server.commit_store(1, m, decision.frontend_id)
        assert url1 == url2
        assert len(server.user_files(1)) == 1


class TestRetrievalPath:
    def test_resolve_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        record, frontend = server.resolve_url(url)
        assert record.file_md5 == m.file_md5
        assert frontend == decision.frontend_id

    def test_any_user_can_resolve_shared_url(self):
        server = MetadataServer()
        m = manifest()
        decision = server.request_store(1, m)
        url = server.commit_store(1, m, decision.frontend_id)
        record, _ = server.resolve_url(url)  # user 2 fetches user 1's link
        assert record.owner == 1

    def test_unknown_url_raises(self):
        with pytest.raises(KeyError):
            MetadataServer().resolve_url("https://nope")


def test_needs_at_least_one_frontend():
    with pytest.raises(ValueError):
        MetadataServer(n_frontends=0)
