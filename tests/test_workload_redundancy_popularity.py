"""Tests for redundancy streams and download-popularity modeling."""

import numpy as np
import pytest

from repro.workload import (
    MobileBackupModel,
    PcSyncModel,
    PopularityModel,
    build_catalog,
    corpus_bytes,
    mobile_backup_stream,
    pc_sync_stream,
    request_stream,
    zipf_weights,
)


class TestMobileStream:
    def test_stream_aligned_with_lineages(self):
        manifests, lineages = mobile_backup_stream(seed=1)
        assert len(manifests) == len(lineages)
        assert len(manifests) > 0

    def test_every_photo_has_unique_lineage_per_capture(self):
        manifests, lineages = mobile_backup_stream(
            MobileBackupModel(n_users=5, photos_per_user=10,
                              rebackup_probability=0.0, viral_files=0),
            seed=2,
        )
        # No re-backups, no viral: manifests and lineages are all unique.
        assert len(set(lineages)) == len(lineages)
        assert len({m.file_md5 for m in manifests}) == len(manifests)

    def test_rebackups_share_content(self):
        manifests, _ = mobile_backup_stream(
            MobileBackupModel(n_users=10, photos_per_user=20,
                              rebackup_probability=0.5, viral_files=0),
            seed=3,
        )
        hashes = [m.file_md5 for m in manifests]
        assert len(set(hashes)) < len(hashes)

    def test_viral_files_uploaded_by_many(self):
        manifests, _ = mobile_backup_stream(
            MobileBackupModel(n_users=2, photos_per_user=1,
                              rebackup_probability=0.0,
                              viral_files=1, viral_uploaders=7),
            seed=4,
        )
        hashes = [m.file_md5 for m in manifests]
        most_common = max(set(hashes), key=hashes.count)
        assert hashes.count(most_common) == 7

    def test_deterministic(self):
        a = mobile_backup_stream(seed=5)
        b = mobile_backup_stream(seed=5)
        assert [m.file_md5 for m in a[0]] == [m.file_md5 for m in b[0]]


class TestPcStream:
    def test_revisions_share_lineage(self):
        model = PcSyncModel(n_users=2, documents_per_user=1,
                            revisions_per_document=4)
        manifests, lineages = pc_sync_stream(model, seed=1)
        assert len(manifests) == 8
        assert len(set(lineages)) == 2

    def test_consecutive_revisions_share_chunks(self):
        model = PcSyncModel(n_users=1, documents_per_user=1,
                            document_chunks=8,
                            chunks_changed_per_revision=2,
                            revisions_per_document=3)
        manifests, _ = pc_sync_stream(model, seed=2)
        first, second = manifests[0], manifests[1]
        shared = set(first.chunk_md5s) & set(second.chunk_md5s)
        assert len(shared) == 6
        assert first.file_md5 != second.file_md5


class TestPopularity:
    def test_model_validation(self):
        with pytest.raises(ValueError):
            PopularityModel(n_objects=0)
        with pytest.raises(ValueError):
            PopularityModel(zipf_s=-1)
        with pytest.raises(ValueError):
            PopularityModel(mean_size_mb=0)

    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(100, 0.9)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_zipf_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_catalog_sizes_floor(self):
        model = PopularityModel(n_objects=50, min_size_mb=2.0)
        catalog = build_catalog(model, np.random.default_rng(0))
        assert all(o.size >= 2 * 1024 * 1024 for o in catalog)
        assert corpus_bytes(catalog) == sum(o.size for o in catalog)

    def test_request_stream_skews_to_head(self):
        model = PopularityModel(n_objects=100, zipf_s=1.0)
        catalog, requests = request_stream(model, 5000, seed=1)
        head = {o.key for o in catalog[:10]}
        head_share = np.mean([r.key in head for r in requests])
        assert head_share > 0.35

    def test_request_count_validated(self):
        with pytest.raises(ValueError):
            request_stream(PopularityModel(), 0)
