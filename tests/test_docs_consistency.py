"""Consistency between documentation, experiments and benchmarks."""

import pathlib
import re

import pytest

from repro.experiments import ALL_EXPERIMENTS

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Benchmarks of the toolkit's own machinery rather than of a paper
#: figure/table; exempt from the bench <-> experiment mapping.
INFRASTRUCTURE_BENCHMARKS = {
    "bench_parallel_generation.py",
    "bench_fault_overhead.py",
    "bench_columnar_analysis.py",
    "bench_replay_openloop.py",
    "bench_paper_scale.py",
}


def experiment_ids():
    return {module.run().experiment for module in []}  # placeholder


@pytest.fixture(scope="module")
def module_names():
    return [m.__name__.rsplit(".", 1)[-1] for m in ALL_EXPERIMENTS]


def test_every_experiment_has_a_benchmark(module_names):
    bench_dir = REPO / "benchmarks"
    missing = [
        name
        for name in module_names
        if not (bench_dir / f"bench_{name}.py").exists()
    ]
    assert not missing, f"experiments without benchmarks: {missing}"


def test_every_benchmark_maps_to_an_experiment(module_names):
    bench_dir = REPO / "benchmarks"
    strays = []
    for path in bench_dir.glob("bench_*.py"):
        if path.name in INFRASTRUCTURE_BENCHMARKS:
            continue
        name = path.stem.removeprefix("bench_")
        if name not in module_names:
            strays.append(path.name)
    assert not strays, f"benchmarks without experiments: {strays}"


def test_design_md_references_every_bench(module_names):
    design = (REPO / "DESIGN.md").read_text()
    missing = [
        name
        for name in module_names
        if f"bench_{name}.py" not in design
    ]
    assert not missing, f"DESIGN.md missing bench references: {missing}"


def test_paper_map_mentions_every_experiment_module():
    paper_map = (REPO / "docs" / "PAPER_MAP.md").read_text()
    # Every experiment id printed by the battery should appear in the map.
    ids = set()
    for module in ALL_EXPERIMENTS:
        match = re.search(
            r'experiment="([^"]+)"', pathlib.Path(module.__file__).read_text()
        )
        assert match, module.__name__
        ids.add(match.group(1).split("/")[0])
    missing = [i for i in ids if i not in paper_map]
    assert not missing, f"PAPER_MAP.md missing experiment ids: {missing}"


def test_readme_experiment_count_current():
    readme = (REPO / "README.md").read_text()
    assert f"all {len(ALL_EXPERIMENTS)}" in readme, (
        "README experiment count is stale"
    )


def test_table1_field_list_in_docs_matches_schema():
    """Doc-level companion to lint rule S1.

    The Table 1 field list spelled out in PAPER_MAP.md and README.md must
    be exactly the LogRecord dataclass fields, in declaration order — a
    column added to the schema without updating the prose (or vice versa)
    fails here, the same way reordering a code literal fails S1.
    """
    from dataclasses import fields as dataclass_fields

    from repro.logs.schema import LogRecord

    expected = ", ".join(f"`{f.name}`" for f in dataclass_fields(LogRecord))
    for doc in (REPO / "docs" / "PAPER_MAP.md", REPO / "README.md"):
        text = re.sub(r"\s+", " ", doc.read_text())
        assert expected in text, (
            f"{doc.name} Table 1 field list out of sync with logs.schema; "
            f"expected: {expected}"
        )


def test_telemetry_field_list_in_docs_matches_schema():
    """TELEMETRY.md's snapshot field list is pinned to the dataclass,
    exactly like the Table 1 prose is pinned to LogRecord above."""
    from dataclasses import fields as dataclass_fields

    from repro.service.telemetry import TelemetrySnapshot

    expected = ", ".join(
        f"`{f.name}`" for f in dataclass_fields(TelemetrySnapshot)
    )
    text = re.sub(r"\s+", " ", (REPO / "docs" / "TELEMETRY.md").read_text())
    assert expected in text, (
        "TELEMETRY.md snapshot field list out of sync with "
        f"service.telemetry; expected: {expected}"
    )


def test_telemetry_doc_is_cross_linked():
    for doc in ("README.md", "docs/ROBUSTNESS.md", "docs/SCALING.md"):
        assert "TELEMETRY.md" in (REPO / doc).read_text(), (
            f"{doc} does not link docs/TELEMETRY.md"
        )


def test_static_analysis_doc_covers_every_rule():
    """docs/STATIC_ANALYSIS.md is the rule catalog — it must name every
    registered rule id and be linked from README and SCALING.md."""
    from repro.devtools import load_builtin_rules

    catalog = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text()
    missing = [rid for rid in load_builtin_rules() if f"`{rid}`" not in catalog]
    assert not missing, f"STATIC_ANALYSIS.md missing rules: {missing}"
    for doc in ("README.md", "docs/SCALING.md"):
        assert "STATIC_ANALYSIS.md" in (REPO / doc).read_text(), (
            f"{doc} does not link docs/STATIC_ANALYSIS.md"
        )


def test_experiment_modules_define_main():
    for module in ALL_EXPERIMENTS:
        source = pathlib.Path(module.__file__).read_text()
        assert '__main__' in source, module.__name__
        assert callable(module.run)
