"""Tests for the Section 4.3 mitigation presets and sweep."""

import pytest

from repro.logs import CHUNK_SIZE, DeviceType, Direction
from repro.tcpsim import (
    BASELINE,
    BATCHED_CHUNKS,
    LARGER_CHUNKS,
    MITIGATIONS,
    NO_SSAI,
    SCALED_SERVER_WINDOW,
    run_mitigation_sweep,
)


class TestPresets:
    def test_baseline_matches_deployed_service(self):
        assert BASELINE.chunk_size == CHUNK_SIZE
        assert BASELINE.batch_size == 1
        assert BASELINE.slow_start_after_idle
        assert not BASELINE.server_window_scaling

    def test_presets_change_one_thing(self):
        assert LARGER_CHUNKS.chunk_size == 2 * 1024 * 1024
        assert LARGER_CHUNKS.batch_size == 1
        assert BATCHED_CHUNKS.batch_size == 4
        assert BATCHED_CHUNKS.chunk_size == CHUNK_SIZE
        assert not NO_SSAI.slow_start_after_idle
        assert SCALED_SERVER_WINDOW.server_window_scaling

    def test_registry_complete(self):
        assert set(MITIGATIONS) == {
            "baseline",
            "larger_chunks",
            "batched_chunks",
            "no_ssai",
            "paced_restart",
            "scaled_server_window",
        }


class TestSweep:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_mitigation_sweep(
            device=DeviceType.ANDROID,
            direction=Direction.STORE,
            n_flows=6,
            file_size=6 * CHUNK_SIZE,
            seed=2,
        )

    def test_all_mitigations_measured(self, outcomes):
        assert set(outcomes) == set(MITIGATIONS)

    def test_every_mitigation_beats_baseline(self, outcomes):
        base = outcomes["baseline"]
        for name, outcome in outcomes.items():
            if name == "baseline":
                continue
            assert outcome.speedup_over(base) > 1.0, name

    def test_no_ssai_removes_restarts(self, outcomes):
        assert outcomes["no_ssai"].restart_fraction == 0.0
        assert outcomes["baseline"].restart_fraction > 0.0

    def test_larger_chunks_cut_restart_events(self, outcomes):
        assert (
            outcomes["larger_chunks"].restarts_per_flow
            < outcomes["baseline"].restarts_per_flow
        )

    def test_restarts_per_flow_consistent(self, outcomes):
        base = outcomes["baseline"]
        # restarts_per_flow = restart_fraction * gaps_per_flow; with 6
        # chunks there are 5 gaps per flow.
        assert base.restarts_per_flow == pytest.approx(
            base.restart_fraction * 5, rel=0.01
        )

    def test_speedup_requires_positive_baseline(self, outcomes):
        from dataclasses import replace

        broken = replace(outcomes["baseline"], mean_flow_throughput=0.0)
        with pytest.raises(ValueError):
            outcomes["no_ssai"].speedup_over(broken)
