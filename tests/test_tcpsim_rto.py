"""Tests for the RFC 6298 RTO estimator."""

import pytest

from repro.tcpsim import RtoEstimator, paper_rto_estimate


class TestEstimator:
    def test_initial_rto_before_samples(self):
        assert RtoEstimator().rto == 1.0

    def test_first_sample_initializes(self):
        est = RtoEstimator()
        est.observe(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        # RTO = SRTT + max(G, 4*RTTVAR) = 0.1 + max(0.2, 0.2) = 0.3.
        assert est.rto == pytest.approx(0.3)

    def test_ewma_updates_follow_rfc(self):
        est = RtoEstimator()
        est.observe(0.1)
        est.observe(0.2)
        # RTTVAR <- 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625
        # SRTT   <- 7/8*0.1 + 1/8*0.2 = 0.1125
        assert est.rttvar == pytest.approx(0.0625)
        assert est.srtt == pytest.approx(0.1125)
        assert est.rto == pytest.approx(0.1125 + 0.25)

    def test_variance_floor_dominates_steady_rtt(self):
        est = RtoEstimator()
        for _ in range(100):
            est.observe(0.1)
        # RTTVAR decays toward zero; the 200 ms floor holds.
        assert est.rto == pytest.approx(0.3, abs=0.01)

    def test_large_variance_exceeds_floor(self):
        est = RtoEstimator()
        for rtt in (0.1, 0.5, 0.1, 0.5, 0.1, 0.5):
            est.observe(rtt)
        assert est.rto > est.srtt + 0.2

    def test_rto_clamped_to_max(self):
        est = RtoEstimator(max_rto=2.0)
        est.observe(10.0)
        assert est.rto == 2.0

    def test_backoff_doubles_without_samples(self):
        est = RtoEstimator()
        first = est.rto
        assert est.backoff() == pytest.approx(2 * first)

    def test_backoff_increases_rto_after_samples(self):
        est = RtoEstimator()
        est.observe(0.1)
        before = est.rto
        assert est.backoff() > before

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ValueError):
            RtoEstimator().observe(0.0)


class TestPaperEstimate:
    def test_small_rtt_uses_floor(self):
        # RTO ~ RTT + max(200ms, 2 RTT); at 50 ms the floor dominates.
        assert paper_rto_estimate(0.05) == pytest.approx(0.25)

    def test_large_rtt_scales(self):
        assert paper_rto_estimate(0.5) == pytest.approx(1.5)

    def test_boundary_at_100ms(self):
        assert paper_rto_estimate(0.1) == pytest.approx(0.3)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            paper_rto_estimate(0.0)
