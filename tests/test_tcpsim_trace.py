"""Tests for packet-level flow traces and their derived series."""

import numpy as np
import pytest

from repro.tcpsim import FlowTrace


def populated_trace():
    trace = FlowTrace()
    # Simulated: three sends, two ACKs, two RTT samples.
    trace.record_send(0.0, 1000, 1000)
    trace.record_send(0.1, 2000, 2000)
    trace.record_send(1.5, 3000, 1000)  # after a 1.4 s idle gap
    trace.record_ack(0.2, 1000, 1000)
    trace.record_ack(0.3, 2000, 0)
    trace.record_rtt(0.2, 0.2)
    trace.record_rtt(0.3, 0.2)
    return trace


class TestSeries:
    def test_sequence_series(self):
        times, seqs = populated_trace().sequence_series()
        assert list(times) == [0.0, 0.1, 1.5]
        assert list(seqs) == [1000, 2000, 3000]

    def test_inflight_series_from_acks(self):
        times, inflight = populated_trace().inflight_series()
        assert list(times) == [0.2, 0.3]
        assert list(inflight) == [1000, 0]

    def test_average_rtt(self):
        assert populated_trace().average_rtt() == pytest.approx(0.2)

    def test_average_rtt_requires_samples(self):
        with pytest.raises(ValueError):
            FlowTrace().average_rtt()

    def test_max_inflight(self):
        assert populated_trace().max_inflight() == 2000

    def test_max_inflight_empty_rejected(self):
        with pytest.raises(ValueError):
            FlowTrace().max_inflight()


class TestIdleGaps:
    def test_gaps_above_threshold(self):
        gaps = populated_trace().idle_gaps(threshold=1.0)
        assert list(np.round(gaps, 6)) == [1.4]

    def test_all_gaps_with_zero_threshold(self):
        gaps = populated_trace().idle_gaps()
        assert gaps.size == 2

    def test_single_send_no_gaps(self):
        trace = FlowTrace()
        trace.record_send(0.0, 100, 100)
        assert trace.idle_gaps().size == 0


class TestThroughput:
    def test_delivered_bytes_over_span(self):
        trace = populated_trace()
        # 1000 bytes delivered over 0.1 s.
        assert trace.throughput() == pytest.approx(10_000.0)

    def test_requires_two_acks(self):
        trace = FlowTrace()
        trace.record_ack(0.0, 100, 0)
        with pytest.raises(ValueError):
            trace.throughput()

    def test_zero_span_rejected(self):
        trace = FlowTrace()
        trace.record_ack(1.0, 100, 0)
        trace.record_ack(1.0, 200, 0)
        with pytest.raises(ValueError):
            trace.throughput()
