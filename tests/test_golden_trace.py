"""Golden-trace regression: pin the generator's exact output.

``tests/data/golden_trace.tsv`` is a committed fixed-seed trace.  Any
change to the generator, the per-user seed derivation, the session-id
scheme, or the TSV serialization that silently alters output makes these
tests fail loudly — if the change is intentional, regenerate the fixture:

    PYTHONPATH=src python -c "
    from repro.logs.io import write_tsv
    from repro.workload import GeneratorOptions, generate_trace
    write_tsv(generate_trace(10, n_pc_only_users=3,
                             options=GeneratorOptions(max_chunks_per_file=2),
                             seed=1234),
              'tests/data/golden_trace.tsv')"
"""

from pathlib import Path

import pytest

from tests.helpers import assert_traces_equivalent
from repro.logs.io import (
    read_jsonl,
    read_tsv,
    record_to_tsv,
    write_jsonl,
    write_tsv,
)
from repro.workload import (
    GeneratorOptions,
    generate_trace,
    generate_trace_parallel,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.tsv"
GOLDEN_USERS = 10
GOLDEN_PC_USERS = 3
GOLDEN_SEED = 1234
GOLDEN_OPTIONS = GeneratorOptions(max_chunks_per_file=2)


def regenerate():
    return generate_trace(
        GOLDEN_USERS,
        n_pc_only_users=GOLDEN_PC_USERS,
        options=GOLDEN_OPTIONS,
        seed=GOLDEN_SEED,
    )


@pytest.fixture(scope="module")
def golden_lines():
    lines = GOLDEN_PATH.read_text().splitlines()
    assert lines[0].startswith("#")
    return lines[1:]


def test_generator_matches_golden_trace(golden_lines):
    regenerated = [record_to_tsv(r) for r in regenerate()]
    assert len(regenerated) == len(golden_lines)
    for index, (want, got) in enumerate(zip(golden_lines, regenerated)):
        assert want == got, f"first drift at record {index}: {want!r} != {got!r}"


def test_sharded_generator_matches_golden_trace(golden_lines):
    sharded = generate_trace_parallel(
        GOLDEN_USERS,
        n_pc_only_users=GOLDEN_PC_USERS,
        options=GOLDEN_OPTIONS,
        seed=GOLDEN_SEED,
        n_shards=3,
        n_workers=1,
    )
    assert [record_to_tsv(r) for r in sharded] == golden_lines


def test_golden_tsv_round_trip(tmp_path):
    """read_tsv -> write_tsv reproduces the committed file byte-for-byte."""
    out = tmp_path / "copy.tsv"
    count = write_tsv(read_tsv(GOLDEN_PATH), out)
    assert count == 649
    assert out.read_bytes() == GOLDEN_PATH.read_bytes()


def test_golden_jsonl_round_trip(tmp_path):
    """TSV -> JSONL -> records preserves every field exactly."""
    out = tmp_path / "copy.jsonl"
    originals = list(read_tsv(GOLDEN_PATH))
    write_jsonl(originals, out)
    round_tripped = list(read_jsonl(out))
    assert_traces_equivalent(originals, round_tripped, label="jsonl round-trip")
    # Field-level spot check beyond LogRecord equality (session_id is
    # excluded from __eq__, so compare it explicitly).
    assert [r.session_id for r in round_tripped] == [
        r.session_id for r in originals
    ]
    assert round_tripped == originals
