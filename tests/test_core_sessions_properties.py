"""Property-based invariants of the sessionizer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sessions import sessionize_user
from repro.logs import DeviceType, Direction, LogRecord, RequestKind

TAU = 3600.0


def op(ts):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.FILE_OP,
        direction=Direction.STORE,
    )


op_times = st.lists(
    st.floats(0, 7 * 86_400, allow_nan=False), min_size=1, max_size=60
).map(sorted)


@given(times=op_times)
@settings(max_examples=200)
def test_sessions_partition_operations(times):
    records = [op(t) for t in times]
    sessions = list(sessionize_user(records, tau=TAU))
    recovered = sorted(
        r.timestamp for s in sessions for r in s.records
    )
    assert recovered == sorted(times)


@given(times=op_times)
@settings(max_examples=200)
def test_within_session_gaps_bounded_by_tau(times):
    records = [op(t) for t in times]
    for session in sessionize_user(records, tau=TAU):
        ops = [r.timestamp for r in session.file_ops]
        gaps = np.diff(ops)
        assert np.all(gaps <= TAU + 1e-9)


@given(times=op_times)
@settings(max_examples=200)
def test_between_session_gaps_exceed_tau(times):
    records = [op(t) for t in times]
    sessions = list(sessionize_user(records, tau=TAU))
    for earlier, later in zip(sessions, sessions[1:]):
        last_op = earlier.file_ops[-1].timestamp
        first_op = later.file_ops[0].timestamp
        assert first_op - last_op > TAU


@given(times=op_times)
@settings(max_examples=100)
def test_sessions_time_ordered_and_disjoint(times):
    records = [op(t) for t in times]
    sessions = list(sessionize_user(records, tau=TAU))
    starts = [s.start for s in sessions]
    assert starts == sorted(starts)
    for earlier, later in zip(sessions, sessions[1:]):
        assert earlier.file_ops[-1].timestamp < later.start


@given(times=op_times, tau=st.floats(1.0, 86_400.0))
@settings(max_examples=100)
def test_smaller_tau_never_fewer_sessions(times, tau):
    records = [op(t) for t in times]
    fine = len(list(sessionize_user(records, tau=tau)))
    coarse = len(list(sessionize_user(records, tau=tau * 2)))
    assert fine >= coarse
