"""Property-based invariants of the packet-level TCP simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventLoop
from repro.tcpsim import MAX_UNSCALED_RWND, FlowTrace, NetworkPath, TcpTransfer


def run_once(size, bandwidth, delay, loss, seed, rwnd=MAX_UNSCALED_RWND):
    loop = EventLoop()
    path = NetworkPath(
        bandwidth=bandwidth,
        one_way_delay=delay,
        loss_rate=loss,
        seed=seed,
    )
    trace = FlowTrace()
    transfer = TcpTransfer(
        loop, path, "up", peer_rwnd=rwnd, window_scaling=rwnd > MAX_UNSCALED_RWND,
        trace=trace,
    )
    receipts = []
    transfer.connect(lambda: transfer.send_message(size, receipts.append))
    loop.run()
    return transfer, trace, receipts


@given(
    size=st.integers(100, 800_000),
    bandwidth=st.floats(100_000, 20_000_000),
    delay=st.floats(0.001, 0.3),
)
@settings(max_examples=40, deadline=None)
def test_lossless_delivery_is_complete_and_exact(size, bandwidth, delay):
    transfer, trace, receipts = run_once(size, bandwidth, delay, 0.0, 0)
    assert len(receipts) == 1
    assert trace.ack_seqs[-1] == size
    assert transfer.inflight == 0
    assert transfer.retransmissions == 0


@given(
    size=st.integers(5_000, 300_000),
    loss=st.floats(0.001, 0.12),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_lossy_delivery_still_completes(size, loss, seed):
    transfer, trace, receipts = run_once(
        size, 2_000_000.0, 0.03, loss, seed
    )
    assert len(receipts) == 1
    assert trace.ack_seqs[-1] == size


@given(
    size=st.integers(100_000, 2_000_000),
    delay=st.floats(0.02, 0.2),
)
@settings(max_examples=25, deadline=None)
def test_inflight_never_exceeds_unscaled_window(size, delay):
    _, trace, _ = run_once(size, 50_000_000.0, delay, 0.0, 0)
    # Allowance of one MSS for the segment being clocked out.
    assert trace.max_inflight() <= MAX_UNSCALED_RWND + 1448


@given(size=st.integers(10_000, 500_000))
@settings(max_examples=25, deadline=None)
def test_event_times_monotone(size):
    _, trace, _ = run_once(size, 1_000_000.0, 0.05, 0.0, 0)
    times = trace.send_times
    assert all(b >= a for a, b in zip(times, times[1:]))
    acks = trace.ack_times
    assert all(b >= a for a, b in zip(acks, acks[1:]))


@given(
    size=st.integers(50_000, 400_000),
    delay=st.floats(0.01, 0.1),
)
@settings(max_examples=20, deadline=None)
def test_completion_time_bounded_below_by_physics(size, delay):
    """No transfer finishes faster than serialization + one-way delay."""
    bandwidth = 2_000_000.0
    _, trace, receipts = run_once(size, bandwidth, delay, 0.0, 0)
    lower_bound = size / bandwidth + delay
    assert receipts[0].last_arrival >= lower_bound * 0.99


@given(seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_determinism_across_runs(seed):
    a = run_once(120_000, 1_500_000.0, 0.04, 0.03, seed)[2][0]
    b = run_once(120_000, 1_500_000.0, 0.04, 0.03, seed)[2][0]
    assert a.last_ack_time == pytest.approx(b.last_ack_time)
