"""Integration tests: full pipelines across subsystem boundaries."""

import numpy as np
import pytest

from repro.core import (
    analyze_trace,
    classify_sessions,
    file_operation_intervals,
    fit_interval_model,
    sessionize,
)
from repro.logs import (
    Anonymizer,
    CHUNK_SIZE,
    DeviceType,
    mobile_only,
    read_tsv,
    write_tsv,
)
from repro.service import ServiceCluster
from repro.workload import GeneratorOptions, TraceGenerator, generate_trace


class TestGenerateWriteReadAnalyze:
    def test_roundtrip_through_files(self, tmp_path):
        """Generate -> anonymize -> write -> read -> analyze."""
        records = generate_trace(
            400, options=GeneratorOptions(max_chunks_per_file=4), seed=13
        )
        anonymizer = Anonymizer(key=b"integration")
        path = tmp_path / "trace.tsv.gz"
        write_tsv(anonymizer.anonymize_stream(records), path)

        loaded = list(read_tsv(path))
        assert len(loaded) == len(records)

        report = analyze_trace(loaded, fit_size_model=False)
        assert report.interval_model.tau == 3600.0
        assert report.session_shares.store_only > 0.5


class TestGroundTruthSessionRecovery:
    def test_sessionization_matches_planted_sessions(self):
        """The tau=1h sessionizer must recover the generator's sessions."""
        generator = TraceGenerator(
            300, options=GeneratorOptions(max_chunks_per_file=4), seed=17
        )
        records = [r for r in generator.generate() if r.is_mobile]
        recovered = sessionize(records)

        # Score: for each recovered session, all its records should share
        # one ground-truth id (purity), and the number of sessions should
        # be close to the number of planted ids.
        truth_ids = {r.session_id for r in records}
        pure = 0
        for session in recovered:
            ids = {r.session_id for r in session.records}
            pure += len(ids) == 1
        purity = pure / len(recovered)
        count_ratio = len(recovered) / len(truth_ids)
        assert purity > 0.97
        assert 0.9 < count_ratio < 1.1


class TestServiceLogsFeedAnalysis:
    def test_cluster_logs_sessionize(self):
        """Logs produced by the service simulator flow through the
        analysis pipeline unchanged."""
        cluster = ServiceCluster(n_frontends=2)
        rng = np.random.default_rng(0)
        for user in range(1, 21):
            client = cluster.new_client(user, f"m{user}", DeviceType.ANDROID)
            client.clock = float(rng.uniform(0, 3600.0))
            n_files = int(rng.integers(1, 4))
            for i in range(n_files):
                client.store_file(
                    f"f{i}.jpg", f"content-{user}-{i}".encode(),
                    int(rng.integers(CHUNK_SIZE // 2, 3 * CHUNK_SIZE)),
                )
        log = cluster.access_log()
        sessions = sessionize(list(mobile_only(log)))
        shares = classify_sessions(sessions)
        assert shares.store_only == 1.0
        assert len(sessions) == 20

    def test_interval_model_from_combined_sources(self):
        """Synthetic trace intervals stay fittable after filtering."""
        records = generate_trace(
            500, options=GeneratorOptions(emit_chunks=False), seed=19
        )
        intervals = file_operation_intervals(list(mobile_only(records)))
        model = fit_interval_model(intervals)
        assert 1.0 < model.within_session_mean_seconds < 60.0
        assert model.between_session_mean_seconds > 3600.0


class TestScaleInvariance:
    @pytest.mark.parametrize("n_users", [300, 900])
    def test_headline_stats_stable_across_scale(self, n_users):
        records = generate_trace(
            n_users, options=GeneratorOptions(max_chunks_per_file=4),
            seed=23,
        )
        report = analyze_trace(records, fit_size_model=False)
        assert report.session_shares.store_only == pytest.approx(0.70, abs=0.08)
        assert report.upload_only_share == pytest.approx(0.5, abs=0.12)
