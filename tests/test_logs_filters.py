"""Tests for record filters."""

import pytest

from repro.logs import (
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    in_window,
    matching,
    mobile_only,
    of_device,
    of_direction,
    of_kind,
    of_users,
    pc_only,
    unproxied,
)


def record(ts=0.0, device=DeviceType.ANDROID, user=1, kind=RequestKind.CHUNK,
           direction=Direction.STORE, proxied=False):
    return LogRecord(
        timestamp=ts,
        device_type=device,
        device_id=f"d{user}",
        user_id=user,
        kind=kind,
        direction=direction,
        volume=0 if kind is RequestKind.FILE_OP else 100,
        proxied=proxied,
    )


RECORDS = [
    record(ts=0.0, device=DeviceType.ANDROID, user=1),
    record(ts=1.0, device=DeviceType.IOS, user=2, direction=Direction.RETRIEVE),
    record(ts=2.0, device=DeviceType.PC, user=3, proxied=True),
    record(ts=3.0, device=DeviceType.ANDROID, user=1, kind=RequestKind.FILE_OP),
]


def test_mobile_only_excludes_pc():
    assert all(r.is_mobile for r in mobile_only(RECORDS))
    assert len(list(mobile_only(RECORDS))) == 3


def test_pc_only():
    out = list(pc_only(RECORDS))
    assert len(out) == 1
    assert out[0].device_type is DeviceType.PC


def test_unproxied():
    assert all(not r.proxied for r in unproxied(RECORDS))
    assert len(list(unproxied(RECORDS))) == 3


def test_of_kind():
    assert len(list(of_kind(RECORDS, RequestKind.FILE_OP))) == 1


def test_of_direction():
    assert len(list(of_direction(RECORDS, Direction.RETRIEVE))) == 1


def test_of_device():
    assert len(list(of_device(RECORDS, DeviceType.ANDROID))) == 2


def test_in_window_is_half_open():
    out = list(in_window(RECORDS, 1.0, 3.0))
    assert [r.timestamp for r in out] == [1.0, 2.0]


def test_in_window_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        list(in_window(RECORDS, 3.0, 1.0))


def test_of_users():
    out = list(of_users(RECORDS, {1}))
    assert len(out) == 2
    assert all(r.user_id == 1 for r in out)


def test_matching_combines_predicates():
    out = list(
        matching(
            RECORDS,
            lambda r: r.is_mobile,
            lambda r: r.direction is Direction.STORE,
        )
    )
    assert len(out) == 2


def test_filters_are_lazy():
    gen = mobile_only(iter(RECORDS))
    assert next(gen).user_id == 1
