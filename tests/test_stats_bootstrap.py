"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci


def test_interval_contains_estimate():
    rng = np.random.default_rng(0)
    data = rng.normal(10.0, 2.0, 500)
    ci = bootstrap_ci(data, np.mean, seed=1)
    assert ci.low <= ci.estimate <= ci.high


def test_mean_interval_covers_truth():
    rng = np.random.default_rng(1)
    data = rng.normal(5.0, 1.0, 1000)
    ci = bootstrap_ci(data, np.mean, seed=2)
    assert ci.contains(5.0)


def test_width_shrinks_with_sample_size():
    rng = np.random.default_rng(2)
    small = bootstrap_ci(rng.normal(0, 1, 50), np.mean, seed=3)
    large = bootstrap_ci(rng.normal(0, 1, 5000), np.mean, seed=3)
    assert large.width < small.width


def test_confidence_widens_interval():
    rng = np.random.default_rng(3)
    data = rng.normal(0, 1, 300)
    narrow = bootstrap_ci(data, np.mean, confidence=0.5, seed=4)
    wide = bootstrap_ci(data, np.mean, confidence=0.99, seed=4)
    assert wide.width > narrow.width


def test_median_statistic():
    data = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
    ci = bootstrap_ci(data, np.median, seed=5)
    assert ci.estimate == 3.0


def test_deterministic_given_seed():
    rng = np.random.default_rng(6)
    data = rng.normal(0, 1, 100)
    a = bootstrap_ci(data, np.mean, seed=7)
    b = bootstrap_ci(data, np.mean, seed=7)
    assert (a.low, a.high) == (b.low, b.high)


def test_validation():
    with pytest.raises(ValueError):
        bootstrap_ci(np.array([]), np.mean)
    with pytest.raises(ValueError):
        bootstrap_ci(np.array([1.0]), np.mean, confidence=1.5)
    with pytest.raises(ValueError):
        bootstrap_ci(np.array([1.0]), np.mean, n_resamples=1)
