"""Tests for the on-disk prepared-trace cache (`experiments.common`)."""

import os
from pathlib import Path

import numpy as np
import pytest

import repro.experiments.common as common
from repro.experiments.common import PreparedTrace, prepared_trace
from repro.logs.columnar import SCHEMA_VERSION

SCALE = dict(n_users=120, n_pc_users=20, seed=9)
REPO_ROOT = str(Path(__file__).resolve().parent.parent)


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts without in-process memoization hits."""
    prepared_trace.cache_clear()
    yield
    prepared_trace.cache_clear()


def test_disabled_cache_touches_no_files(tmp_path, monkeypatch):
    monkeypatch.delenv(common.CACHE_ENV, raising=False)
    monkeypatch.setattr("tempfile.tempdir", str(tmp_path))
    trace = prepared_trace(**SCALE)
    assert isinstance(trace, PreparedTrace)
    assert list(tmp_path.iterdir()) == []


def test_cold_run_writes_one_npz(tmp_path):
    prepared_trace(**SCALE, cache_dir=tmp_path)
    files = list(tmp_path.iterdir())
    assert len(files) == 1
    assert files[0].suffix == ".npz"
    assert f"-v{SCHEMA_VERSION}-" in files[0].name


def test_warm_run_skips_generation_and_matches_cold(tmp_path):
    cold = prepared_trace(**SCALE, cache_dir=tmp_path)
    calls = common.GENERATION_CALLS
    prepared_trace.cache_clear()

    warm = prepared_trace(**SCALE, cache_dir=tmp_path)
    assert common.GENERATION_CALLS == calls, "warm hit ran generation"
    assert warm.records == cold.records
    assert warm.mobile_records == cold.mobile_records
    assert warm.sessions == cold.sessions
    assert warm.all_sessions == cold.all_sessions
    assert warm.profiles == cold.profiles


def test_env_var_opt_in(tmp_path, monkeypatch):
    prepared_trace(**SCALE, cache_dir=tmp_path)
    calls = common.GENERATION_CALLS
    prepared_trace.cache_clear()

    monkeypatch.setenv(common.CACHE_ENV, str(tmp_path))
    prepared_trace(**SCALE)
    assert common.GENERATION_CALLS == calls


def test_cache_key_varies_with_inputs(tmp_path):
    opts = common.GeneratorOptions(max_chunks_per_file=6)
    names = {
        common._cache_name(120, 20, 9, opts),
        common._cache_name(121, 20, 9, opts),
        common._cache_name(120, 21, 9, opts),
        common._cache_name(120, 20, 10, opts),
        common._cache_name(
            120, 20, 9, common.GeneratorOptions(max_chunks_per_file=7)
        ),
    }
    assert len(names) == 5, "some cache key collided"


def test_different_options_do_not_hit_each_others_cache(tmp_path):
    a = prepared_trace(**SCALE, max_chunks_per_file=2, cache_dir=tmp_path)
    b = prepared_trace(**SCALE, max_chunks_per_file=6, cache_dir=tmp_path)
    assert len(list(tmp_path.iterdir())) == 2
    assert len(a.records) != len(b.records)


def test_corrupt_cache_file_regenerates(tmp_path):
    cold = prepared_trace(**SCALE, cache_dir=tmp_path)
    [cache_file] = tmp_path.iterdir()
    cache_file.write_bytes(b"not an npz file")
    prepared_trace.cache_clear()

    calls = common.GENERATION_CALLS
    regenerated = prepared_trace(**SCALE, cache_dir=tmp_path)
    assert common.GENERATION_CALLS == calls + 1
    assert regenerated.records == cold.records


def test_schema_version_mismatch_regenerates(tmp_path):
    prepared_trace(**SCALE, cache_dir=tmp_path)
    [cache_file] = tmp_path.iterdir()
    with np.load(cache_file, allow_pickle=False) as data:
        payload = {k: data[k] for k in data.files}
    payload["schema_version"] = np.asarray(SCHEMA_VERSION + 1, dtype=np.int64)
    np.savez_compressed(cache_file, **payload)
    prepared_trace.cache_clear()

    calls = common.GENERATION_CALLS
    prepared_trace(**SCALE, cache_dir=tmp_path)
    assert common.GENERATION_CALLS == calls + 1


def test_memoization_returns_same_object(tmp_path):
    first = prepared_trace(**SCALE, cache_dir=tmp_path)
    assert prepared_trace(**SCALE, cache_dir=tmp_path) is first


def test_mobile_records_precomputed():
    trace = prepared_trace(**SCALE)
    # A field now, not a rebuilt-per-access property.
    assert isinstance(trace.mobile_records, tuple)
    assert trace.mobile_records is trace.mobile_records
    assert trace.mobile_records == tuple(
        r for r in trace.records if r.is_mobile
    )


def test_cache_file_is_uncompressed_and_memory_mappable(tmp_path):
    """The cache is written with stored (not deflated) members so warm
    loads can map the columns in place; `load_npz` must actually map
    them."""
    from repro.logs.npz import load_npz

    prepared_trace(**SCALE, cache_dir=tmp_path)
    [cache_file] = tmp_path.iterdir()
    data = load_npz(cache_file, mmap=True)
    for name in ("timestamp", "user_id", "volume", "prepared_mobile_session"):
        assert isinstance(data[name], np.memmap), name
        assert not data[name].flags.writeable, name
    with np.load(cache_file, allow_pickle=False) as reference:
        for name in reference.files:
            assert np.array_equal(
                np.asarray(data[name]), reference[name]
            ), name


def _rss_probe(setup: str, script: str, tmp_path) -> float:
    """Run ``script`` in a subprocess after ``setup`` (imports, etc.);
    return the anonymous-RSS growth in MB across ``script`` alone."""
    import subprocess
    import sys

    out = tmp_path / "rss.txt"
    code = (
        "import os\n"
        "def anon_mb():\n"
        "    with open('/proc/self/status') as fh:\n"
        "        for line in fh:\n"
        "            if line.startswith('RssAnon:'):\n"
        "                return int(line.split()[1]) / 1024\n"
        "    return 0.0\n"
        + setup + "\n"
        "before = anon_mb()\n" + script + "\n"
        "after = anon_mb()\n"
        f"open({str(out)!r}, 'w').write(str(after - before))\n"
    )
    subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=REPO_ROOT,
    )
    return float(out.read_text())


def test_warm_mmap_load_bounds_rss(tmp_path):
    """Cold/warm memory contract of the loader the warm path uses: a
    memory-mapped `load_npz` of a large stored NPZ allocates almost no
    anonymous pages, while a full read materializes the whole file."""
    if not os.path.exists("/proc/self/status"):  # pragma: no cover
        pytest.skip("anonymous-RSS probe needs /proc")
    big = tmp_path / "big.npz"
    payload_mb = 64
    np.savez(
        big, data=np.zeros(payload_mb * 1024 * 1024 // 8, dtype=np.float64)
    )

    warm = _rss_probe(
        "from repro.logs.npz import load_npz",
        f"data = load_npz({str(big)!r}, mmap=True)\n"
        "assert data['data'].shape[0] > 0\n",
        tmp_path,
    )
    cold = _rss_probe(
        "import numpy as np",
        f"with np.load({str(big)!r}, allow_pickle=False) as data:\n"
        "    arr = np.array(data['data'])\n"
        "assert arr.shape[0] > 0\n",
        tmp_path,
    )
    assert cold >= payload_mb * 0.9, f"control read materialized only {cold} MB"
    assert warm <= payload_mb * 0.25, (
        f"mmap load allocated {warm} MB anonymous RSS for a "
        f"{payload_mb} MB stored member"
    )
