"""Tests for the Kolmogorov-Smirnov implementation."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.ks import kolmogorov_sf, ks_one_sample, ks_two_sample


class TestKolmogorovSf:
    @pytest.mark.parametrize("x", [0.3, 0.5, 0.8, 1.0, 1.36, 2.0])
    def test_matches_scipy(self, x):
        assert kolmogorov_sf(x) == pytest.approx(
            float(scipy_stats.kstwobign.sf(x)), abs=1e-8
        )

    def test_boundaries(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-1.0) == 1.0
        assert kolmogorov_sf(5.0) < 1e-10


class TestOneSample:
    def exponential_cdf(self, mu):
        return lambda x: 1.0 - np.exp(-np.clip(x, 0.0, None) / mu)

    def test_accepts_true_model(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(2.0, 2000)
        result = ks_one_sample(data, self.exponential_cdf(2.0))
        assert result.passes(0.05)

    def test_rejects_wrong_model(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(2.0, 2000)
        result = ks_one_sample(data, self.exponential_cdf(4.0))
        assert not result.passes(0.05)

    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(1.0, 500)
        ours = ks_one_sample(data, self.exponential_cdf(1.0))
        reference = scipy_stats.kstest(data, lambda x: 1 - np.exp(-x))
        assert ours.statistic == pytest.approx(reference.statistic, abs=1e-12)
        assert ours.p_value == pytest.approx(reference.pvalue, abs=0.02)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            ks_one_sample(np.array([1.0, 2.0]), self.exponential_cdf(1.0))

    def test_invalid_cdf_rejected(self):
        with pytest.raises(ValueError):
            ks_one_sample(np.ones(10), lambda x: x * 100.0)


class TestTwoSample:
    def test_same_distribution_accepted(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 800)
        b = rng.normal(0, 1, 900)
        assert ks_two_sample(a, b).passes(0.05)

    def test_shifted_distribution_rejected(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 800)
        b = rng.normal(0.5, 1, 900)
        assert not ks_two_sample(a, b).passes(0.05)

    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(3)
        a = rng.exponential(1.0, 300)
        b = rng.exponential(1.3, 400)
        ours = ks_two_sample(a, b)
        reference = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(reference.statistic, abs=1e-12)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.ones(3), np.ones(10))


class TestOnRecoveredModels:
    def test_table2_fit_passes_ks(self):
        """The recovered Table 2 mixture survives a KS test against the
        data it was fit on."""
        from repro.stats import fit_exponential_mixture

        rng = np.random.default_rng(4)
        data = np.concatenate([
            rng.exponential(1.5, 9100),
            rng.exponential(13.1, 700),
            rng.exponential(77.4, 200),
        ])
        fit = fit_exponential_mixture(data, 3)
        result = ks_one_sample(data, lambda x: 1.0 - fit.ccdf(x))
        assert result.passes(0.01)
