"""Tests for the congestion control state machine."""

import pytest

from repro.tcpsim import CongestionControl


def cc(**kwargs):
    return CongestionControl(mss=1000, initial_window_segments=3, **kwargs)


class TestInitialState:
    def test_initial_window(self):
        control = cc()
        assert control.cwnd == 3000
        assert control.initial_window == 3000
        assert control.in_slow_start

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionControl(mss=0)
        with pytest.raises(ValueError):
            CongestionControl(initial_window_segments=0)


class TestSlowStart:
    def test_exponential_growth(self):
        control = cc()
        control.on_ack(3000)
        assert control.cwnd == 6000

    def test_growth_capped_at_ssthresh(self):
        control = cc()
        control.ssthresh = 5000
        control.on_ack(3000)
        assert control.cwnd == 5000
        assert not control.in_slow_start

    def test_zero_ack_no_growth(self):
        control = cc()
        control.on_ack(0)
        assert control.cwnd == 3000

    def test_negative_ack_rejected(self):
        with pytest.raises(ValueError):
            cc().on_ack(-1)


class TestCongestionAvoidance:
    def test_linear_growth_per_window(self):
        control = cc()
        control.ssthresh = 3000  # start in CA
        control.cwnd = 3000
        before = control.cwnd
        # One full window of ACKs should add roughly one MSS.
        control.on_ack(3000)
        assert before < control.cwnd <= before + 2 * control.mss


class TestLossReactions:
    def test_fast_retransmit_halves(self):
        control = cc()
        control.cwnd = 20000
        control.on_fast_retransmit(flight_size=20000)
        assert control.ssthresh == 10000
        assert control.cwnd == 10000

    def test_fast_retransmit_floor(self):
        control = cc()
        control.on_fast_retransmit(flight_size=1000)
        assert control.ssthresh == 2 * control.mss

    def test_timeout_collapses_to_one_mss(self):
        control = cc()
        control.cwnd = 20000
        control.on_timeout(flight_size=20000)
        assert control.cwnd == control.mss
        assert control.ssthresh == 10000
        assert control.in_slow_start


class TestSlowStartAfterIdle:
    def test_restart_fires_when_idle_exceeds_rto(self):
        control = cc()
        control.cwnd = 64000
        fired = control.maybe_restart_after_idle(idle_time=1.0, rto=0.3)
        assert fired
        assert control.cwnd == control.initial_window
        assert control.slow_start_restarts == 1

    def test_no_restart_within_rto(self):
        control = cc()
        control.cwnd = 64000
        assert not control.maybe_restart_after_idle(idle_time=0.2, rto=0.3)
        assert control.cwnd == 64000

    def test_restart_never_raises_window(self):
        control = cc()
        control.cwnd = 1000  # below IW after a timeout
        control.maybe_restart_after_idle(idle_time=1.0, rto=0.3)
        assert control.cwnd == 1000

    def test_disabled_by_option(self):
        control = cc(slow_start_after_idle=False)
        control.cwnd = 64000
        assert not control.maybe_restart_after_idle(idle_time=10.0, rto=0.3)
        assert control.cwnd == 64000
        assert control.slow_start_restarts == 0

    def test_restart_counter_accumulates(self):
        control = cc()
        for _ in range(5):
            control.cwnd = 64000
            control.maybe_restart_after_idle(idle_time=1.0, rto=0.3)
        assert control.slow_start_restarts == 5
