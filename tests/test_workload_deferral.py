"""Tests for the upload-deferral policy."""

import numpy as np
import pytest

from repro.logs import DeviceType, Direction, LogRecord, RequestKind
from repro.workload import (
    DeferralPolicy,
    LoadSummary,
    evaluate_deferral,
    folded_load,
    hourly_load,
)

HOUR = 3600.0


def chunk(ts, direction=Direction.STORE, volume=1000):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id="d",
        user_id=1,
        kind=RequestKind.CHUNK,
        direction=direction,
        volume=volume,
    )


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeferralPolicy(peak_hours=())
        with pytest.raises(ValueError):
            DeferralPolicy(peak_hours=(25,))
        with pytest.raises(ValueError):
            DeferralPolicy(target_hour=24)
        with pytest.raises(ValueError):
            DeferralPolicy(window_hours=0)
        with pytest.raises(ValueError):
            DeferralPolicy(defer_fraction=1.5)


class TestApply:
    def test_peak_store_chunks_moved_to_next_morning(self):
        policy = DeferralPolicy(
            peak_hours=(22,), target_hour=4, window_hours=1.0,
            defer_fraction=1.0,
        )
        record = chunk(ts=22.5 * HOUR)
        (moved,) = list(policy.apply([record]))
        assert 86_400 + 4 * HOUR <= moved.timestamp < 86_400 + 5 * HOUR

    def test_off_peak_records_untouched(self):
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=1.0)
        record = chunk(ts=10 * HOUR)
        (out,) = list(policy.apply([record]))
        assert out.timestamp == record.timestamp

    def test_retrievals_never_deferred(self):
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=1.0)
        record = chunk(ts=22.5 * HOUR, direction=Direction.RETRIEVE)
        (out,) = list(policy.apply([record]))
        assert out.timestamp == record.timestamp

    def test_file_ops_never_deferred(self):
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=1.0)
        record = LogRecord(
            timestamp=22.5 * HOUR,
            device_type=DeviceType.ANDROID,
            device_id="d",
            user_id=1,
            kind=RequestKind.FILE_OP,
            direction=Direction.STORE,
        )
        (out,) = list(policy.apply([record]))
        assert out.timestamp == record.timestamp

    def test_defer_fraction_zero_is_identity(self):
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=0.0)
        records = [chunk(ts=22.5 * HOUR) for _ in range(50)]
        out = list(policy.apply(records))
        assert all(o.timestamp == r.timestamp for o, r in zip(out, records))

    def test_partial_fraction(self):
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=0.5)
        records = [chunk(ts=22.5 * HOUR) for _ in range(2000)]
        moved = sum(
            1
            for out, orig in zip(policy.apply(records, seed=1), records)
            if out.timestamp != orig.timestamp
        )
        assert moved / 2000 == pytest.approx(0.5, abs=0.05)


class TestLoadSummaries:
    def test_hourly_load_bins(self):
        records = [chunk(ts=0.0, volume=10), chunk(ts=HOUR + 1, volume=30)]
        load = hourly_load(records)
        assert load.hourly_bytes[0] == 10
        assert load.hourly_bytes[1] == 30
        assert load.peak == 30
        assert load.peak_to_mean == pytest.approx(30 / 20)

    def test_folded_load_wraps_days(self):
        records = [chunk(ts=5 * HOUR, volume=10),
                   chunk(ts=86_400 + 5 * HOUR, volume=20)]
        load = folded_load(records)
        assert load.hourly_bytes[5] == 30

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            hourly_load([])
        with pytest.raises(ValueError):
            folded_load([])

    def test_peak_to_mean_of_flat_profile(self):
        load = LoadSummary(hourly_bytes=np.full(24, 7.0))
        assert load.peak_to_mean == pytest.approx(1.0)


class TestEvaluate:
    def test_volume_conserved(self):
        rng = np.random.default_rng(0)
        records = [
            chunk(ts=float(rng.uniform(0, 7 * 86_400)), volume=100)
            for _ in range(3000)
        ]
        before, after = evaluate_deferral(records, DeferralPolicy(), seed=1)
        assert before.hourly_bytes.sum() == pytest.approx(
            after.hourly_bytes.sum()
        )

    def test_concentrated_peak_is_flattened(self):
        # Everything lands at 22:00 each day; deferral must cut that peak.
        records = [
            chunk(ts=day * 86_400 + 22 * HOUR + i, volume=100)
            for day in range(7)
            for i in range(100)
        ]
        policy = DeferralPolicy(peak_hours=(22,), defer_fraction=0.8)
        before, after = evaluate_deferral(records, policy, seed=2)
        assert after.peak < before.peak
        assert after.peak_to_mean < before.peak_to_mean
