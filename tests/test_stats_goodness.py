"""Tests for the chi-square goodness-of-fit machinery."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import chi2_sf, chi_square_gof, regularized_gamma_p


class TestIncompleteGamma:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 10.0, 50.0])
    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, 5.0, 30.0, 100.0])
    def test_matches_scipy(self, a, x):
        ours = regularized_gamma_p(a, x)
        reference = float(scipy_stats.gamma.cdf(x, a))
        assert ours == pytest.approx(reference, abs=1e-10)

    def test_boundaries(self):
        assert regularized_gamma_p(1.0, 0.0) == 0.0
        assert regularized_gamma_p(1.0, 1e6) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            regularized_gamma_p(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_p(1.0, -1.0)


class TestChi2Sf:
    @pytest.mark.parametrize("dof", [1, 3, 10, 30])
    @pytest.mark.parametrize("stat", [0.5, 2.0, 10.0, 50.0])
    def test_matches_scipy(self, dof, stat):
        assert chi2_sf(stat, dof) == pytest.approx(
            float(scipy_stats.chi2.sf(stat, dof)), abs=1e-10
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)
        with pytest.raises(ValueError):
            chi2_sf(-1.0, 1)


class TestGoodnessOfFit:
    def exponential_cdf(self, mu):
        return lambda x: 1.0 - np.exp(-np.clip(x, 0.0, None) / mu)

    def test_accepts_correct_model(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(2.0, 5000)
        result = chi_square_gof(data, self.exponential_cdf(2.0),
                                n_fitted_params=1)
        assert result.passes(0.05)

    def test_rejects_wrong_model(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(2.0, 5000)
        result = chi_square_gof(data, self.exponential_cdf(5.0),
                                n_fitted_params=1)
        assert not result.passes(0.05)

    def test_dof_reduced_by_fitted_params(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(2.0, 500)
        r0 = chi_square_gof(data, self.exponential_cdf(2.0))
        r2 = chi_square_gof(data, self.exponential_cdf(2.0), n_fitted_params=2)
        assert r2.dof == r0.dof - 2

    def test_sparse_bins_merged(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(1.0, 200)
        result = chi_square_gof(data, self.exponential_cdf(1.0), n_bins=100)
        assert result.n_bins < 100

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            chi_square_gof(np.array([1.0] * 5), self.exponential_cdf(1.0))

    def test_custom_edges(self):
        rng = np.random.default_rng(2)
        data = rng.exponential(1.0, 2000)
        result = chi_square_gof(
            data,
            self.exponential_cdf(1.0),
            edges=np.linspace(0.0, 8.0, 20),
        )
        assert result.p_value > 0.01
