"""Tests for the paper-scale streaming pipeline.

Three layers, matching the tentpole's structure:

* the bounded-RAM k-way merge (`merge_columnar_sorted`) — a Hypothesis
  property pins it byte-identical to
  ``ColumnarTrace.concatenate(...).sorted_by_user_time()`` across shard
  counts, block sizes (including ``block_rows=1`` and blocks larger than
  the whole trace) and empty shards;
* the one-pass folds (`repro.core.streaming`) — the streaming report
  must equal the whole-trace in-memory engine bit for bit, at every
  block size, including the exact interval values;
* the end-to-end sharded generator (`generate_columnar_sharded`) — the
  merged part stream reproduces `generate_columnar_parallel` byte for
  byte and analyzes to the same digest, for any shard/worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sessions import (
    file_operation_intervals_columnar,
    sessionize_columnar,
)
from repro.core.streaming import (
    DEFAULT_INTERVAL_EDGES,
    StreamingAnalyzer,
    analyze_stream,
    report_from_columnar,
)
from repro.core.usage import profile_users_columnar
from repro.logs.columnar import (
    ColumnarTrace,
    iter_columnar_blocks,
    merge_columnar_sorted,
)
from repro.workload.generator import GeneratorOptions, generate_trace
from repro.workload.parallel import (
    generate_columnar_parallel,
    generate_columnar_sharded,
    generate_sharded,
)
from tests.test_columnar_parts import assert_traces_equal
from tests.test_logs_columnar import valid_record

OPTIONS = GeneratorOptions(max_chunks_per_file=3)


def generated_trace(n_users=40, n_pc=8, seed=11):
    return ColumnarTrace.from_records(
        generate_trace(n_users, n_pc_only_users=n_pc, options=OPTIONS, seed=seed)
    ).sorted_by_user_time()


def collect(blocks) -> ColumnarTrace:
    return ColumnarTrace.concatenate(list(blocks))


def rows(trace: ColumnarTrace, start: int, stop: int | None = None) -> ColumnarTrace:
    stop = len(trace) if stop is None else stop
    return trace.select(np.arange(start, stop))


# ----------------------------------------------------------------------
# The k-way merge
# ----------------------------------------------------------------------


@given(
    shards=st.lists(
        st.lists(valid_record(), max_size=25), min_size=1, max_size=5
    ),
    block_rows=st.sampled_from([1, 2, 3, 7, 1 << 20]),
)
@settings(max_examples=80, deadline=None)
def test_merge_matches_concatenate_property(shards, block_rows):
    """The satellite property: block-streamed merge output is
    byte-identical to ``concatenate(...).sorted_by_user_time()`` for any
    shard count, any block size (1 and > n included), empty shards too.
    """
    sources = [
        ColumnarTrace.from_records(records).sorted_by_user_time()
        for records in shards
    ]
    merged = collect(merge_columnar_sorted(sources, block_rows=block_rows))
    expected = ColumnarTrace.concatenate(sources).sorted_by_user_time()
    assert_traces_equal(merged, expected)


def test_merge_block_sizes_and_shard_counts():
    trace = generated_trace()
    thirds = len(trace) // 3
    for sources in (
        [trace],
        [
            rows(trace, 0, thirds),
            rows(trace, thirds, 2 * thirds),
            rows(trace, 2 * thirds),
        ],
        [trace, ColumnarTrace.empty(), rows(trace, 0, 7)],
    ):
        sources = [s.sorted_by_user_time() for s in sources]
        expected = ColumnarTrace.concatenate(sources).sorted_by_user_time()
        for block_rows in (1, 7, 100, 1 << 20):
            merged = collect(
                merge_columnar_sorted(sources, block_rows=block_rows)
            )
            assert_traces_equal(merged, expected)


def test_merge_time_order():
    trace = generated_trace()
    half = len(trace) // 2
    sources = [
        rows(trace, 0, half).sorted_by_time(),
        rows(trace, half).sorted_by_time(),
    ]
    merged = collect(
        merge_columnar_sorted(sources, block_rows=13, order="time")
    )
    assert_traces_equal(
        merged, ColumnarTrace.concatenate(sources).sorted_by_time()
    )


def test_merge_block_bound_respected():
    trace = generated_trace()
    half = len(trace) // 2
    sources = [
        rows(trace, 0, half).sorted_by_user_time(),
        rows(trace, half).sorted_by_user_time(),
    ]
    for block in merge_columnar_sorted(sources, block_rows=16):
        # Each emitted block gathers at most one block_rows-sized window
        # cut per source — the O(block_rows x shards) memory bound.
        assert len(block) <= 16 * len(sources)


def test_merge_of_nothing():
    assert collect(merge_columnar_sorted([])).device_pool == ()
    assert len(collect(merge_columnar_sorted([ColumnarTrace.empty()]))) == 0


def test_iter_columnar_blocks_roundtrip():
    trace = generated_trace()
    for block_rows in (1, 7, len(trace), len(trace) + 99):
        blocks = list(iter_columnar_blocks(trace, block_rows=block_rows))
        assert all(len(b) <= block_rows for b in blocks)
        assert_traces_equal(collect(blocks), trace)


# ----------------------------------------------------------------------
# Streaming folds vs the in-memory engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("block_rows", [1, 5, 37, 911, 1 << 20])
def test_streaming_report_equals_in_memory(block_rows):
    trace = generated_trace()
    streamed = analyze_stream(
        iter_columnar_blocks(trace, block_rows=block_rows),
        keep_intervals=True,
    )
    reference = report_from_columnar(trace, keep_intervals=True)
    assert streamed.digest() == reference.digest()

    # The digest covers every array; also check the exact interval values
    # (not digested — the histogram counts are) and the profile bridge.
    assert np.allclose(
        np.sort(streamed.intervals.values), np.sort(reference.intervals.values)
    )
    mobile = trace.select(trace.mobile_mask)
    expected_intervals = file_operation_intervals_columnar(mobile)
    assert len(streamed.intervals.values) == len(expected_intervals)
    assert np.allclose(
        np.sort(streamed.intervals.values), np.sort(expected_intervals)
    )
    assert streamed.users.to_profiles() == profile_users_columnar(trace)


def test_streaming_sessions_match_sessionize_columnar():
    trace = generated_trace(seed=23)
    mobile = trace.select(trace.mobile_mask)
    want = sessionize_columnar(mobile)
    got = analyze_stream(iter_columnar_blocks(trace, block_rows=41)).sessions
    for field in (
        "user_id", "start", "end", "first_op", "last_op",
        "n_store_ops", "n_retrieve_ops", "store_volume", "retrieve_volume",
    ):
        assert np.array_equal(
            np.asarray(getattr(got, field)), np.asarray(getattr(want, field))
        ), field
    assert got.classify() == want.classify()


def test_streaming_tau_is_honoured():
    trace = generated_trace(seed=5)
    for tau in (60.0, 600.0):
        streamed = analyze_stream(
            iter_columnar_blocks(trace, block_rows=17), tau=tau
        )
        reference = report_from_columnar(trace, tau=tau)
        assert streamed.digest() == reference.digest()
    assert (
        analyze_stream(iter_columnar_blocks(trace, 17), tau=60.0).digest()
        != analyze_stream(iter_columnar_blocks(trace, 17), tau=600.0).digest()
    )


def test_streaming_empty_stream():
    report = analyze_stream(iter(()))
    assert report.n_records == 0
    assert report.sessions.n_sessions == 0
    assert report.users.n_users == 0
    assert report.intervals.n_intervals == 0
    assert report.digest() == report_from_columnar(ColumnarTrace.empty()).digest()


def test_streaming_interval_edges_shape():
    report = analyze_stream(iter_columnar_blocks(generated_trace(), 50))
    assert np.array_equal(report.intervals.edges, DEFAULT_INTERVAL_EDGES)
    assert len(report.intervals.counts) == len(DEFAULT_INTERVAL_EDGES) - 1
    assert report.intervals.counts.sum() == report.intervals.n_intervals
    assert report.intervals.values is None  # not kept at scale


@given(records=st.lists(valid_record(), max_size=40))
@settings(max_examples=60, deadline=None)
def test_streaming_digest_property(records):
    """Any schema-valid trace: stream == in-memory, at a small block."""
    trace = ColumnarTrace.from_records(records).sorted_by_user_time()
    streamed = analyze_stream(iter_columnar_blocks(trace, block_rows=3))
    assert streamed.digest() == report_from_columnar(trace).digest()


# ----------------------------------------------------------------------
# End to end: the sharded generator
# ----------------------------------------------------------------------


def test_sharded_stream_reproduces_parallel_trace(tmp_path):
    kwargs = dict(n_pc_only_users=6, options=OPTIONS, seed=3)
    reference_records = None
    for n_shards in (1, 3):
        # Byte identity (device pool included) holds against the
        # same-shard-count in-memory path; across shard counts the pool
        # ordering legitimately differs, so compare decoded records.
        reference = generate_columnar_parallel(
            30, n_shards=n_shards, n_workers=1, **kwargs
        )
        sharded = generate_columnar_sharded(
            30,
            n_shards=n_shards,
            n_workers=1,
            part_dir=tmp_path / f"s{n_shards}",
            **kwargs,
        )
        assert sharded.n_records == len(reference)
        assert len(sharded.paths) == n_shards
        merged = collect(sharded.merged_blocks(block_rows=64))
        assert_traces_equal(merged, reference)
        if reference_records is None:
            reference_records = merged.to_records()
        else:
            assert merged.to_records() == reference_records


def test_sharded_digest_invariant_across_workers(tmp_path):
    kwargs = dict(n_pc_only_users=6, options=OPTIONS, seed=3)
    digests = set()
    for n_workers, label in ((1, "w1"), (2, "w2")):
        sharded = generate_columnar_sharded(
            30,
            n_shards=2,
            n_workers=n_workers,
            part_dir=tmp_path / label,
            **kwargs,
        )
        digests.add(
            analyze_stream(sharded.merged_blocks(block_rows=128)).digest()
        )
    reference = generate_columnar_parallel(30, n_shards=2, n_workers=1, **kwargs)
    digests.add(report_from_columnar(reference).digest())
    assert len(digests) == 1


def test_sharded_batch_records_do_not_change_output(tmp_path):
    kwargs = dict(n_pc_only_users=4, options=OPTIONS, seed=9)
    merged = {}
    for batch_records in (32, 1 << 16):
        sharded = generate_columnar_sharded(
            20,
            n_shards=2,
            n_workers=1,
            part_dir=tmp_path / f"b{batch_records}",
            batch_records=batch_records,
            **kwargs,
        )
        merged[batch_records] = collect(sharded.merged_blocks())
    assert_traces_equal(merged[32], merged[1 << 16])


def test_streaming_analyzer_incremental_feed(tmp_path):
    """Feeding merged blocks one by one equals the one-shot helper."""
    sharded = generate_columnar_sharded(
        24,
        n_pc_only_users=4,
        options=OPTIONS,
        seed=17,
        n_shards=3,
        n_workers=1,
        part_dir=tmp_path / "parts",
    )
    analyzer = StreamingAnalyzer()
    for block in sharded.merged_blocks(block_rows=97):
        analyzer.feed(block)
    report = analyzer.finalize()
    assert report.n_records == sharded.n_records
    reference = report_from_columnar(
        ColumnarTrace.concatenate(sharded.open_parts()).sorted_by_user_time()
    )
    assert report.digest() == reference.digest()


def test_shard_part_columnar_reader(tmp_path):
    """`ShardPart.columnar()` bulk-parses a text part to the same trace."""
    sharded = generate_sharded(
        16,
        n_pc_only_users=4,
        options=OPTIONS,
        seed=2,
        n_shards=2,
        n_workers=1,
        part_dir=tmp_path,
        part_format="tsv",
    )
    for part in sharded.parts:
        bulk = part.columnar()
        via_records = ColumnarTrace.from_records(list(part))
        assert bulk.to_records() == via_records.to_records()


def test_shard_part_columnar_reader_in_memory():
    sharded = generate_sharded(
        10, n_pc_only_users=2, options=OPTIONS, seed=2, n_shards=2, n_workers=1
    )
    for part in sharded.parts:
        assert part.path is None
        assert part.columnar().to_records() == list(part)
