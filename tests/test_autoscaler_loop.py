"""Tests for the chaos-coupled autoscaling loop.

The closed-form strategies are covered by ``test_service_autoscaler``;
this file exercises the live path: fleet controllers fed by window
telemetry, the shared fault plan threaded through resized clusters, and
the determinism/reconciliation contracts the R6 experiment rests on.
"""

import json

import pytest

from repro.faults import FaultConfig, FaultPlan, FaultStats, ZoneConfig
from repro.service.autoscaler import (
    AutoscalerPolicy,
    FaultAwareController,
    WindowSignals,
    diurnal_autoscale_workload,
    make_controller,
    run_autoscaled_service,
)
from repro.service.cluster import ServiceCluster

POLICY = AutoscalerPolicy(
    capacity_per_server=4.0,
    headroom=1.15,
    scale_down_cooldown=2,
    min_servers=2,
    max_servers=16,
    down_alert=0.05,
)

CHAOS = FaultConfig(
    error_rate=0.01,
    crash_rate=0.5,
    crash_mean_downtime=60.0,
    horizon=8 * 60.0,
    zones=ZoneConfig(
        n_zones=2,
        zone_crash_rate=2.0,
        zone_mean_downtime=120.0,
        overload_factor=0.5,
        overload_recovery=60.0,
        pressure_per_failure=0.5,
        pressure_drain_rate=0.5,
        pressure_shed_scale=8.0,
    ),
)


def small_workload(n_windows=8, seed=1):
    return diurnal_autoscale_workload(
        n_windows, peak_ops=16, n_users=8, mean_size=1.5e6, seed=seed
    )


class TestWorkload:
    def test_deterministic(self):
        a = small_workload()
        b = small_workload()
        assert a.windows == b.windows
        assert a.loads == b.loads

    def test_extending_the_horizon_preserves_prefix(self):
        short = small_workload(n_windows=4)
        long = small_workload(n_windows=8)
        # One SeedSequence child per window: extending the horizon can
        # never reshuffle the windows that were already scheduled.
        assert long.windows[:4] == short.windows

    def test_arrivals_live_inside_their_window(self):
        wl = small_workload()
        for w, ops in enumerate(wl.windows):
            for op in ops:
                assert w * wl.window_seconds <= op.arrival
                assert op.arrival < (w + 1) * wl.window_seconds

    def test_diurnal_shape_peaks(self):
        wl = diurnal_autoscale_workload(24, peak_ops=50, seed=0)
        assert max(wl.loads) == 50.0
        assert min(wl.loads) < max(wl.loads)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_autoscale_workload(0)
        with pytest.raises(ValueError):
            diurnal_autoscale_workload(4, burst_fraction=0.0)
        with pytest.raises(ValueError):
            diurnal_autoscale_workload(4, mean_size=-1.0)


class TestControllers:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_controller("thermostat", POLICY, (1.0, 2.0))

    def test_static_holds_the_peak_fleet(self):
        loads = (4.0, 40.0, 8.0)
        controller = make_controller("static", POLICY, loads)
        fleets = [controller.decide(w) for w in range(3)]
        assert fleets == [fleets[0]] * 3
        assert fleets[0] >= 10  # ceil(40 / 4.0)

    def test_oracle_tracks_the_plan_exactly(self):
        loads = (4.0, 40.0, 8.0)
        controller = make_controller("oracle", POLICY, loads)
        assert [controller.decide(w) for w in range(3)] == [2, 10, 2]

    def test_fault_aware_holds_during_hot_windows(self):
        controller = FaultAwareController(POLICY, (40.0, 4.0, 4.0))
        fleet0 = controller.decide(0)
        controller.observe(
            WindowSignals(window=0, load=40.0, shed_rate=0.2,
                          failure_rate=0.1, down_fraction=0.3,
                          pressure_sheds=3, retries=9)
        )
        # Load collapsed, but the last window was on fire: never scale
        # into the trough.
        assert controller.decide(1) >= fleet0

    def test_fault_aware_drains_after_quiet_window(self):
        policy = AutoscalerPolicy(
            capacity_per_server=4.0, headroom=1.0, scale_down_cooldown=3,
            min_servers=1, max_servers=16, quiet_cooldown=0,
        )
        controller = FaultAwareController(policy, (40.0, 4.0, 4.0))
        controller.decide(0)
        controller.observe(
            WindowSignals(window=0, load=40.0, shed_rate=0.0,
                          failure_rate=0.0, down_fraction=0.0,
                          pressure_sheds=0, retries=0)
        )
        assert controller.decide(1) == 10  # still following load 40
        controller.observe(
            WindowSignals(window=1, load=4.0, shed_rate=0.0,
                          failure_rate=0.0, down_fraction=0.0,
                          pressure_sheds=0, retries=0)
        )
        # Quiet window: the quiet cooldown (0) applies, not the regular
        # scale-down cooldown (3) -- the drop to 1 server is immediate.
        assert controller.decide(2) == 1

    def test_quiet_signal_definition(self):
        quiet = WindowSignals(window=0, load=1.0, shed_rate=0.0,
                              failure_rate=0.0, down_fraction=0.01,
                              pressure_sheds=0, retries=2)
        hot = WindowSignals(window=0, load=1.0, shed_rate=0.0,
                            failure_rate=0.0, down_fraction=0.01,
                            pressure_sheds=1, retries=2)
        assert quiet.quiet(POLICY)
        assert not hot.quiet(POLICY)


class TestFaultStatsLedger:
    def test_copy_is_independent(self):
        stats = FaultStats()
        stats.retries = 3
        snap = stats.copy()
        stats.retries = 7
        assert snap.retries == 3

    def test_delta_is_fieldwise(self):
        before = FaultStats()
        before.retries = 2
        before.shed_requests = 1
        after = FaultStats()
        after.retries = 5
        after.shed_requests = 4
        after.timeouts = 1
        delta = after.delta(before)
        assert delta.retries == 3
        assert delta.shed_requests == 3
        assert delta.timeouts == 1


class TestSharedFaultPlan:
    def test_mutually_exclusive_with_faults(self):
        plan = FaultPlan(CHAOS, n_frontends=8, seed=0)
        with pytest.raises(ValueError, match="not both"):
            ServiceCluster(n_frontends=4, faults=CHAOS,
                           shared_fault_plan=plan)

    def test_plan_must_cover_the_fleet(self):
        plan = FaultPlan(CHAOS, n_frontends=2, seed=0)
        with pytest.raises(ValueError, match="covers 2 front-ends"):
            ServiceCluster(n_frontends=4, shared_fault_plan=plan)

    def test_metadata_shape_must_match(self):
        plan = FaultPlan(CHAOS, n_frontends=8, seed=0)
        with pytest.raises(ValueError, match="metadata-tier shape"):
            ServiceCluster(n_frontends=4, shared_fault_plan=plan,
                           metadata_shards=2, metadata_replicas=1)

    def test_resizing_never_changes_schedules(self):
        plan = FaultPlan(CHAOS, n_frontends=8, seed=0)
        windows = [tuple(plan.effective_crash_windows(f)) for f in range(8)]
        for n in (2, 5, 8):
            ServiceCluster(n_frontends=n, shared_fault_plan=plan,
                           frontend_capacity=4)
            assert [
                tuple(plan.effective_crash_windows(f)) for f in range(8)
            ] == windows

    def test_down_fraction_validation(self):
        plan = FaultPlan(CHAOS, n_frontends=4, seed=0)
        with pytest.raises(ValueError):
            plan.down_fraction(10.0, 10.0)
        with pytest.raises(ValueError):
            plan.down_fraction(0.0, 60.0, n_frontends=0)
        with pytest.raises(ValueError):
            plan.down_fraction(0.0, 60.0, n_frontends=5)
        assert 0.0 <= plan.down_fraction(0.0, 480.0) <= 1.0

    def test_fault_free_cluster_reports_zero_down(self):
        cluster = ServiceCluster(n_frontends=2)
        assert cluster.down_fraction(0.0, 60.0) == 0.0


class TestAutoscaledRun:
    def test_double_run_byte_identical(self):
        wl = small_workload()
        runs = [
            run_autoscaled_service(
                wl, POLICY, strategy="fault-aware", faults=CHAOS,
                fault_seed=3, frontend_capacity=3,
            )
            for _ in range(2)
        ]
        assert runs[0].log_digest == runs[1].log_digest
        assert runs[0].trajectory() == runs[1].trajectory()
        assert runs[0].trajectory_json() == runs[1].trajectory_json()

    @pytest.mark.parametrize("strategy", ["predictive", "reactive"])
    def test_new_policies_deterministic(self, strategy):
        wl = small_workload()
        a = run_autoscaled_service(wl, POLICY, strategy=strategy,
                                   faults=CHAOS, fault_seed=1)
        b = run_autoscaled_service(wl, POLICY, strategy=strategy,
                                   faults=CHAOS, fault_seed=1)
        assert a.trajectory() == b.trajectory()
        assert a.log_digest == b.log_digest

    def test_reconciles_every_window(self):
        wl = small_workload()
        run = run_autoscaled_service(wl, POLICY, strategy="fault-aware",
                                     faults=CHAOS, fault_seed=3,
                                     frontend_capacity=3)
        assert run.reconciled
        assert all(w.reconciled for w in run.windows)
        assert run.n_windows == wl.n_windows

    def test_fault_free_run_sheds_nothing(self):
        wl = small_workload(n_windows=4)
        run = run_autoscaled_service(wl, POLICY, strategy="reactive")
        assert run.violation_windows == 0
        assert run.aborted == 0
        assert run.stats.as_dict() == FaultStats().as_dict()

    def test_trajectory_respects_policy_bounds(self):
        wl = small_workload()
        run = run_autoscaled_service(wl, POLICY, strategy="fault-aware",
                                     faults=CHAOS, fault_seed=3)
        for fleet in run.trajectory():
            assert POLICY.min_servers <= fleet <= POLICY.max_servers

    def test_trajectory_json_round_trips(self):
        wl = small_workload(n_windows=4)
        run = run_autoscaled_service(wl, POLICY, strategy="oracle")
        doc = json.loads(run.trajectory_json())
        assert doc["strategy"] == "oracle"
        assert len(doc["windows"]) == 4
        assert doc["server_hours"] == run.server_hours
        assert doc["log_digest"] == run.log_digest

    def test_to_outcome_collapses_to_closed_form_shape(self):
        wl = small_workload(n_windows=4)
        run = run_autoscaled_service(wl, POLICY, strategy="static")
        outcome = run.to_outcome()
        assert outcome.strategy == "static"
        assert outcome.n_hours == 4
        assert outcome.trajectory == run.trajectory()

    def test_rejects_negative_slo(self):
        with pytest.raises(ValueError):
            run_autoscaled_service(small_workload(4), POLICY, slo_shed=-0.1)
