"""Tests for engagement and retrieval-return analysis (Figs 8, 9)."""

import pytest

from repro.core import engagement_curves, retrieval_return_curves
from repro.core.sessions import sessionize
from repro.core.usage import UserProfile
from repro.logs import DeviceType, Direction, LogRecord, RequestKind
from repro.workload import DeviceGroup, UserType

DAY = 86_400.0


def op(ts, user, direction=Direction.STORE):
    return LogRecord(
        timestamp=ts,
        device_type=DeviceType.ANDROID,
        device_id=f"d{user}",
        user_id=user,
        kind=RequestKind.FILE_OP,
        direction=direction,
    )


def profile(user, group=DeviceGroup.ONE_MOBILE):
    return UserProfile(
        user_id=user,
        user_type=UserType.UPLOAD_ONLY,
        group=group,
        stored_bytes=10**7,
        retrieved_bytes=0,
    )


class TestEngagement:
    def test_first_return_day_distribution(self):
        records = [
            # User 1: day 0 and day 1.
            op(0.0, 1), op(1 * DAY + 100, 1),
            # User 2: day 0 only.
            op(100.0, 2),
            # User 3: day 0 and first return day 3.
            op(200.0, 3), op(3 * DAY + 100, 3), op(5 * DAY, 3),
            # User 4: active day 2 only (not a day-0 user).
            op(2 * DAY + 100, 4),
        ]
        sessions = sessionize(records)
        profiles = [profile(u) for u in (1, 2, 3, 4)]
        (curve,) = engagement_curves(sessions, profiles)
        assert curve.group is DeviceGroup.ONE_MOBILE
        assert curve.n_first_day_users == 3
        assert curve.return_fractions[1] == pytest.approx(1 / 3)
        assert curve.return_fractions[3] == pytest.approx(1 / 3)
        assert curve.never_fraction == pytest.approx(1 / 3)

    def test_groups_separated(self):
        records = [op(0.0, 1), op(0.0, 2), op(1 * DAY, 2)]
        sessions = sessionize(records)
        profiles = [
            profile(1, DeviceGroup.ONE_MOBILE),
            profile(2, DeviceGroup.MULTI_MOBILE),
        ]
        curves = engagement_curves(sessions, profiles)
        by_group = {c.group: c for c in curves}
        assert by_group[DeviceGroup.ONE_MOBILE].never_fraction == 1.0
        assert by_group[DeviceGroup.MULTI_MOBILE].never_fraction == 0.0


class TestRetrievalReturn:
    def test_same_day_retrieval_counts_as_day_zero(self):
        records = [
            op(100.0, 1, Direction.STORE),
            op(5000.0, 1, Direction.RETRIEVE),
        ]
        sessions = sessionize(records)
        (curve,) = retrieval_return_curves(sessions, [profile(1)])
        assert curve.per_day[0] == pytest.approx(1.0)
        assert curve.never_fraction == 0.0

    def test_retrieval_before_upload_ignored(self):
        records = [
            op(100.0, 1, Direction.RETRIEVE),
            op(5000.0, 1, Direction.STORE),
        ]
        sessions = sessionize(records)
        (curve,) = retrieval_return_curves(sessions, [profile(1)])
        assert curve.never_fraction == 1.0

    def test_later_day_retrieval(self):
        records = [
            op(100.0, 1, Direction.STORE),
            op(2 * DAY + 100, 1, Direction.RETRIEVE),
        ]
        sessions = sessionize(records)
        (curve,) = retrieval_return_curves(sessions, [profile(1)])
        assert curve.per_day[2] == pytest.approx(1.0)
        assert curve.cumulative(1) == 0.0
        assert curve.cumulative(2) == pytest.approx(1.0)

    def test_non_day_zero_uploaders_excluded(self):
        records = [op(3 * DAY, 1, Direction.STORE)]
        sessions = sessionize(records)
        curves = retrieval_return_curves(sessions, [profile(1)])
        assert curves == []

    def test_mixed_session_counts_as_both(self):
        # One session containing a store and a retrieve op: the retrieval
        # is available immediately (upper-bound semantics).
        records = [
            op(100.0, 1, Direction.STORE),
            op(110.0, 1, Direction.RETRIEVE),
        ]
        sessions = sessionize(records)
        (curve,) = retrieval_return_curves(sessions, [profile(1)])
        assert curve.per_day[0] == pytest.approx(1.0)
