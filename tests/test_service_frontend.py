"""Tests for front-end servers and the closed-form transfer model."""

import numpy as np
import pytest

from repro.logs import DeviceType, Direction, RequestKind
from repro.service import FrontendServer, TransferModel


class TestTransferModel:
    def test_window_limited_upload(self):
        model = TransferModel(server_rwnd=64 * 1024)
        # 64 KB / 0.1 s = 640 KB/s window rate, below the 10 MB/s path.
        t = model.transfer_time(
            640 * 1024, rtt=0.1, bandwidth=10_000_000.0,
            direction=Direction.STORE,
        )
        assert t == pytest.approx(1.0)

    def test_bandwidth_limited_upload(self):
        model = TransferModel()
        t = model.transfer_time(
            100_000, rtt=0.1, bandwidth=50_000.0, direction=Direction.STORE
        )
        assert t == pytest.approx(2.0)

    def test_download_uses_client_window(self):
        model = TransferModel(client_rwnd=2 * 1024 * 1024)
        up = model.transfer_time(
            1_000_000, rtt=0.1, bandwidth=1e9, direction=Direction.STORE
        )
        down = model.transfer_time(
            1_000_000, rtt=0.1, bandwidth=1e9, direction=Direction.RETRIEVE
        )
        assert down < up

    def test_restart_penalty_adds_rtts(self):
        model = TransferModel(restart_penalty_rtts=4.0)
        base = model.transfer_time(
            100_000, rtt=0.1, bandwidth=1e6, direction=Direction.STORE
        )
        restarted = model.transfer_time(
            100_000, rtt=0.1, bandwidth=1e6,
            direction=Direction.STORE, restarted=True,
        )
        assert restarted == pytest.approx(base + 0.4)

    def test_validation(self):
        model = TransferModel()
        with pytest.raises(ValueError):
            model.transfer_time(-1, 0.1, 1e6, Direction.STORE)
        with pytest.raises(ValueError):
            model.transfer_time(100, 0.0, 1e6, Direction.STORE)

    def test_zero_byte_transfer_is_free(self):
        """Metadata-only / empty-file requests cost processing time only."""
        model = TransferModel()
        assert model.transfer_time(0, 0.1, 1e6, Direction.STORE) == 0.0
        # The restart penalty applies to data transfers, not empty ones.
        assert model.transfer_time(
            0, 0.1, 1e6, Direction.RETRIEVE, restarted=True
        ) == 0.0


class TestFrontendServer:
    def make(self, sink=None):
        return FrontendServer(server_id=0, log_sink=sink)

    def test_chunk_emits_log_record(self):
        server = self.make()
        rng = np.random.default_rng(0)
        outcome = server.handle_chunk(
            timestamp=10.0,
            user_id=1,
            device_id="d1",
            device_type=DeviceType.ANDROID,
            direction=Direction.STORE,
            size=512 * 1024,
            rtt=0.1,
            bandwidth=1e6,
            rng=rng,
        )
        assert outcome.ok
        assert len(server.access_log) == 1
        record = server.access_log[0]
        assert record.kind is RequestKind.CHUNK
        assert record.is_ok
        assert record.volume == 512 * 1024
        assert record.processing_time == pytest.approx(outcome.tchunk)
        assert record.server_time == pytest.approx(outcome.tsrv)
        assert outcome.tchunk > outcome.tsrv > 0
        assert outcome.elapsed == pytest.approx(outcome.tchunk)

    def test_file_op_emits_zero_volume_record(self):
        server = self.make()
        server.handle_file_op(
            timestamp=1.0,
            user_id=1,
            device_id="d",
            device_type=DeviceType.IOS,
            direction=Direction.RETRIEVE,
            rtt=0.05,
            rng=np.random.default_rng(0),
        )
        record = server.access_log[0]
        assert record.kind is RequestKind.FILE_OP
        assert record.volume == 0

    def test_byte_counters(self):
        server = self.make()
        rng = np.random.default_rng(0)
        server.handle_chunk(
            timestamp=0.0, user_id=1, device_id="d",
            device_type=DeviceType.IOS, direction=Direction.STORE,
            size=100, rtt=0.1, bandwidth=1e6, rng=rng,
        )
        server.handle_chunk(
            timestamp=0.0, user_id=1, device_id="d",
            device_type=DeviceType.IOS, direction=Direction.RETRIEVE,
            size=300, rtt=0.1, bandwidth=1e6, rng=rng,
        )
        assert server.bytes_stored == 100
        assert server.bytes_served == 300

    def test_log_sink_bypasses_buffer(self):
        sunk = []
        server = self.make(sink=sunk.append)
        server.handle_file_op(
            timestamp=0.0, user_id=1, device_id="d",
            device_type=DeviceType.IOS, direction=Direction.STORE,
            rtt=0.1, rng=np.random.default_rng(0),
        )
        assert len(sunk) == 1
        assert server.access_log == []

    def test_restart_lengthens_chunk(self):
        server = self.make()
        plain = server.handle_chunk(
            timestamp=0.0, user_id=1, device_id="d",
            device_type=DeviceType.IOS, direction=Direction.STORE,
            size=512 * 1024, rtt=0.1, bandwidth=1e6,
            restarted=False, rng=np.random.default_rng(5),
        )
        restarted = server.handle_chunk(
            timestamp=0.0, user_id=1, device_id="d",
            device_type=DeviceType.IOS, direction=Direction.STORE,
            size=512 * 1024, rtt=0.1, bandwidth=1e6,
            restarted=True, rng=np.random.default_rng(5),
        )
        assert restarted.tchunk > plain.tchunk
