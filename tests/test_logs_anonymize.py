"""Tests for keyed anonymization."""

import pytest

from repro.logs import (
    Anonymizer,
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
)


def record(user=1, device_id="dev"):
    return LogRecord(
        timestamp=0.0,
        device_type=DeviceType.ANDROID,
        device_id=device_id,
        user_id=user,
        kind=RequestKind.CHUNK,
        direction=Direction.STORE,
        volume=1,
    )


def test_same_input_same_pseudonym():
    anon = Anonymizer(key=b"k")
    assert anon.user_pseudonym(42) == anon.user_pseudonym(42)
    assert anon.device_pseudonym("d") == anon.device_pseudonym("d")


def test_different_inputs_different_pseudonyms():
    anon = Anonymizer(key=b"k")
    assert anon.user_pseudonym(1) != anon.user_pseudonym(2)
    assert anon.device_pseudonym("a") != anon.device_pseudonym("b")


def test_key_changes_mapping():
    a = Anonymizer(key=b"k1")
    b = Anonymizer(key=b"k2")
    assert a.user_pseudonym(1) != b.user_pseudonym(1)


def test_same_key_joins_across_instances():
    a = Anonymizer(key=b"shared")
    b = Anonymizer(key=b"shared")
    assert a.user_pseudonym(1) == b.user_pseudonym(1)


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        Anonymizer(key=b"")


def test_anonymize_preserves_everything_but_identity():
    anon = Anonymizer(key=b"k")
    original = record(user=5, device_id="real-device")
    out = anon.anonymize(original)
    assert out.user_id != 5
    assert out.device_id != "real-device"
    assert out.volume == original.volume
    assert out.timestamp == original.timestamp


def test_anonymize_stream_preserves_join_structure():
    anon = Anonymizer(key=b"k")
    records = [record(user=1), record(user=2), record(user=1)]
    out = list(anon.anonymize_stream(records))
    assert out[0].user_id == out[2].user_id
    assert out[0].user_id != out[1].user_id


def test_device_pseudonym_shape():
    anon = Anonymizer(key=b"k")
    pseudonym = anon.device_pseudonym("x")
    assert len(pseudonym) == 13
    int(pseudonym, 16)  # hex-parsable
