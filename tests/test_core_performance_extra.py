"""Additional coverage for Section 4.1 log analyses on simulated flows."""

import numpy as np
import pytest

from repro.core.performance import restart_fraction
from repro.logs import CHUNK_SIZE, Direction
from repro.tcpsim import ANDROID, IOS, NetworkPath, simulate_flow


@pytest.fixture(scope="module")
def android_flow():
    return simulate_flow(
        direction=Direction.STORE,
        device=ANDROID,
        file_size=12 * CHUNK_SIZE,
        path=NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05),
        seed=9,
    )


def test_restart_flag_consistent_with_ratio(android_flow):
    """A chunk's restarted flag must agree with its actual idle/RTO."""
    for chunk in android_flow.chunk_results[1:]:
        if chunk.restarted:
            assert chunk.idle_rto_ratio > 1.0


def test_processing_ratio_count(android_flow):
    assert (
        android_flow.processing_idle_ratios.size
        == len(android_flow.chunk_results) - 1
    )


def test_restart_fraction_matches_simulator_count(android_flow):
    ratios = android_flow.idle_rto_ratios
    expected = android_flow.slow_start_restarts / ratios.size
    assert restart_fraction(ratios) == pytest.approx(expected, abs=0.01)


def test_restarted_chunks_slower_on_average():
    """The causal claim of Section 4: restarts lengthen chunk transfers."""
    restarted, clean = [], []
    for seed in range(6):
        flow = simulate_flow(
            direction=Direction.STORE,
            device=ANDROID,
            file_size=12 * CHUNK_SIZE,
            path=NetworkPath(bandwidth=4_000_000.0, one_way_delay=0.05),
            seed=seed,
        )
        for chunk in flow.chunk_results[1:]:
            (restarted if chunk.restarted else clean).append(chunk.ttran)
    assert np.median(restarted) > np.median(clean)


def test_ios_restarts_less_than_android_on_same_path():
    """On identical paths the device gap is purely client processing."""
    restarts = {}
    for device in (IOS, ANDROID):
        total = 0
        for seed in range(4):
            flow = simulate_flow(
                direction=Direction.STORE,
                device=device,
                file_size=12 * CHUNK_SIZE,
                path=NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05),
                seed=seed,
            )
            total += flow.slow_start_restarts
        restarts[device.device_type] = total
    values = list(restarts.values())
    assert values[0] < values[1]  # iOS < Android
