"""Tests for the one-pass trace summary."""

import pytest

from repro.logs import DeviceType, Direction, LogRecord, RequestKind
from repro.logs.summary import TraceSummary, summarize


def record(ts=0.0, user=1, device="m1", device_type=DeviceType.ANDROID,
           kind=RequestKind.CHUNK, direction=Direction.STORE, volume=100,
           proxied=False):
    return LogRecord(
        timestamp=ts,
        device_type=device_type,
        device_id=device,
        user_id=user,
        kind=kind,
        direction=direction,
        volume=volume if kind is RequestKind.CHUNK else 0,
        proxied=proxied,
    )


SAMPLE = [
    record(ts=0.0, user=1, device="m1", volume=100),
    record(ts=10.0, user=1, device="m1", kind=RequestKind.FILE_OP),
    record(ts=86_400.0, user=2, device="m2",
           device_type=DeviceType.IOS,
           direction=Direction.RETRIEVE, volume=300),
    record(ts=90_000.0, user=2, device="p1",
           device_type=DeviceType.PC, volume=50, proxied=True),
]


@pytest.fixture()
def summary():
    return summarize(SAMPLE)


def test_counts(summary):
    assert summary.n_records == 4
    assert summary.n_file_ops == 1
    assert summary.n_chunks == 3
    assert summary.n_proxied == 1


def test_volumes(summary):
    assert summary.stored_bytes == 150
    assert summary.retrieved_bytes == 300
    assert summary.total_bytes == 450


def test_populations(summary):
    assert summary.n_users == 2
    assert summary.n_devices == 3
    assert summary.devices_per_user == pytest.approx(1.5)


def test_span(summary):
    assert summary.span_seconds == pytest.approx(90_000.0)
    assert summary.span_days == pytest.approx(90_000.0 / 86_400.0)


def test_android_record_share_excludes_pc(summary):
    # 2 android mobile records, 1 ios mobile record; PC excluded.
    assert summary.android_record_share == pytest.approx(2 / 3)


def test_pc_co_use_share(summary):
    # Users 1 and 2 are mobile users; only user 2 also used a PC.
    assert summary.pc_co_use_share == pytest.approx(0.5)


def test_render_contains_key_lines(summary):
    text = summary.render()
    assert "records" in text
    assert "android share" in text
    assert "PC co-use" in text


def test_empty_summary_safe():
    summary = TraceSummary()
    assert summary.span_seconds == 0.0
    assert summary.android_record_share == 0.0
    assert summary.pc_co_use_share == 0.0
    assert summary.devices_per_user == 0.0
