"""Sharded parallel generation: determinism-equivalence harness.

The contract under test (see ``docs/SCALING.md``): for a fixed master
seed the sharded engine produces a trace record-for-record identical to
the serial generator, for every shard count and worker count, whether
shards stay in memory or round-trip through part files.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import assert_traces_equivalent, canonical_lines
from repro.workload import (
    GeneratorOptions,
    ShardTask,
    generate_shard,
    generate_sharded,
    generate_trace,
    generate_trace_parallel,
    generate_trace_to_file,
    merge_key,
    merge_shards,
    partition_users,
    shard_of_user,
)
from repro.logs.io import open_reader

N_USERS = 120
N_PC_USERS = 25
SEED = 977
OPTIONS = GeneratorOptions(max_chunks_per_file=2)


@pytest.fixture(scope="module")
def serial_trace():
    return generate_trace(
        N_USERS, n_pc_only_users=N_PC_USERS, options=OPTIONS, seed=SEED
    )


def sharded_kwargs(**overrides):
    kwargs = dict(
        n_pc_only_users=N_PC_USERS, options=OPTIONS, seed=SEED
    )
    kwargs.update(overrides)
    return kwargs


# ----------------------------------------------------------------------
# Serial == sharded equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    ("n_shards", "n_workers"),
    [(1, 1), (2, 1), (4, 1), (2, 2), (4, 2)],
)
def test_sharded_equals_serial(serial_trace, n_shards, n_workers):
    parallel = generate_trace_parallel(
        N_USERS,
        **sharded_kwargs(n_shards=n_shards, n_workers=n_workers),
    )
    assert_traces_equivalent(
        serial_trace,
        parallel,
        label=f"shards={n_shards} workers={n_workers}",
    )


def test_parallel_reconstructs_serial_order_exactly(serial_trace):
    """In-memory mode returns the serial list itself: same records, same
    order, same session ids (which ``LogRecord.__eq__`` ignores)."""
    parallel = generate_trace_parallel(
        N_USERS, **sharded_kwargs(n_shards=4, n_workers=2)
    )
    assert parallel == serial_trace
    assert [r.session_id for r in parallel] == [
        r.session_id for r in serial_trace
    ]


@pytest.mark.parametrize("part_format", ["tsv", "jsonl"])
def test_file_backed_shards_equal_serial(serial_trace, tmp_path, part_format):
    sharded = generate_sharded(
        N_USERS,
        **sharded_kwargs(n_shards=3, n_workers=2),
        part_dir=tmp_path,
        part_format=part_format,
    )
    assert sharded.n_records == len(serial_trace)
    assert len(sharded.paths) == 3
    assert_traces_equivalent(
        serial_trace, sharded.merged(), label=f"file-backed {part_format}"
    )


def test_generate_trace_to_file_equal_serial(serial_trace, tmp_path):
    out = tmp_path / "trace.tsv"
    count = generate_trace_to_file(
        out, N_USERS, **sharded_kwargs(n_shards=4, n_workers=2)
    )
    assert count == len(serial_trace)
    assert_traces_equivalent(serial_trace, open_reader(out), label="to-file")


def test_different_seeds_produce_different_sharded_traces():
    a = generate_trace_parallel(40, options=OPTIONS, seed=1, n_shards=2)
    b = generate_trace_parallel(40, options=OPTIONS, seed=2, n_shards=2)
    assert canonical_lines(a) != canonical_lines(b)


# ----------------------------------------------------------------------
# Per-shard determinism and merge ordering
# ----------------------------------------------------------------------


def shard_task(index, n_shards, path):
    return ShardTask(
        shard_index=index,
        n_shards=n_shards,
        n_mobile_users=N_USERS,
        n_pc_only_users=N_PC_USERS,
        config=None,
        options=OPTIONS,
        seed=SEED,
        path=path,
    )


def test_shard_rerun_is_bit_identical(tmp_path):
    """Re-running one shard task writes a byte-identical part file."""
    first = tmp_path / "a.tsv"
    second = tmp_path / "b.tsv"
    part_a = generate_shard(shard_task(1, 3, str(first)))
    part_b = generate_shard(shard_task(1, 3, str(second)))
    assert part_a.n_records == part_b.n_records
    assert part_a.n_users == part_b.n_users
    assert first.read_bytes() == second.read_bytes()


def test_in_memory_shard_rerun_identical():
    part_a = generate_shard(shard_task(0, 4, None))
    part_b = generate_shard(shard_task(0, 4, None))
    assert part_a.records == part_b.records
    assert [r.session_id for r in part_a.records] == [
        r.session_id for r in part_b.records
    ]


def test_part_files_sorted_by_merge_key(tmp_path):
    for index in range(3):
        part = generate_shard(
            shard_task(index, 3, str(tmp_path / f"part-{index}.tsv"))
        )
        keys = [merge_key(r) for r in open_reader(part.path)]
        assert keys == sorted(keys)


def test_merge_stream_is_globally_sorted(tmp_path):
    sharded = generate_sharded(
        N_USERS,
        **sharded_kwargs(n_shards=4, n_workers=1),
        part_dir=tmp_path,
    )
    previous = None
    count = 0
    for record in merge_shards(sharded.paths):
        key = merge_key(record)
        if previous is not None:
            assert key >= previous
        previous = key
        count += 1
    assert count == sharded.n_records


def test_merged_iterator_streams_in_memory_parts():
    sharded = generate_sharded(
        N_USERS, **sharded_kwargs(n_shards=2, n_workers=1)
    )
    keys = [merge_key(r) for r in sharded.merged()]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Shard partitioner properties (Hypothesis)
# ----------------------------------------------------------------------

user_id_lists = st.lists(
    st.integers(min_value=0, max_value=100_000), unique=True, max_size=200
)
shard_counts = st.integers(min_value=1, max_value=16)


def stub_users(user_ids):
    return [SimpleNamespace(user_id=uid) for uid in user_ids]


@given(user_ids=user_id_lists, n_shards=shard_counts)
@settings(max_examples=200, deadline=None)
def test_every_user_in_exactly_one_shard(user_ids, n_shards):
    shards = partition_users(stub_users(user_ids), n_shards)
    assert len(shards) == n_shards
    seen = [u.user_id for shard in shards for u in shard]
    assert sorted(seen) == sorted(user_ids)
    assert len(seen) == len(set(seen))


@given(user_ids=user_id_lists, n_shards=shard_counts)
@settings(max_examples=100, deadline=None)
def test_assignment_independent_of_other_users(user_ids, n_shards):
    """A user's shard is a pure function of (user_id, n_shards): dropping
    other users from the population never moves anyone."""
    full = partition_users(stub_users(user_ids), n_shards)
    placement = {
        u.user_id: index
        for index, shard in enumerate(full)
        for u in shard
    }
    subset = user_ids[::2]
    for index, shard in enumerate(partition_users(stub_users(subset), n_shards)):
        for user in shard:
            assert placement[user.user_id] == index


@given(user_id=st.integers(min_value=0, max_value=10**9),
       n_shards=shard_counts)
@settings(max_examples=100, deadline=None)
def test_shard_of_user_in_range_and_stable(user_id, n_shards):
    shard = shard_of_user(user_id, n_shards)
    assert 0 <= shard < n_shards
    assert shard == shard_of_user(user_id, n_shards)


@given(n_shards=shard_counts)
@settings(max_examples=20, deadline=None)
def test_empty_population_yields_empty_shards(n_shards):
    shards = partition_users([], n_shards)
    assert shards == [[] for _ in range(n_shards)]


def test_shard_count_change_reassigns_only_as_documented():
    """The documented instability: assignment may change with the shard
    count, but for user_id % lcm-compatible counts it follows the modulo
    rule exactly."""
    for n_shards in (1, 2, 4, 8):
        for user_id in range(32):
            assert shard_of_user(user_id, n_shards) == user_id % n_shards


# ----------------------------------------------------------------------
# Validation error paths
# ----------------------------------------------------------------------


def test_invalid_shard_count_rejected():
    with pytest.raises(ValueError, match="n_shards"):
        shard_of_user(3, 0)
    with pytest.raises(ValueError, match="n_shards"):
        generate_sharded(10, n_shards=0)


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError, match="n_workers"):
        generate_sharded(10, n_shards=2, n_workers=0)


def test_invalid_part_format_rejected(tmp_path):
    with pytest.raises(ValueError, match="part format"):
        generate_sharded(
            10, n_shards=2, part_dir=tmp_path, part_format="csv"
        )


def test_more_shards_than_users_still_equivalent():
    serial = generate_trace(3, options=OPTIONS, seed=5)
    parallel = generate_trace_parallel(
        3, options=OPTIONS, seed=5, n_shards=8, n_workers=1
    )
    assert_traces_equivalent(serial, parallel, label="shards>users")
