"""Tests for the log record schema."""

import pytest

from repro.logs import (
    CHUNK_SIZE,
    DeviceType,
    Direction,
    LogRecord,
    RequestKind,
    iter_chunks,
    iter_file_ops,
    sort_by_time,
)


def make_record(**overrides):
    defaults = dict(
        timestamp=1.0,
        device_type=DeviceType.ANDROID,
        device_id="dev-1",
        user_id=7,
        kind=RequestKind.CHUNK,
        direction=Direction.STORE,
        volume=1024,
        processing_time=0.5,
        server_time=0.1,
        rtt=0.09,
    )
    defaults.update(overrides)
    return LogRecord(**defaults)


def test_chunk_size_is_512_kib():
    assert CHUNK_SIZE == 524288


def test_mobile_device_types():
    assert DeviceType.ANDROID.is_mobile
    assert DeviceType.IOS.is_mobile
    assert not DeviceType.PC.is_mobile


def test_record_properties():
    record = make_record()
    assert record.is_chunk
    assert not record.is_file_op
    assert record.is_mobile


def test_transfer_time_subtracts_server_time():
    record = make_record(processing_time=0.5, server_time=0.1)
    assert record.transfer_time == pytest.approx(0.4)


def test_transfer_time_never_negative():
    record = make_record(processing_time=0.1, server_time=0.5)
    assert record.transfer_time == 0.0


def test_negative_volume_rejected():
    with pytest.raises(ValueError):
        make_record(volume=-1)


def test_negative_processing_time_rejected():
    with pytest.raises(ValueError):
        make_record(processing_time=-0.1)


def test_negative_rtt_rejected():
    with pytest.raises(ValueError):
        make_record(rtt=-0.1)


def test_file_op_with_payload_rejected():
    with pytest.raises(ValueError):
        make_record(kind=RequestKind.FILE_OP, volume=10)


def test_file_op_zero_volume_ok():
    record = make_record(kind=RequestKind.FILE_OP, volume=0)
    assert record.is_file_op


def test_with_timestamp_copies():
    record = make_record(timestamp=1.0)
    shifted = record.with_timestamp(99.0)
    assert shifted.timestamp == 99.0
    assert record.timestamp == 1.0
    assert shifted.volume == record.volume


def test_sort_by_time_orders_by_timestamp_then_user():
    records = [
        make_record(timestamp=2.0, user_id=1),
        make_record(timestamp=1.0, user_id=9),
        make_record(timestamp=1.0, user_id=2),
    ]
    ordered = sort_by_time(records)
    assert [r.timestamp for r in ordered] == [1.0, 1.0, 2.0]
    assert [r.user_id for r in ordered] == [2, 9, 1]


def test_iter_file_ops_and_chunks_partition():
    records = [
        make_record(kind=RequestKind.FILE_OP, volume=0),
        make_record(kind=RequestKind.CHUNK),
        make_record(kind=RequestKind.FILE_OP, volume=0),
    ]
    assert len(list(iter_file_ops(records))) == 2
    assert len(list(iter_chunks(records))) == 1


def test_session_id_excluded_from_equality():
    a = make_record(session_id=1)
    b = make_record(session_id=2)
    assert a == b
