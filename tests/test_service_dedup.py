"""Tests for redundancy-elimination accounting."""

import pytest

from repro.logs import CHUNK_SIZE
from repro.service import RedundancyEliminator, Strategy, build_manifest


def manifest(seed, size=2 * CHUNK_SIZE, name="f"):
    return build_manifest(name, seed, size)


class TestBasics:
    def test_delta_fraction_validated(self):
        with pytest.raises(ValueError):
            RedundancyEliminator(delta_fraction=1.5)

    def test_first_upload_full_price_everywhere(self):
        elim = RedundancyEliminator()
        elim.upload(manifest(b"a"))
        for strategy in Strategy:
            acct = elim.accounting[strategy]
            assert acct.transferred_bytes == 2 * CHUNK_SIZE
            assert acct.savings == 0.0

    def test_exact_reupload_skipped_by_file_dedup(self):
        elim = RedundancyEliminator()
        elim.upload(manifest(b"a"))
        elim.upload(manifest(b"a"))
        assert elim.accounting[Strategy.NONE].transferred_bytes == 4 * CHUNK_SIZE
        for strategy in (Strategy.FILE_DEDUP, Strategy.CHUNK_DEDUP, Strategy.DELTA):
            assert (
                elim.accounting[strategy].transferred_bytes == 2 * CHUNK_SIZE
            ), strategy
        assert elim.accounting[Strategy.FILE_DEDUP].files_skipped == 1

    def test_savings_fraction(self):
        elim = RedundancyEliminator()
        elim.upload(manifest(b"a"))
        elim.upload(manifest(b"a"))
        assert elim.accounting[Strategy.FILE_DEDUP].savings == pytest.approx(0.5)


class TestChunkOverlap:
    def overlapping_manifests(self):
        """Two 4-chunk files sharing 3 chunks (one revised chunk)."""
        from repro.service import FileManifest, content_md5

        sizes = (CHUNK_SIZE,) * 4
        base_chunks = [f"doc/c{i}/g0" for i in range(4)]
        rev_chunks = base_chunks[:3] + ["doc/c3/g1"]
        make = lambda chunks: FileManifest(
            name="doc",
            size=4 * CHUNK_SIZE,
            file_md5=content_md5("|".join(chunks).encode()),
            chunk_md5s=tuple(content_md5(c.encode()) for c in chunks),
            chunk_sizes=sizes,
        )
        return make(base_chunks), make(rev_chunks)

    def test_chunk_dedup_transfers_only_changed_chunk(self):
        base, revised = self.overlapping_manifests()
        elim = RedundancyEliminator()
        elim.upload(base, lineage="doc")
        elim.upload(revised, lineage="doc")
        acct = elim.accounting[Strategy.CHUNK_DEDUP]
        assert acct.transferred_bytes == 5 * CHUNK_SIZE  # 4 + 1 changed
        assert acct.chunks_skipped == 3
        # File dedup gets nothing: the file hash changed.
        assert (
            elim.accounting[Strategy.FILE_DEDUP].transferred_bytes
            == 8 * CHUNK_SIZE
        )

    def test_delta_needs_lineage(self):
        base, revised = self.overlapping_manifests()
        # Without lineage the changed chunk costs full price under DELTA.
        elim = RedundancyEliminator(delta_fraction=0.1)
        elim.upload(base)
        elim.upload(revised)
        assert (
            elim.accounting[Strategy.DELTA].transferred_bytes
            == 5 * CHUNK_SIZE
        )
        # With lineage, only the delta fraction of the changed chunk.
        elim = RedundancyEliminator(delta_fraction=0.1)
        elim.upload(base, lineage="doc")
        elim.upload(revised, lineage="doc")
        expected = 4 * CHUNK_SIZE + int(round(CHUNK_SIZE * 0.1))
        assert elim.accounting[Strategy.DELTA].transferred_bytes == expected

    def test_marginal_gain(self):
        base, revised = self.overlapping_manifests()
        elim = RedundancyEliminator()
        elim.upload(base, lineage="doc")
        elim.upload(revised, lineage="doc")
        gain = elim.marginal_gain(Strategy.FILE_DEDUP, Strategy.CHUNK_DEDUP)
        assert gain == pytest.approx(3 / 8)


class TestUploadAll:
    def test_lineage_alignment_checked(self):
        elim = RedundancyEliminator()
        with pytest.raises(ValueError):
            elim.upload_all([manifest(b"a")], lineages=["x", "y"])

    def test_stream_without_lineages(self):
        elim = RedundancyEliminator()
        elim.upload_all([manifest(b"a"), manifest(b"b")])
        assert elim.accounting[Strategy.NONE].logical_bytes == 4 * CHUNK_SIZE
