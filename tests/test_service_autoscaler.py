"""Tests for the elastic provisioning simulator."""

import numpy as np
import pytest

from repro.service.autoscaler import (
    AutoscalerPolicy,
    compare_strategies,
    oracle_provisioning,
    reactive_provisioning,
    static_provisioning,
)

POLICY = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.5,
                          scale_down_cooldown=1)

FLAT = np.full(24, 250.0)
DIURNAL = np.array([50.0] * 8 + [200.0] * 8 + [800.0] * 8)


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=0.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, headroom=0.9)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, scale_down_cooldown=-1)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, min_servers=0)


class TestStatic:
    def test_peak_sized_fleet(self):
        outcome = static_provisioning(DIURNAL, POLICY)
        assert outcome.server_hours == 8 * 24  # ceil(800/100) * 24 hours
        assert outcome.underprovisioned_hours == 0

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            static_provisioning(np.array([]), POLICY)


class TestOracle:
    def test_exact_fit_every_hour(self):
        outcome = oracle_provisioning(DIURNAL, POLICY)
        expected = 8 * (1 + 2 + 8)
        assert outcome.server_hours == expected
        assert outcome.underprovisioned_hours == 0

    def test_oracle_never_costlier_than_static(self):
        static = static_provisioning(DIURNAL, POLICY)
        oracle = oracle_provisioning(DIURNAL, POLICY)
        assert oracle.server_hours <= static.server_hours


class TestReactive:
    def test_flat_profile_no_violations(self):
        outcome = reactive_provisioning(FLAT, POLICY)
        assert outcome.underprovisioned_hours == 0
        assert outcome.violation_rate == 0.0

    def test_lags_a_step_increase(self):
        profile = np.array([100.0] * 4 + [1000.0] * 4)
        outcome = reactive_provisioning(profile, POLICY)
        # The hour of the jump is under-provisioned (reactive lag).
        assert outcome.underprovisioned_hours >= 1

    def test_cooldown_delays_scale_down(self):
        profile = np.array([1000.0, 100.0, 100.0, 100.0, 100.0])
        eager = reactive_provisioning(
            profile,
            AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                             scale_down_cooldown=0),
        )
        patient = reactive_provisioning(
            profile,
            AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                             scale_down_cooldown=3),
        )
        assert patient.server_hours > eager.server_hours

    def test_costs_between_oracle_and_static_on_diurnal(self):
        outcomes = compare_strategies(DIURNAL, POLICY)
        assert (
            outcomes["oracle"].server_hours
            <= outcomes["reactive"].server_hours
            <= outcomes["static"].server_hours
        )

    def test_savings_over(self):
        outcomes = compare_strategies(DIURNAL, POLICY)
        saving = outcomes["reactive"].savings_over(outcomes["static"])
        assert 0.0 < saving < 1.0

    def test_min_servers_floor(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, min_servers=5)
        outcome = reactive_provisioning(np.full(10, 1.0), policy)
        assert outcome.server_hours == 50


class TestReactiveBootstrap:
    """Hour 0 must be sized like every later hour: from the first
    *observation* with headroom, not an oracle peek at the raw load."""

    def test_hour_zero_gets_headroom(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.3)
        outcome = reactive_provisioning(np.array([1000.0]), policy)
        # ceil(1000 * 1.3 / 100) = 13 servers, not the peeked ceil(10).
        assert outcome.server_hours == 13
        assert outcome.underprovisioned_hours == 0

    def test_flat_profile_hour_zero_matches_steady_state(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.3)
        outcome = reactive_provisioning(np.full(5, 1000.0), policy)
        # Steady state is 13 servers/hour; hour 0 must agree exactly.
        assert outcome.server_hours == 13 * 5
