"""Tests for the elastic provisioning simulator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.service.autoscaler import (
    AutoscalerPolicy,
    compare_strategies,
    oracle_provisioning,
    reactive_provisioning,
    static_provisioning,
)

POLICY = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.5,
                          scale_down_cooldown=1)

FLAT = np.full(24, 250.0)
DIURNAL = np.array([50.0] * 8 + [200.0] * 8 + [800.0] * 8)


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=0.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, headroom=0.9)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, scale_down_cooldown=-1)
        with pytest.raises(ValueError):
            AutoscalerPolicy(capacity_per_server=1.0, min_servers=0)


class TestStatic:
    def test_peak_sized_fleet(self):
        outcome = static_provisioning(DIURNAL, POLICY)
        assert outcome.server_hours == 8 * 24  # ceil(800/100) * 24 hours
        assert outcome.underprovisioned_hours == 0

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            static_provisioning(np.array([]), POLICY)


class TestOracle:
    def test_exact_fit_every_hour(self):
        outcome = oracle_provisioning(DIURNAL, POLICY)
        expected = 8 * (1 + 2 + 8)
        assert outcome.server_hours == expected
        assert outcome.underprovisioned_hours == 0

    def test_oracle_never_costlier_than_static(self):
        static = static_provisioning(DIURNAL, POLICY)
        oracle = oracle_provisioning(DIURNAL, POLICY)
        assert oracle.server_hours <= static.server_hours


class TestReactive:
    def test_flat_profile_no_violations(self):
        outcome = reactive_provisioning(FLAT, POLICY)
        assert outcome.underprovisioned_hours == 0
        assert outcome.violation_rate == 0.0

    def test_lags_a_step_increase(self):
        profile = np.array([100.0] * 4 + [1000.0] * 4)
        outcome = reactive_provisioning(profile, POLICY)
        # The hour of the jump is under-provisioned (reactive lag).
        assert outcome.underprovisioned_hours >= 1

    def test_cooldown_delays_scale_down(self):
        profile = np.array([1000.0, 100.0, 100.0, 100.0, 100.0])
        eager = reactive_provisioning(
            profile,
            AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                             scale_down_cooldown=0),
        )
        patient = reactive_provisioning(
            profile,
            AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                             scale_down_cooldown=3),
        )
        assert patient.server_hours > eager.server_hours

    def test_costs_between_oracle_and_static_on_diurnal(self):
        outcomes = compare_strategies(DIURNAL, POLICY)
        assert (
            outcomes["oracle"].server_hours
            <= outcomes["reactive"].server_hours
            <= outcomes["static"].server_hours
        )

    def test_savings_over(self):
        outcomes = compare_strategies(DIURNAL, POLICY)
        saving = outcomes["reactive"].savings_over(outcomes["static"])
        assert 0.0 < saving < 1.0

    def test_min_servers_floor(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, min_servers=5)
        outcome = reactive_provisioning(np.full(10, 1.0), policy)
        assert outcome.server_hours == 50


class TestReactiveBootstrap:
    """Hour 0 must be sized like every later hour: from the first
    *observation* with headroom, not an oracle peek at the raw load."""

    def test_hour_zero_gets_headroom(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.3)
        outcome = reactive_provisioning(np.array([1000.0]), policy)
        # ceil(1000 * 1.3 / 100) = 13 servers, not the peeked ceil(10).
        assert outcome.server_hours == 13
        assert outcome.underprovisioned_hours == 0

    def test_flat_profile_hour_zero_matches_steady_state(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.3)
        outcome = reactive_provisioning(np.full(5, 1000.0), policy)
        # Steady state is 13 servers/hour; hour 0 must agree exactly.
        assert outcome.server_hours == 13 * 5


class TestEpsilonCeiling:
    """Satellite regression: float division landing a hair above an
    integer must not buy a phantom server (math.ceil(2.1/0.7) == 4)."""

    def test_raw_float_ceiling_is_the_trap(self):
        import math
        # The bug being guarded against: 2.1/0.7 = 3.0000000000000004.
        assert math.ceil(2.1 / 0.7) == 4

    def test_int_ceil_absorbs_the_representation_error(self):
        from repro.service.autoscaler import _int_ceil
        assert _int_ceil(2.1 / 0.7) == 3
        assert _int_ceil(3.0) == 3
        assert _int_ceil(3.2) == 4
        assert _int_ceil(0.0) == 0

    @pytest.mark.parametrize("provision", [
        static_provisioning, reactive_provisioning, oracle_provisioning,
    ])
    def test_2_1_over_0_7_across_all_three_strategies(self, provision):
        policy = AutoscalerPolicy(capacity_per_server=0.7, headroom=1.0,
                                  scale_down_cooldown=0)
        outcome = provision(np.full(4, 2.1), policy)
        # Exactly 3 servers per hour, never the off-by-one 4.
        assert outcome.server_hours == 3 * 4
        assert outcome.underprovisioned_hours == 0
        assert set(outcome.trajectory) == {3}


class TestCooldownPlateauSemantics:
    """Satellite regression: plateau hours (target == fleet) count toward
    the scale-down streak but never themselves shrink the fleet."""

    def test_plateau_counts_toward_the_streak(self):
        # Decline to a plateau at the current fleet, then strictly below.
        # cooldown=2: the two plateau hours must satisfy the streak, so
        # the first strictly-below hour fires the scale-down.
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=2)
        profile = np.array([300.0, 300.0, 300.0, 100.0, 100.0])
        outcome = reactive_provisioning(profile, policy)
        # Hours 1-2 target 3 == fleet (streak 1, 2), hour 3 target 3
        # (follows load[2]=300; streak 3), hour 4 target 1 < fleet with
        # streak > cooldown -> scale down fires at hour 4.
        assert outcome.trajectory == (3, 3, 3, 3, 1)

    def test_plateau_reset_would_postpone_scale_down(self):
        # The old buggy semantics (reset on plateau) would keep the fleet
        # at 3 forever on this profile; the fixed streak fires exactly
        # one cooldown after the decline becomes visible.
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=1)
        profile = np.array([300.0, 250.0, 280.0, 250.0, 280.0, 100.0, 100.0])
        outcome = reactive_provisioning(profile, policy)
        # Targets from hour 1: 3, 3, 3, 3, 3, 1 -- all plateaus until the
        # last; streak grows through the plateaus, so the strictly-below
        # hour 6 scales down immediately.
        assert outcome.trajectory[-1] == 1

    def test_plateau_never_shrinks_the_fleet(self):
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=0)
        outcome = reactive_provisioning(np.full(6, 300.0), policy)
        assert set(outcome.trajectory) == {3}


class TestPredictiveClosedForm:
    def test_degenerates_to_reactive_before_one_cycle(self):
        from repro.service.autoscaler import predictive_provisioning
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=0, period=24)
        profile = np.array([100.0, 400.0, 200.0])
        predictive = predictive_provisioning(profile, policy)
        reactive = reactive_provisioning(profile, policy)
        # With < one period of history the forecast is the last
        # observation -- identical to the reactive follower (and no
        # cooldown on either side here).
        assert predictive.trajectory == reactive.trajectory

    def test_anticipates_the_second_day_ramp(self):
        from repro.service.autoscaler import predictive_provisioning
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=0, period=4)
        day = [100.0, 800.0, 800.0, 100.0]
        profile = np.array(day * 3)
        predictive = predictive_provisioning(profile, policy)
        reactive = reactive_provisioning(profile, policy)
        # Reactive under-provisions every ramp hour; predictive only the
        # first day's (after that the seasonal forecast sees it coming).
        assert predictive.underprovisioned_hours < reactive.underprovisioned_hours

    def test_guardrail_falls_back_on_noisy_history(self):
        from repro.service.autoscaler import predictive_provisioning
        policy = AutoscalerPolicy(capacity_per_server=100.0, headroom=1.0,
                                  scale_down_cooldown=0, period=2,
                                  forecast_guardrail=0.05)
        # Anti-periodic profile: the period-2 forecast is maximally wrong,
        # so the guardrail must clamp the basis to >= last observation.
        profile = np.array([100.0, 900.0] * 4)
        outcome = predictive_provisioning(profile, policy)
        reactive = reactive_provisioning(profile, policy)
        assert outcome.server_hours >= reactive.server_hours

    def test_compare_strategies_has_all_four(self):
        outcomes = compare_strategies(DIURNAL, POLICY)
        assert set(outcomes) == {"static", "reactive", "predictive", "oracle"}
        assert outcomes["predictive"].strategy == "predictive"


class TestProvisioningProperties:
    """Hypothesis invariants over arbitrary profiles and policies."""

    profiles = st.lists(
        st.floats(0.0, 10_000.0, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=48,
    )
    policies = st.builds(
        AutoscalerPolicy,
        capacity_per_server=st.floats(0.5, 500.0),
        headroom=st.floats(1.0, 3.0),
        scale_down_cooldown=st.integers(0, 4),
        min_servers=st.integers(1, 4),
    )

    @given(profile=profiles, policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_static_never_underprovisions(self, profile, policy):
        outcome = static_provisioning(np.array(profile), policy)
        assert outcome.underprovisioned_hours == 0

    @given(profile=profiles, policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_oracle_bounds_any_violation_free_reactive(self, profile, policy):
        reactive = reactive_provisioning(np.array(profile), policy)
        assume(reactive.underprovisioned_hours == 0)
        oracle = oracle_provisioning(np.array(profile), policy)
        assert oracle.server_hours <= reactive.server_hours

    @given(profile=profiles, policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_trajectory_respects_floor_and_cooldown(self, profile, policy):
        outcome = reactive_provisioning(np.array(profile), policy)
        trajectory = outcome.trajectory
        assert len(trajectory) == len(profile)
        assert all(fleet >= policy.min_servers for fleet in trajectory)
        # Scale-downs can fire at most once per cooldown+1 hours: the
        # below-streak resets on every fire (and on every scale-up).
        decreases = [
            i for i in range(1, len(trajectory))
            if trajectory[i] < trajectory[i - 1]
        ]
        for first, second in zip(decreases, decreases[1:]):
            assert second - first > policy.scale_down_cooldown

    @given(profile=profiles, policy=policies)
    @settings(max_examples=30, deadline=None)
    def test_closed_form_strategies_are_pure(self, profile, policy):
        once = compare_strategies(np.array(profile), policy)
        again = compare_strategies(np.array(profile), policy)
        for name in once:
            assert once[name].trajectory == again[name].trajectory
            assert once[name].server_hours == again[name].server_hours
