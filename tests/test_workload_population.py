"""Tests for user population synthesis."""

import pytest

from repro.logs import DeviceType
from repro.workload import (
    DeviceGroup,
    UserType,
    WorkloadConfig,
    build_population,
)


@pytest.fixture(scope="module")
def population():
    return build_population(3000, n_pc_only_users=500, seed=5)


def test_population_sizes(population):
    mobile = [u for u in population if u.group is not DeviceGroup.PC_ONLY]
    pc = [u for u in population if u.group is DeviceGroup.PC_ONLY]
    assert len(mobile) == 3000
    assert len(pc) == 500


def test_unique_user_ids(population):
    ids = [u.user_id for u in population]
    assert len(set(ids)) == len(ids)


def test_determinism():
    a = build_population(200, seed=9)
    b = build_population(200, seed=9)
    assert [u.store_files for u in a] == [u.store_files for u in b]
    assert [u.active_days for u in a] == [u.active_days for u in b]


def test_pc_co_use_share(population):
    mobile = [u for u in population if u.group is not DeviceGroup.PC_ONLY]
    both = [u for u in mobile if u.group is DeviceGroup.MOBILE_AND_PC]
    assert len(both) / len(mobile) == pytest.approx(0.143, abs=0.03)


def test_device_inventories_match_groups(population):
    for user in population:
        if user.group is DeviceGroup.PC_ONLY:
            assert not user.mobile_devices
            assert user.pc_devices
        elif user.group is DeviceGroup.MOBILE_AND_PC:
            assert user.mobile_devices and user.pc_devices
        elif user.group is DeviceGroup.ONE_MOBILE:
            assert len(user.mobile_devices) == 1
            assert not user.pc_devices
        else:
            assert len(user.mobile_devices) >= 2


def test_android_share(population):
    devices = [
        d
        for u in population
        for d in u.mobile_devices
    ]
    android = sum(1 for d in devices if d.device_type is DeviceType.ANDROID)
    assert android / len(devices) == pytest.approx(0.784, abs=0.03)


def test_budgets_match_types(population):
    for user in population:
        if user.user_type is UserType.UPLOAD_ONLY:
            assert user.store_files >= 1
            assert user.retrieve_files == 0
        elif user.user_type is UserType.DOWNLOAD_ONLY:
            assert user.retrieve_files >= 1
            assert user.store_files == 0
        elif user.user_type is UserType.MIXED:
            assert user.store_files >= 1
            assert user.retrieve_files >= 1


def test_occasional_users_are_dedup_only(population):
    occasional = [
        u for u in population if u.user_type is UserType.OCCASIONAL
    ]
    assert occasional
    assert all(u.dedup_only for u in occasional)
    assert all(u.store_files + u.retrieve_files <= 3 for u in occasional)


def test_active_days_sorted_within_window(population):
    config = WorkloadConfig()
    for user in population:
        days = user.active_days
        assert list(days) == sorted(set(days))
        assert 0 <= days[0] < config.observation_days
        assert days[-1] < config.observation_days


def test_first_day_cohort_share(population):
    first_day = sum(1 for u in population if u.first_day == 0)
    assert first_day / len(population) == pytest.approx(0.40, abs=0.04)


def test_same_day_sync_only_for_mixed(population):
    for user in population:
        if user.same_day_sync:
            assert user.user_type is UserType.MIXED


def test_validation():
    with pytest.raises(ValueError):
        build_population(0)
    with pytest.raises(ValueError):
        build_population(10, n_pc_only_users=-1)
