"""Tests for reprolint (:mod:`repro.devtools`).

Every rule is regression-tested against paired fixture snippets under
``tests/data/lint/``: the positive fixture must fire with the right rule
id, the negative fixture must stay completely silent.  The suite also
covers the ``--json`` round trip, the baseline and suppression
mechanisms, CLI exit codes, and — the acceptance-critical case — that the
S1 cross-check fails on a *mutated copy* of the real ``logs/`` trio when
a TSV column is reordered.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import Finding, Severity, lint_paths, load_builtin_rules

DATA = Path(__file__).resolve().parent / "data" / "lint"
REPO = Path(__file__).resolve().parent.parent
SHIPPED = REPO / "src" / "repro"

POSITIVE = [
    ("d1_pos.py", "D1"),
    ("d2_pos.py", "D2"),
    ("d3_pos.py", "D3"),
    ("d4_pos.py", "D4"),
    ("f1_pos.py", "F1"),
    ("m1_pos.py", "M1"),
    ("m1_transitive_pos.py", "M1"),
    ("s1_pos", "S1"),
    ("s2_pos", "S2"),
    ("w1_pos.py", "W1"),
    ("xmod_d2_pos", "D2"),
]
NEGATIVE = [
    "d1_neg.py",
    "d2_neg.py",
    "d3_neg.py",
    "d4_neg.py",
    "f1_neg.py",
    "m1_neg.py",
    "m1_transitive_neg.py",
    "s1_neg",
    "s2_neg",
    "w1_neg.py",
    "xmod_d2_neg",
]


def rule_ids(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------


def test_all_nine_rules_registered():
    registry = load_builtin_rules()
    assert set(registry) >= {
        "D1", "D2", "D3", "D4", "S1", "S2", "M1", "F1", "W1",
    }
    assert registry["S1"].scope == "project"
    # D2 and M1 graduated from file scope to project scope in v2.
    assert registry["D2"].scope == "project"
    assert registry["M1"].scope == "project"
    assert registry["S2"].scope == "project"
    assert registry["D4"].scope == "file"
    assert registry["F1"].severity is Severity.WARNING
    assert registry["W1"].severity is Severity.WARNING


# ----------------------------------------------------------------------
# Paired fixtures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("fixture,rule", POSITIVE)
def test_positive_fixture_fires(fixture, rule):
    findings = lint_paths([DATA / fixture])
    assert rule_ids(findings) == {rule}, [f.render() for f in findings]
    assert all(f.line > 0 for f in findings)


def test_d1_reports_each_source_once():
    findings = lint_paths([DATA / "d1_pos.py"])
    # time.time, np.random.seed, argless default_rng, random.random.
    assert len(findings) == 4
    assert len({(f.line, f.col) for f in findings}) == 4


@pytest.mark.parametrize("fixture", NEGATIVE)
def test_negative_fixture_silent(fixture):
    findings = lint_paths([DATA / fixture])
    assert findings == [], [f.render() for f in findings]


def test_shipped_tree_is_clean():
    findings = lint_paths([SHIPPED])
    assert findings == [], [f.render() for f in findings]


# ----------------------------------------------------------------------
# Cross-module provenance and transitive fork safety (the v2 tentpole)
# ----------------------------------------------------------------------


def test_d2_cross_module_provenance():
    # Linted together, the call graph proves the helper in streams.py
    # returns a SeedSequence child: the consumer's sink is clean.
    assert lint_paths([DATA / "xmod_d2_neg"]) == []
    # The v1 per-file view cannot prove that: the same consumer linted
    # alone (helper module out of scope) is conservatively flagged.
    findings = lint_paths([DATA / "xmod_d2_neg" / "consumers.py"])
    assert rule_ids(findings) == {"D2"}
    assert "stream_for" in findings[0].message
    # Resolution must not launder arbitrary values: a helper that
    # resolves fine but has no seed in its dataflow stays flagged.
    assert rule_ids(lint_paths([DATA / "xmod_d2_pos"])) == {"D2"}


def test_m1_transitive_chain_reported():
    (finding,) = lint_paths([DATA / "m1_transitive_pos.py"])
    assert finding.rule == "M1"
    assert "transitively closes over RNG state" in finding.message
    # The rule names the route from the submitted worker to the capture.
    assert "worker -> mid -> draw" in finding.message


# ----------------------------------------------------------------------
# Suppressions, baselines, JSON round trip
# ----------------------------------------------------------------------


def test_inline_suppressions_mute_findings():
    assert lint_paths([DATA / "suppressed.py"]) == []


def test_suppression_covers_multiline_statement(tmp_path):
    victim = tmp_path / "multiline.py"
    victim.write_text(
        "import time\n"
        "NOW = time.time(\n"
        ")  # reprolint: disable=D1\n"
    )
    # The comment sits on the statement's last line; the finding is
    # reported at the first.  The whole span is covered.
    assert lint_paths([victim]) == []


def test_suppression_on_compound_header_does_not_cover_body(tmp_path):
    victim = tmp_path / "block.py"
    victim.write_text(
        "import time\n"
        "if True:  # reprolint: disable=D1\n"
        "    NOW = time.time()\n"
    )
    # Widening stops at simple statements: a disable comment on an
    # ``if`` header must not silence the whole block.
    assert rule_ids(lint_paths([victim])) == {"D1"}


def test_suppression_is_rule_specific(tmp_path):
    victim = tmp_path / "wrong_rule.py"
    victim.write_text(
        "import time\n"
        "NOW = time.time()  # reprolint: disable=F1\n"
    )
    findings = lint_paths([victim])
    assert rule_ids(findings) == {"D1"}


def test_baseline_filters_known_findings(tmp_path):
    target = DATA / "f1_pos.py"
    findings = lint_paths([target])
    assert findings
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps([f.to_dict() for f in findings]))

    assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
    # A fresh violation still gates even with the baseline loaded.
    assert main(["lint", str(DATA / "d3_pos.py"),
                 "--baseline", str(baseline)]) == 1


def test_baseline_with_unknown_rule_ids_tolerated(tmp_path):
    target = DATA / "f1_pos.py"
    entries = [f.to_dict() for f in lint_paths([target])]
    # A baseline may carry entries for rules that no longer exist (the
    # rule was retired, or the file came from a newer reprolint).
    entries.append(
        {
            "rule": "Z9",
            "path": "gone.py",
            "line": 1,
            "col": 0,
            "severity": "error",
            "message": "finding from a retired rule",
        }
    )
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(entries))
    assert main(["lint", str(target), "--baseline", str(baseline)]) == 0


def test_unreadable_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bogus.json"
    bad.write_text("not json")
    assert main(["lint", str(DATA / "f1_neg.py"),
                 "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_json_output_round_trips(capsys):
    target = DATA / "d2_pos.py"
    assert main(["lint", str(target), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    parsed = [Finding.from_dict(entry) for entry in payload["findings"]]
    assert parsed == lint_paths([target])
    assert [p.to_dict() for p in parsed] == payload["findings"]


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------


def test_cli_clean_run_exits_zero(capsys):
    assert main(["lint", str(SHIPPED)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_reports_rule_ids_on_positives(capsys):
    assert main(["lint", str(DATA / "m1_pos.py")]) == 1
    out = capsys.readouterr().out
    assert "M1" in out and "error" in out


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_unknown_rule_id_is_usage_error(capsys):
    assert main(["lint", str(DATA / "f1_neg.py"), "--rules", "D1,ZZ9",
                 "--no-cache"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_rule_count_reflects_selection(capsys):
    target = str(DATA / "f1_neg.py")
    assert main(["lint", target, "--rules", "D1,M1", "--no-cache"]) == 0
    assert "clean (2 rule(s))" in capsys.readouterr().out
    # Without a selection the full registry count is reported.
    assert main(["lint", target, "--no-cache"]) == 0
    n_rules = len(load_builtin_rules())
    assert f"clean ({n_rules} rule(s))" in capsys.readouterr().out


def test_unparseable_file_is_e0_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    findings = lint_paths([broken])
    assert rule_ids(findings) == {"E0"}
    assert findings[0].severity is Severity.ERROR


# ----------------------------------------------------------------------
# S1 against the real logs/ trio
# ----------------------------------------------------------------------


def _copy_logs_trio(tmp_path):
    for name in ("schema.py", "io.py", "columnar.py"):
        shutil.copy(SHIPPED / "logs" / name, tmp_path / name)


def test_s1_clean_on_faithful_copy(tmp_path):
    _copy_logs_trio(tmp_path)
    assert lint_paths([tmp_path]) == []


def test_s1_fails_when_io_column_reordered(tmp_path):
    _copy_logs_trio(tmp_path)
    io_path = tmp_path / "io.py"
    text = io_path.read_text()
    block = '    "kind",\n    "direction",\n'
    assert text.count(block) == 1, "TSV_COLUMNS layout changed; update test"
    io_path.write_text(text.replace(block, '    "direction",\n    "kind",\n'))

    findings = lint_paths([tmp_path])
    assert rule_ids(findings) == {"S1"}
    (finding,) = findings
    assert finding.path.endswith("io.py")
    assert "TSV_COLUMNS" in finding.message


def test_s1_fails_when_columnar_drops_a_column(tmp_path):
    _copy_logs_trio(tmp_path)
    columnar_path = tmp_path / "columnar.py"
    text = columnar_path.read_text()
    line = '    ("proxied", "bool"),\n'
    assert text.count(line) == 1, "COLUMNS layout changed; update test"
    columnar_path.write_text(text.replace(line, ""))

    findings = lint_paths([tmp_path])
    assert rule_ids(findings) == {"S1"}
    assert "missing: proxied" in findings[0].message


# ----------------------------------------------------------------------
# S2 against the real telemetry/faults pair
# ----------------------------------------------------------------------


def _copy_telemetry_pair(tmp_path):
    shutil.copy(SHIPPED / "faults.py", tmp_path / "faults.py")
    shutil.copy(SHIPPED / "service" / "telemetry.py", tmp_path / "telemetry.py")


def test_s2_clean_on_faithful_telemetry_pair(tmp_path):
    _copy_telemetry_pair(tmp_path)
    assert lint_paths([tmp_path]) == []


def test_s2_fails_when_ledger_grows_unmapped_counter(tmp_path):
    """A metadata-tier counter added to FaultStats but not to the
    snapshot's DEFAULT_METADATA_AVAILABILITY shape must fail review."""
    _copy_telemetry_pair(tmp_path)
    faults_path = tmp_path / "faults.py"
    text = faults_path.read_text()
    anchor = "    failover_reads: int = 0\n"
    assert text.count(anchor) == 1, "FaultStats layout changed; update test"
    faults_path.write_text(
        text.replace(anchor, anchor + "    stale_writes_refused: int = 0\n")
    )

    findings = lint_paths([tmp_path])
    assert rule_ids(findings) == {"S2"}
    (finding,) = findings
    assert finding.path.endswith("telemetry.py")
    assert "stale_writes_refused" in finding.message
    assert "DEFAULT_METADATA_AVAILABILITY" in finding.message


# ----------------------------------------------------------------------
# Traversal semantics
# ----------------------------------------------------------------------


def test_explicit_non_py_target_is_linted(tmp_path):
    script = tmp_path / "runme"  # no .py suffix
    script.write_text("import time\nNOW = time.time()\n")
    assert rule_ids(lint_paths([script])) == {"D1"}


def test_overlapping_and_symlinked_targets_dedupe(tmp_path):
    real = tmp_path / "real"
    real.mkdir()
    victim = real / "victim.py"
    victim.write_text("import time\nNOW = time.time()\n")
    link = tmp_path / "link"
    link.symlink_to(real, target_is_directory=True)

    # The same file reached four ways (directly, via its directory, via a
    # symlinked directory, and via the parent) yields exactly one finding.
    findings = lint_paths([real, link, victim, tmp_path])
    assert len(findings) == 1
    assert findings[0].rule == "D1"


def test_f1_exempts_walked_tests_dirs_but_not_explicit_files(tmp_path):
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    victim = tests_dir / "helper.py"
    victim.write_text("def check(x):\n    return x == 0.5\n")

    # Walked through a tests/ directory: F1 stands down.
    assert lint_paths([tmp_path]) == []
    # Named explicitly (how fixtures are linted): F1 fires.
    assert rule_ids(lint_paths([victim])) == {"F1"}


# ----------------------------------------------------------------------
# The streaming-pipeline worker entry points
# ----------------------------------------------------------------------

#: Every module the paper-scale streaming pipeline ships workers or
#: worker-consumed code in.  New entry points land here so the fork-safety
#: (M1) and seed-provenance (D2) gates keep covering them explicitly even
#: if the whole-tree sweep is ever baselined.
STREAMING_MODULES = [
    SHIPPED / "workload" / "parallel.py",
    SHIPPED / "logs" / "parts.py",
    SHIPPED / "logs" / "npz.py",
    SHIPPED / "logs" / "columnar.py",
    SHIPPED / "core" / "streaming.py",
]


def test_streaming_worker_entry_points_stay_fork_safe():
    """`_generate_shard_part` and friends: module-level workers, seeds as
    task fields — no closure state, no non-seed RNG construction."""
    findings = lint_paths(STREAMING_MODULES, rule_ids={"M1", "D2"})
    assert findings == [], [f.render() for f in findings]


def test_streaming_worker_anti_pattern_fires():
    """The fixture mirroring a closure-captured part writer must fire."""
    findings = lint_paths([DATA / "m1_streaming_pos.py"])
    assert rule_ids(findings) == {"M1"}, [f.render() for f in findings]


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([DATA / "f1_neg.py"], rule_ids={"F1", "ZZ9"})


def test_rule_subset_selection():
    findings = lint_paths([DATA / "d1_pos.py"], rule_ids={"D3"})
    assert findings == []


def test_whole_repo_is_clean():
    """The acceptance gate: src, tests and benchmarks all pass with the
    full v2 rule set (fixture trees under data/ are skipped by design)."""
    findings = lint_paths([SHIPPED, REPO / "tests", REPO / "benchmarks"])
    assert findings == [], [f.render() for f in findings]
