"""Tests for empirical distribution utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    ccdf_points,
    ecdf,
    fraction_below,
    histogram,
    log_bins,
    quantiles,
)

floats_list = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200
)


class TestEcdf:
    def test_simple_values(self):
        e = ecdf([1.0, 2.0, 3.0, 4.0])
        assert e.evaluate(2.0) == pytest.approx(0.5)
        assert e.evaluate(0.5) == pytest.approx(0.0)
        assert e.evaluate(10.0) == pytest.approx(1.0)

    def test_median(self):
        assert ecdf([1, 2, 3]).median == 2

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            ecdf([1.0]).quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])

    @given(values=floats_list)
    @settings(max_examples=100)
    def test_cdf_is_monotone_and_bounded(self, values):
        e = ecdf(values)
        probs = e.evaluate(np.sort(np.asarray(values)))
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    @given(values=floats_list)
    @settings(max_examples=100)
    def test_quantile_inverts_cdf(self, values):
        e = ecdf(values)
        for q in (0.1, 0.5, 0.9):
            v = float(e.quantile(q)[0])
            assert e.evaluate(v) >= q - 1e-12


class TestCcdf:
    def test_points_follow_rank_convention(self):
        xs, probs = ccdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        # P(X >= min) = 1, P(X >= max) = 1/n.
        assert probs[0] == pytest.approx(1.0)
        assert probs[-1] == pytest.approx(1.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_points([])


class TestLogBins:
    def test_edges_cover_range(self):
        edges = log_bins(1.0, 1000.0, 5)
        assert edges[0] == pytest.approx(1.0)
        assert edges[-1] == pytest.approx(1000.0)
        assert np.all(np.diff(edges) > 0)

    def test_bins_per_decade(self):
        edges = log_bins(1.0, 100.0, 10)
        assert len(edges) == 21

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)
        with pytest.raises(ValueError):
            log_bins(10.0, 1.0)


class TestHistogram:
    def test_counts(self):
        h = histogram([0.5, 1.5, 1.6, 2.5], edges=[0, 1, 2, 3])
        assert list(h.counts) == [1, 2, 1]

    def test_fractions_sum_to_one(self):
        h = histogram([0.5, 1.5, 2.5], edges=[0, 1, 2, 3])
        assert h.fractions.sum() == pytest.approx(1.0)

    def test_densities_integrate_to_one(self):
        h = histogram(np.random.default_rng(0).uniform(0, 3, 1000),
                      edges=[0, 1, 2, 3])
        assert float((h.densities * np.diff(h.edges)).sum()) == pytest.approx(1.0)

    def test_out_of_range_dropped(self):
        h = histogram([-1.0, 5.0, 0.5], edges=[0, 1])
        assert h.counts.sum() == 1

    def test_log_centers_geometric(self):
        h = histogram([], edges=[1.0, 100.0])
        assert h.log_centers[0] == pytest.approx(10.0)

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram([1.0], edges=[1, 0, 2])

    def test_empty_histogram_densities_zero(self):
        h = histogram([], edges=[0, 1, 2])
        assert np.all(h.densities == 0)


def test_quantiles_match_numpy():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    out = quantiles(data, (0.0, 0.5, 1.0))
    assert list(out) == [1.0, 3.0, 5.0]


def test_quantiles_empty_rejected():
    with pytest.raises(ValueError):
        quantiles([])


def test_fraction_below():
    assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)


def test_fraction_below_empty_rejected():
    with pytest.raises(ValueError):
        fraction_below([], 1.0)
