"""Unit tests for the cross-module linking layer (``devtools.callgraph``)
and the per-file summary extraction it consumes.

These pin the machinery the project-scope rules are built on: module
naming, call-reference resolution through imports / lexical scopes /
instance methods, the returns-seedish fixpoint, the caller index, and
the transitive RNG-closure witness with its explanatory chain.
"""

from pathlib import Path

from repro.devtools import lint_paths
from repro.devtools.callgraph import Project
from repro.devtools.source import SourceFile
from repro.devtools.summaries import extract_facts, module_name_for

DATA = Path(__file__).resolve().parent / "data" / "lint"


def facts_for(path: Path, text: str | None = None) -> dict:
    if text is not None:
        path.write_text(text)
    return extract_facts(SourceFile.load(path, explicit=False))


def project_from(*paths: Path) -> Project:
    return Project([facts_for(p) for p in paths])


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------


def test_module_name_walks_up_through_packages(tmp_path):
    pkg = tmp_path / "pkg"
    sub = pkg / "sub"
    sub.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (sub / "__init__.py").write_text("")
    mod = sub / "mod.py"
    mod.write_text("")

    assert module_name_for(mod) == "pkg.sub.mod"
    assert module_name_for(sub / "__init__.py") == "pkg.sub"


def test_module_name_for_loose_file_is_its_stem(tmp_path):
    loose = tmp_path / "loose.py"
    loose.write_text("")
    assert module_name_for(loose) == "loose"


# ----------------------------------------------------------------------
# Reference resolution
# ----------------------------------------------------------------------

HELPERS_SRC = """\
def make():
    return 1


class Tool:
    def run(self):
        return self.prep()

    def prep(self):
        return 0
"""

MAIN_SRC = """\
import helpers
from helpers import make


def outer():
    def inner():
        return 0

    return inner() + make() + helpers.make()


def user():
    tool = Tool()
    return tool.run()


from helpers import Tool  # noqa: E402  (import position is irrelevant here)
"""


def test_resolve_ref_all_forms(tmp_path):
    helpers = tmp_path / "helpers.py"
    main = tmp_path / "main.py"
    helpers.write_text(HELPERS_SRC)
    main.write_text(MAIN_SRC)
    project = project_from(helpers, main)
    hf = project.by_path[str(helpers)]
    mf = project.by_path[str(main)]

    def resolve(facts, qual, ref):
        return project.resolve_ref(facts, qual, ref)

    # Bare name through a from-import.
    assert resolve(mf, "outer", {"kind": "dotted", "dotted": "make"}) == (
        str(helpers), "make",
    )
    # Dotted module attribute.
    assert resolve(mf, "outer", {"kind": "dotted", "dotted": "helpers.make"}) == (
        str(helpers), "make",
    )
    # Bare name through the lexical scope chain (innermost first).
    assert resolve(mf, "outer", {"kind": "dotted", "dotted": "inner"}) == (
        str(main), "outer.inner",
    )
    # Method on an imported, locally constructed class.
    assert resolve(mf, "user", {"kind": "method", "cls": "Tool", "attr": "run"}) == (
        str(helpers), "Tool.run",
    )
    # self-call within the defining class.
    assert resolve(hf, "Tool.run", {"kind": "method", "cls": "Tool", "attr": "prep"}) == (
        str(helpers), "Tool.prep",
    )
    # Unresolvable names resolve to None, never to a wrong target.
    assert resolve(mf, "outer", {"kind": "dotted", "dotted": "nowhere"}) is None
    assert resolve(mf, "outer", None) is None


def test_caller_index_finds_cross_module_call_sites(tmp_path):
    helpers = tmp_path / "helpers.py"
    main = tmp_path / "main.py"
    helpers.write_text(HELPERS_SRC)
    main.write_text(MAIN_SRC)
    project = project_from(helpers, main)

    callers = project.callers((str(helpers), "make"))
    # ``make`` is called twice from ``outer`` (bare and dotted form).
    assert [(f["path"], qual) for f, qual, _ in callers] == [
        (str(main), "outer"), (str(main), "outer"),
    ]


# ----------------------------------------------------------------------
# Returns-seedish fixpoint
# ----------------------------------------------------------------------


def test_returns_seedish_chains_across_modules(tmp_path):
    a = tmp_path / "seedsrc.py"
    a.write_text(
        "def leaf(root, index):\n"
        "    children = root.spawn(index + 1)\n"
        "    return children[index]\n"
    )
    b = tmp_path / "relay.py"
    b.write_text(
        "from seedsrc import leaf\n"
        "\n"
        "def via(root, i):\n"
        "    return leaf(root, i)\n"
        "\n"
        "def opaque(i):\n"
        "    return i * 3\n"
    )
    project = project_from(a, b)
    assert project.returns_seedish((str(a), "leaf"))
    # One hop across the module boundary.
    assert project.returns_seedish((str(b), "via"))
    assert not project.returns_seedish((str(b), "opaque"))


def test_d2_flags_bad_caller_at_call_site_via_parameter(tmp_path):
    """The caller-chasing direction: a factory whose parameter feeds
    default_rng() is judged at each call site, not at the definition."""
    (tmp_path / "factory.py").write_text(
        "import numpy as np\n"
        "\n"
        "def make_rng(base, offset):\n"
        "    return np.random.default_rng(base + offset)\n"
    )
    (tmp_path / "callers.py").write_text(
        "from factory import make_rng\n"
        "\n"
        "def build_bad(n):\n"
        "    return [make_rng(i, 3) for i in range(n)]\n"
        "\n"
        "def build_good(seed_seq, n):\n"
        "    kids = seed_seq.spawn(n)\n"
        "    return [make_rng(kids[i], 3) for i in range(n)]\n"
    )
    findings = lint_paths([tmp_path])
    assert {f.rule for f in findings} == {"D2"}
    (finding,) = findings
    assert finding.path.endswith("callers.py")
    assert "via parameter 'base' of make_rng()" in finding.message


# ----------------------------------------------------------------------
# RNG-closure witness
# ----------------------------------------------------------------------


def test_rng_witness_reports_transitive_chain():
    project = project_from(DATA / "m1_transitive_pos.py")
    path = str(DATA / "m1_transitive_pos.py")

    direct = project.rng_witness((path, "simulate.draw"))
    assert direct == ([], ["rng"])

    transitive = project.rng_witness((path, "simulate.worker"))
    assert transitive == (["mid", "draw"], ["rng"])

    # ``simulate`` constructs the rng locally — it does not capture it.
    assert project.rng_witness((path, "simulate")) is None


def test_rng_witness_clean_for_argument_passing_workers():
    project = project_from(DATA / "m1_transitive_neg.py")
    path = str(DATA / "m1_transitive_neg.py")
    for qual in ("draw", "mid", "worker"):
        assert project.rng_witness((path, qual)) is None
