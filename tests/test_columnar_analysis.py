"""Columnar fast paths vs. record-path implementations: exact equivalence.

The vectorized sessionization, tallies, intervals and profiles must
recover *identical* results to the per-record reference implementations —
these tests compare them element for element on a generated trace with
mobile, PC and multi-device users.  Ordering differs by construction (the
record path walks users in first-appearance order, the columnar path in
ascending ``user_id``), so list comparisons sort both sides on a total
key first.
"""

import numpy as np
import pytest

from repro.core.report import analyze_trace
from repro.core.sessions import (
    classify_sessions,
    file_operation_intervals,
    file_operation_intervals_columnar,
    sessionize,
    sessionize_columnar,
)
from repro.core.usage import profile_users, profile_users_columnar
from repro.logs.columnar import as_columnar
from repro.logs.stream import (
    devices_by_user,
    devices_by_user_columnar,
    tally_by_hour,
    tally_by_hour_columnar,
    tally_by_user,
    tally_by_user_columnar,
)
from repro.workload.generator import GeneratorOptions, generate_trace
from repro.workload.parallel import generate_columnar_parallel


@pytest.fixture(scope="module")
def records():
    return generate_trace(
        90,
        n_pc_only_users=20,
        options=GeneratorOptions(max_chunks_per_file=4),
        seed=7,
    )


@pytest.fixture(scope="module")
def trace(records):
    return as_columnar(records)


def _session_key(session):
    return (session.user_id, session.records[0].timestamp)


def test_interval_multiset_identical(records, trace):
    record_intervals = file_operation_intervals(records)
    columnar_intervals = file_operation_intervals_columnar(trace)
    assert record_intervals.shape == columnar_intervals.shape
    # Same multiset (user iteration order differs); exact, not approx.
    assert (
        np.sort(record_intervals) == np.sort(columnar_intervals)
    ).all()


def test_sessionize_equivalent(records, trace):
    record_sessions = sorted(sessionize(records), key=_session_key)
    columnar = sessionize_columnar(trace)
    columnar_sessions = columnar.to_sessions()
    assert len(columnar_sessions) == len(record_sessions)
    # Record-for-record equality covers boundaries, membership and order.
    for ours, reference in zip(columnar_sessions, record_sessions):
        assert ours.user_id == reference.user_id
        assert ours.records == reference.records
        assert ours.session_type == reference.session_type


def test_session_aggregates_match_materialized(records, trace):
    columnar = sessionize_columnar(trace)
    sessions = columnar.to_sessions()
    for i, session in enumerate(sessions):
        assert columnar.user_id[i] == session.user_id
        assert columnar.start[i] == session.start
        assert columnar.end[i] == session.end
        assert columnar.n_store_ops[i] == session.n_store_ops
        assert columnar.n_retrieve_ops[i] == session.n_retrieve_ops
        assert columnar.store_volume[i] == session.store_volume
        assert columnar.retrieve_volume[i] == session.retrieve_volume
    assert columnar.session_types() == [s.session_type for s in sessions]


def test_classify_equivalent(records, trace):
    assert sessionize_columnar(trace).classify() == classify_sessions(
        sessionize(records)
    )


def test_tallies_equivalent(records, trace):
    assert tally_by_user_columnar(trace) == tally_by_user(records)
    assert tally_by_hour_columnar(trace) == tally_by_hour(records)


def test_devices_equivalent(records, trace):
    assert devices_by_user_columnar(trace) == devices_by_user(records)


def test_profiles_equivalent(records, trace):
    reference = sorted(profile_users(records), key=lambda p: p.user_id)
    assert profile_users_columnar(trace) == reference


def test_analyze_trace_engines_agree(records, trace):
    record_report = analyze_trace(records, fit_size_model=False)
    columnar_report = analyze_trace(
        trace, fit_size_model=False, engine="columnar"
    )
    assert (
        columnar_report.interval_model.tau == record_report.interval_model.tau
    )
    assert columnar_report.session_shares == record_report.session_shares
    assert (
        columnar_report.burstiness_fraction
        == record_report.burstiness_fraction
    )
    assert columnar_report.upload_only_share == pytest.approx(
        record_report.upload_only_share
    )
    assert columnar_report.never_retrieve_fraction == pytest.approx(
        record_report.never_retrieve_fraction
    )
    assert np.isnan(columnar_report.storage_slope_mb) == np.isnan(
        record_report.storage_slope_mb
    )
    if not np.isnan(record_report.storage_slope_mb):
        assert columnar_report.storage_slope_mb == pytest.approx(
            record_report.storage_slope_mb
        )


def test_analyze_trace_accepts_columnar_for_record_engine(trace, records):
    report = analyze_trace(trace, fit_size_model=False, engine="records")
    reference = analyze_trace(records, fit_size_model=False)
    assert report.session_shares == reference.session_shares


def test_analyze_trace_rejects_unknown_engine(records):
    with pytest.raises(ValueError, match="unknown analysis engine"):
        analyze_trace(records, engine="quantum")


def test_generate_columnar_parallel_matches_serial(records):
    columnar = generate_columnar_parallel(
        90,
        n_pc_only_users=20,
        options=GeneratorOptions(max_chunks_per_file=4),
        seed=7,
        n_shards=3,
        n_workers=2,
    )
    assert columnar.to_records() == records


def test_generate_columnar_parallel_single_worker(records):
    columnar = generate_columnar_parallel(
        90,
        n_pc_only_users=20,
        options=GeneratorOptions(max_chunks_per_file=4),
        seed=7,
        n_shards=4,
        n_workers=1,
    )
    assert columnar.to_records() == records


def test_sessionize_columnar_empty_and_bad_tau(trace):
    from repro.logs.columnar import ColumnarTrace

    empty = sessionize_columnar(ColumnarTrace.empty())
    assert empty.n_sessions == 0
    assert empty.to_sessions() == []
    with pytest.raises(ValueError):
        sessionize_columnar(trace, tau=0.0)
    with pytest.raises(ValueError):
        empty.classify()
