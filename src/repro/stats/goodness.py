"""Goodness-of-fit tests.

The paper validates its mixture-exponential fits with chi-square
goodness-of-fit tests at the 5% significance level.  This module implements
the chi-square statistic over (log-spaced) bins together with the chi-square
survival function, built on a from-scratch regularized incomplete gamma
(series + continued-fraction evaluation, Numerical-Recipes style), so the
library itself has no scipy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

_MAX_ITERATIONS = 500
_EPS = 1e-14


def _gamma_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma P(a, x) by series expansion."""
    if x <= 0:
        return 0.0
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(_MAX_ITERATIONS):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_continued_fraction(a: float, x: float) -> float:
    """Upper regularized incomplete gamma Q(a, x) by continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def regularized_gamma_p(a: float, x: float) -> float:
    """Lower regularized incomplete gamma function P(a, x)."""
    if a <= 0:
        raise ValueError("a must be positive")
    if x < 0:
        raise ValueError("x must be non-negative")
    if x == 0:
        return 0.0
    if x < a + 1.0:
        return min(1.0, _gamma_series(a, x))
    return min(1.0, max(0.0, 1.0 - _gamma_continued_fraction(a, x)))


def chi2_sf(statistic: float, dof: int) -> float:
    """Chi-square survival function P(Chi2_dof >= statistic)."""
    if dof < 1:
        raise ValueError("dof must be >= 1")
    if statistic < 0:
        raise ValueError("statistic must be non-negative")
    return max(0.0, min(1.0, 1.0 - regularized_gamma_p(dof / 2.0, statistic / 2.0)))


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square goodness-of-fit test."""

    statistic: float
    dof: int
    p_value: float
    n_bins: int

    def passes(self, significance: float = 0.05) -> bool:
        """True when the fit is *not* rejected at the given level."""
        return self.p_value >= significance


def chi_square_gof(
    samples: np.ndarray,
    model_cdf: Callable[[np.ndarray], np.ndarray],
    *,
    edges: Sequence[float] | None = None,
    n_bins: int = 30,
    n_fitted_params: int = 0,
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Chi-square goodness-of-fit of ``samples`` against ``model_cdf``.

    Bins with expected count below ``min_expected`` are merged rightward
    (the standard validity fix for sparse tails).  Degrees of freedom are
    ``merged_bins - 1 - n_fitted_params``.

    Parameters
    ----------
    samples:
        Observed positive data.
    model_cdf:
        Vectorized CDF of the fitted model.
    edges:
        Bin edges; defaults to log-spaced bins covering the data.
    n_fitted_params:
        Parameters estimated from the same data (reduces dof).
    """
    data = np.asarray(samples, dtype=float).ravel()
    if data.size < 10:
        raise ValueError("chi-square test needs at least 10 samples")
    if edges is None:
        lo, hi = data.min(), data.max()
        if lo <= 0:
            lo = max(1e-12, lo + 1e-12)
        edges = np.logspace(
            math.log10(lo * 0.999), math.log10(hi * 1.001), n_bins + 1
        )
    edges_arr = np.asarray(edges, dtype=float)
    observed, _ = np.histogram(data, bins=edges_arr)
    cdf_vals = np.asarray(model_cdf(edges_arr), dtype=float)
    expected_probs = np.diff(cdf_vals)
    expected = expected_probs * data.size

    # Merge sparse bins rightward.
    merged_obs: list[float] = []
    merged_exp: list[float] = []
    acc_obs, acc_exp = 0.0, 0.0
    for o, e in zip(observed, expected):
        acc_obs += o
        acc_exp += e
        if acc_exp >= min_expected:
            merged_obs.append(acc_obs)
            merged_exp.append(acc_exp)
            acc_obs, acc_exp = 0.0, 0.0
    if acc_exp > 0 and merged_exp:
        merged_obs[-1] += acc_obs
        merged_exp[-1] += acc_exp
    elif acc_exp > 0:
        merged_obs.append(acc_obs)
        merged_exp.append(acc_exp)

    obs_arr = np.asarray(merged_obs)
    exp_arr = np.asarray(merged_exp)
    valid = exp_arr > 0
    statistic = float(np.sum((obs_arr[valid] - exp_arr[valid]) ** 2 / exp_arr[valid]))
    dof = max(1, int(valid.sum()) - 1 - n_fitted_params)
    return ChiSquareResult(
        statistic=statistic,
        dof=dof,
        p_value=chi2_sf(statistic, dof),
        n_bins=int(valid.sum()),
    )
