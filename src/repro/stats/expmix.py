"""Mixture-of-exponentials models fit by expectation-maximization.

Section 3.1.4 of the paper models the average file size of each session with
a mixture of exponential densities

    f(x) = sum_i alpha_i (1 / mu_i) exp(-x / mu_i)

where each mu_i reads as a "typical file size" and alpha_i as the fraction of
sessions around that size.  The paper selects the component count n
iteratively: increase n until an added component's weight drops below 0.001
(their fit lands on n = 3 for both session types, Table 2).

This module implements the EM fit, the automatic order selection, CCDF
evaluation and sampling — all from scratch on numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExponentialMixture:
    """A fitted mixture of exponentials, components sorted by ascending mean.

    Attributes
    ----------
    weights:
        Component weights alpha_i, summing to one.
    means:
        Component means mu_i (same unit as the fitted data).
    log_likelihood:
        Total log-likelihood at convergence.
    n_iterations, converged:
        EM diagnostics.
    """

    weights: tuple[float, ...]
    means: tuple[float, ...]
    log_likelihood: float
    n_iterations: int
    converged: bool

    @property
    def n_components(self) -> int:
        return len(self.weights)

    def pdf(self, x: float | np.ndarray) -> np.ndarray:
        """Mixture density at ``x`` (zero for negative x)."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros_like(x_arr)
        pos = x_arr >= 0
        for alpha, mu in zip(self.weights, self.means):
            out[pos] += alpha / mu * np.exp(-x_arr[pos] / mu)
        return out

    def ccdf(self, x: float | np.ndarray) -> np.ndarray:
        """P(X >= x), the curve plotted in the paper's Fig 6."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.zeros_like(x_arr)
        for alpha, mu in zip(self.weights, self.means):
            out += alpha * np.exp(-np.clip(x_arr, 0.0, None) / mu)
        return out

    @property
    def mean(self) -> float:
        """Overall mixture mean."""
        return float(sum(a * m for a, m in zip(self.weights, self.means)))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples from the mixture."""
        choices = rng.choice(self.n_components, size=n, p=np.asarray(self.weights))
        out = np.empty(n)
        for i, mu in enumerate(self.means):
            mask = choices == i
            out[mask] = rng.exponential(mu, size=int(mask.sum()))
        return out

    def component_table(self) -> list[tuple[float, float]]:
        """(alpha_i, mu_i) rows in ascending-mean order, as in Table 2."""
        return list(zip(self.weights, self.means))


def fit_exponential_mixture(
    samples: np.ndarray,
    n_components: int,
    *,
    max_iterations: int = 2000,
    tol: float = 1e-10,
    seed: int = 0,
    init: str = "quantile",
) -> ExponentialMixture:
    """Fit an ``n_components`` exponential mixture to positive samples by EM.

    ``init="quantile"`` spreads the component means over evenly spaced data
    quantiles so that widely separated scales (1 MB photos vs 150 MB
    videos) each attract a component; ``init="random"`` draws the quantile
    positions at random, giving multi-restart schemes genuinely diverse
    starting points.
    """
    data = np.asarray(samples, dtype=float).ravel()
    if data.size < n_components:
        raise ValueError(f"need at least {n_components} samples, got {data.size}")
    if np.any(data <= 0) or not np.all(np.isfinite(data)):
        raise ValueError("exponential mixture requires strictly positive data")
    if n_components < 1:
        raise ValueError("n_components must be >= 1")

    rng = np.random.default_rng(seed)
    if init == "quantile":
        qs = (np.arange(n_components) + 0.5) / n_components
    elif init == "random":
        qs = np.sort(rng.uniform(0.02, 0.998, size=n_components))
    elif init == "tail":
        # Seed components geometrically toward the upper tail, so a rare
        # heavy component (e.g. 2% of sessions around 77 MB) gets its own
        # starting mean instead of being absorbed by the bulk.
        qs = 1.0 - np.logspace(
            np.log10(0.5), np.log10(0.003), n_components
        )
    else:
        raise ValueError(f"unknown init {init!r}")
    means = np.quantile(data, qs).astype(float)
    means = np.maximum.accumulate(np.clip(means, data.min() * 0.5, None))
    # Break exact ties.
    means *= 1.0 + 1e-6 * rng.standard_normal(n_components)
    means = np.clip(means, 1e-12, None)
    weights = np.full(n_components, 1.0 / n_components)

    prev_ll = -math.inf
    ll = prev_ll
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        log_parts = (
            np.log(weights)[None, :]
            - np.log(means)[None, :]
            - data[:, None] / means[None, :]
        )
        row_max = log_parts.max(axis=1)
        log_norm = row_max + np.log(
            np.sum(np.exp(log_parts - row_max[:, None]), axis=1)
        )
        ll = float(np.mean(log_norm))
        resp = np.exp(log_parts - log_norm[:, None])

        resp_sums = np.clip(resp.sum(axis=0), 1e-12, None)
        weights = resp_sums / data.size
        means = (resp * data[:, None]).sum(axis=0) / resp_sums
        means = np.clip(means, 1e-12, None)

        if ll - prev_ll < tol and iteration > 1:
            converged = True
            break
        prev_ll = ll

    order = np.argsort(means)
    return ExponentialMixture(
        weights=tuple(float(w) for w in weights[order]),
        means=tuple(float(m) for m in means[order]),
        log_likelihood=ll * data.size,
        n_iterations=iteration,
        converged=converged,
    )


def _best_of_restarts(
    data: np.ndarray, n: int, seed: int, restarts: int
) -> ExponentialMixture:
    """Best-likelihood fit over several EM initializations.

    EM on exponential mixtures has local optima (e.g. splitting the
    dominant component instead of separating a rare tail); a handful of
    jittered restarts reliably finds the global structure.
    """
    best: ExponentialMixture | None = None
    inits = ["quantile", "tail"] + ["random"] * max(0, restarts - 2)
    for restart, init in enumerate(inits):
        fit = fit_exponential_mixture(
            data, n, seed=seed + 7919 * restart, init=init
        )
        if best is None or fit.log_likelihood > best.log_likelihood:
            best = fit
    assert best is not None
    return best


def select_order(
    samples: np.ndarray,
    *,
    max_components: int = 6,
    weight_floor: float = 1e-3,
    mean_separation: float = 2.0,
    seed: int = 0,
) -> ExponentialMixture:
    """Pick the mixture order following the paper's procedure.

    Fit mixtures of increasing order; stop as soon as a fit becomes
    *degenerate* and return the last non-degenerate fit.  A fit is
    degenerate when an extra component stopped mattering, which EM signals
    in one of two ways: a component weight below ``weight_floor`` (the
    paper's 0.001 criterion), or two components converging onto the same
    scale (adjacent mean ratio below ``mean_separation``) — the same
    redundancy expressed as a split rather than a vanishing weight.
    """
    best: ExponentialMixture | None = None
    data = np.asarray(samples, dtype=float).ravel()
    for n in range(1, max_components + 1):
        fit = _best_of_restarts(data, n, seed, restarts=4)
        degenerate = min(fit.weights) < weight_floor
        if not degenerate and n > 1:
            means = np.asarray(fit.means)
            ratios = means[1:] / means[:-1]
            degenerate = bool(np.any(ratios < mean_separation))
        if degenerate:
            break
        best = fit
    if best is None:
        # Even the n=1 fit counted as degenerate, which cannot happen (its
        # single weight is 1.0 and there are no mean ratios); defensive.
        raise RuntimeError("order selection failed to produce a fit")
    return best


def bic(fit: ExponentialMixture, n_samples: int) -> float:
    """Bayesian information criterion of a fitted mixture (lower = better)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    n_params = 2 * fit.n_components - 1
    return n_params * math.log(n_samples) - 2.0 * fit.log_likelihood


def select_order_bic(
    samples: np.ndarray,
    *,
    max_components: int = 6,
    weight_floor: float = 1e-3,
    mean_separation: float = 1.6,
    bic_margin: float = 6.0,
    seed: int = 0,
) -> ExponentialMixture:
    """Pick the mixture order by BIC (robust at moderate sample sizes).

    The paper's vanishing-weight rule works at their 2.4M-session scale;
    at thousands of sessions EM can keep carving spurious components out
    of sampling noise, which a BIC penalty suppresses.  Degenerate fits —
    a vanishing weight, or two components converging onto the same scale
    (adjacent mean ratio below ``mean_separation``) — are never candidates
    regardless of their BIC.

    Among candidates whose BIC lies within ``bic_margin`` of the minimum
    (the conventional "weak evidence" band), the richest model wins: a
    rare, well-separated tail component whose evidence is merely *weak*
    at a few thousand samples is still the structure the data carries.
    """
    data = np.asarray(samples, dtype=float).ravel()
    candidates: list[tuple[float, ExponentialMixture]] = []
    for n in range(1, max_components + 1):
        fit = _best_of_restarts(data, n, seed, restarts=4)
        if min(fit.weights) < weight_floor:
            break
        if n > 1:
            means = np.asarray(fit.means)
            if bool(np.any(means[1:] / means[:-1] < mean_separation)):
                continue
        candidates.append((bic(fit, data.size), fit))
    if not candidates:
        raise RuntimeError("BIC order selection failed to produce a fit")
    best_bic = min(score for score, _ in candidates)
    within = [
        fit for score, fit in candidates if score <= best_bic + bic_margin
    ]
    return max(within, key=lambda fit: fit.n_components)
