"""One-dimensional Gaussian mixture models fit by expectation-maximization.

The paper models the logarithm of the inter-file-operation time of each user
with a two-component Gaussian mixture: one component for within-session
intervals (mean around 10 seconds) and one for between-session intervals
(mean around one day).  The session threshold tau falls in the valley between
the two components.

This module implements the EM algorithm for 1-D GMMs from scratch (numpy
only), plus the valley and equal-responsibility crossover computations used
to derive tau.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True)
class GaussianComponent:
    """One mixture component: weight, mean and standard deviation."""

    weight: float
    mean: float
    std: float

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Elementwise log density of this component (without the weight)."""
        z = (x - self.mean) / self.std
        return -0.5 * (z * z + _LOG_2PI) - math.log(self.std)


@dataclass(frozen=True)
class GaussianMixture:
    """A fitted 1-D Gaussian mixture, components sorted by mean."""

    components: tuple[GaussianComponent, ...]
    log_likelihood: float
    n_iterations: int
    converged: bool

    @property
    def weights(self) -> np.ndarray:
        return np.array([c.weight for c in self.components])

    @property
    def means(self) -> np.ndarray:
        return np.array([c.mean for c in self.components])

    @property
    def stds(self) -> np.ndarray:
        return np.array([c.std for c in self.components])

    def pdf(self, x: float | np.ndarray) -> np.ndarray:
        """Mixture density at ``x``."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        parts = [c.weight * np.exp(c.log_pdf(x_arr)) for c in self.components]
        return np.sum(parts, axis=0)

    def responsibilities(self, x: float | np.ndarray) -> np.ndarray:
        """Posterior component probabilities, shape (len(x), k)."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        log_parts = np.stack(
            [math.log(c.weight) + c.log_pdf(x_arr) for c in self.components],
            axis=1,
        )
        log_norm = _logsumexp_rows(log_parts)
        return np.exp(log_parts - log_norm[:, None])

    def valley(self) -> float:
        """Location of the mixture density minimum between the two extreme
        component means.

        For the paper's inter-operation-time model this is the natural
        session cut point: intervals left of the valley are within-session,
        intervals right of it are between sessions.
        """
        if len(self.components) < 2:
            raise ValueError("valley needs at least two components")
        low, high = self.means.min(), self.means.max()
        grid = np.linspace(low, high, 4097)
        dens = self.pdf(grid)
        return float(grid[np.argmin(dens)])

    def crossover(self) -> float:
        """Point between the extreme means where the two outermost
        components are equally responsible (posterior = 0.5 each).

        The paper notes the 1-hour mark "is equally likely to be within the
        two components"; this computes that point exactly.
        """
        if len(self.components) < 2:
            raise ValueError("crossover needs at least two components")
        lo_c = self.components[0]
        hi_c = self.components[-1]
        low, high = lo_c.mean, hi_c.mean

        def diff(x: float) -> float:
            xa = np.array([x])
            return float(
                math.log(lo_c.weight)
                + lo_c.log_pdf(xa)[0]
                - math.log(hi_c.weight)
                - hi_c.log_pdf(xa)[0]
            )

        # diff is positive near the low mean and negative near the high mean;
        # bisect for the root.
        f_low = diff(low)
        f_high = diff(high)
        if f_low * f_high > 0:
            # Degenerate overlap; fall back to the density valley.
            return self.valley()
        for _ in range(200):
            mid = 0.5 * (low + high)
            f_mid = diff(mid)
            if f_low * f_mid <= 0:
                high = mid
            else:
                low, f_low = mid, f_mid
        return 0.5 * (low + high)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples from the mixture."""
        choices = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n)
        for i, c in enumerate(self.components):
            mask = choices == i
            out[mask] = rng.normal(c.mean, c.std, size=int(mask.sum()))
        return out


def _logsumexp_rows(log_parts: np.ndarray) -> np.ndarray:
    """Row-wise log-sum-exp for an (n, k) matrix."""
    row_max = np.max(log_parts, axis=1)
    return row_max + np.log(np.sum(np.exp(log_parts - row_max[:, None]), axis=1))


def _kmeans_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantile-seeded 1-D k-means to initialize EM."""
    qs = (np.arange(k) + 0.5) / k
    centers = np.quantile(data, qs)
    for _ in range(25):
        assign = np.argmin(np.abs(data[:, None] - centers[None, :]), axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = data[assign == j]
            if members.size:
                new_centers[j] = members.mean()
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    assign = np.argmin(np.abs(data[:, None] - centers[None, :]), axis=1)
    weights = np.array([(assign == j).mean() for j in range(k)])
    stds = np.array(
        [
            data[assign == j].std() if (assign == j).sum() > 1 else data.std() or 1.0
            for j in range(k)
        ]
    )
    spread = data.std() if data.std() > 0 else 1.0
    weights = np.clip(weights, 1e-3, None)
    weights /= weights.sum()
    stds = np.clip(stds, 1e-3 * spread, None)
    # Perturb ties so EM can separate identical seeds.
    centers = centers + rng.normal(0.0, 1e-6 * spread, size=k)
    return weights, centers, stds


def fit_gmm(
    samples: np.ndarray,
    n_components: int = 2,
    *,
    max_iterations: int = 500,
    tol: float = 1e-8,
    min_std: float = 1e-6,
    seed: int = 0,
) -> GaussianMixture:
    """Fit a 1-D Gaussian mixture to ``samples`` with EM.

    Parameters
    ----------
    samples:
        1-D data array.  For the paper's interval model, pass
        ``log10(intervals)``.
    n_components:
        Number of mixture components (the paper uses 2).
    max_iterations, tol:
        EM stops when the mean log-likelihood improves by less than ``tol``
        or after ``max_iterations``.
    min_std:
        Lower bound on component standard deviations, which prevents
        components from collapsing onto single points.
    seed:
        Seed for the deterministic initialization jitter.

    Returns
    -------
    GaussianMixture
        Fitted mixture with components sorted by ascending mean.
    """
    data = np.asarray(samples, dtype=float).ravel()
    if data.size < n_components:
        raise ValueError(
            f"need at least {n_components} samples, got {data.size}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("samples must be finite")
    rng = np.random.default_rng(seed)
    weights, means, stds = _kmeans_init(data, n_components, rng)

    prev_ll = -math.inf
    ll = prev_ll
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # E-step: log responsibilities.
        z = (data[:, None] - means[None, :]) / stds[None, :]
        log_parts = (
            np.log(weights)[None, :]
            - np.log(stds)[None, :]
            - 0.5 * (z * z + _LOG_2PI)
        )
        log_norm = _logsumexp_rows(log_parts)
        ll = float(np.mean(log_norm))
        resp = np.exp(log_parts - log_norm[:, None])

        # M-step.
        resp_sums = resp.sum(axis=0)
        resp_sums = np.clip(resp_sums, 1e-12, None)
        weights = resp_sums / data.size
        means = (resp * data[:, None]).sum(axis=0) / resp_sums
        var = (resp * (data[:, None] - means[None, :]) ** 2).sum(axis=0) / resp_sums
        stds = np.sqrt(np.clip(var, min_std**2, None))

        if ll - prev_ll < tol and iteration > 1:
            converged = True
            break
        prev_ll = ll

    order = np.argsort(means)
    components = tuple(
        GaussianComponent(
            weight=float(weights[i]), mean=float(means[i]), std=float(stds[i])
        )
        for i in order
    )
    return GaussianMixture(
        components=components,
        log_likelihood=ll * data.size,
        n_iterations=iteration,
        converged=converged,
    )
