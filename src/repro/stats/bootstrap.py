"""Percentile-bootstrap confidence intervals for summary statistics.

The paper reports point statistics from one observation week; for our
synthetic reproductions we attach bootstrap confidence intervals so a reader
can tell whether a paper-vs-measured gap is noise or structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``.

    Parameters
    ----------
    samples:
        1-D data array.
    statistic:
        Callable reducing an array to a float (mean, median, quantile, ...).
    confidence:
        Interval mass, e.g. 0.95 for a 95% interval.
    """
    data = np.asarray(samples, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("cannot bootstrap zero samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 2:
        raise ValueError("n_resamples must be >= 2")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=float(statistic(data)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
