"""Statistics substrate: from-scratch EM fitters (Gaussian and exponential
mixtures), stretched-exponential rank models, empirical distributions,
chi-square goodness-of-fit and bootstrap intervals."""

from .bootstrap import BootstrapInterval, bootstrap_ci
from .distributions import (
    Ecdf,
    Histogram,
    ccdf_points,
    ecdf,
    fraction_below,
    histogram,
    log_bins,
    quantiles,
)
from .expmix import ExponentialMixture, fit_exponential_mixture, select_order
from .gmm import GaussianComponent, GaussianMixture, fit_gmm
from .ks import KsResult, kolmogorov_sf, ks_one_sample, ks_two_sample
from .goodness import ChiSquareResult, chi2_sf, chi_square_gof, regularized_gamma_p
from .stretched_exp import (
    StretchedExponentialFit,
    fit_stretched_exponential,
    fit_weibull_mle,
    power_law_r_squared,
)

__all__ = [
    "BootstrapInterval",
    "ChiSquareResult",
    "Ecdf",
    "ExponentialMixture",
    "GaussianComponent",
    "GaussianMixture",
    "KsResult",
    "Histogram",
    "StretchedExponentialFit",
    "bootstrap_ci",
    "ccdf_points",
    "chi2_sf",
    "chi_square_gof",
    "ecdf",
    "fit_exponential_mixture",
    "fit_gmm",
    "fit_stretched_exponential",
    "fit_weibull_mle",
    "fraction_below",
    "histogram",
    "kolmogorov_sf",
    "ks_one_sample",
    "ks_two_sample",
    "log_bins",
    "power_law_r_squared",
    "quantiles",
    "regularized_gamma_p",
    "select_order",
]
