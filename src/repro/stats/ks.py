"""Kolmogorov-Smirnov goodness-of-fit tests.

A binning-free complement to the chi-square test used in Section 3.1.4:
the KS statistic is the largest gap between the empirical CDF and a model
CDF (one-sample) or between two empirical CDFs (two-sample), with the
asymptotic Kolmogorov distribution supplying p-values.  Implemented from
scratch (numpy only) like the rest of :mod:`repro.stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


def kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-16:
            break
    return min(1.0, max(0.0, 2.0 * total))


@dataclass(frozen=True)
class KsResult:
    """Outcome of a KS test."""

    statistic: float
    p_value: float
    n_effective: float

    def passes(self, significance: float = 0.05) -> bool:
        """True when the model is *not* rejected at the given level."""
        return self.p_value >= significance


def ks_one_sample(
    samples: np.ndarray, model_cdf: Callable[[np.ndarray], np.ndarray]
) -> KsResult:
    """One-sample KS test of ``samples`` against a continuous model CDF."""
    data = np.sort(np.asarray(samples, dtype=float).ravel())
    n = data.size
    if n < 5:
        raise ValueError("need at least 5 samples")
    cdf = np.asarray(model_cdf(data), dtype=float)
    if np.any(cdf < -1e-9) or np.any(cdf > 1.0 + 1e-9):
        raise ValueError("model_cdf must return values in [0, 1]")
    grid = np.arange(1, n + 1, dtype=float)
    d_plus = np.max(grid / n - cdf)
    d_minus = np.max(cdf - (grid - 1.0) / n)
    statistic = float(max(d_plus, d_minus))
    # Asymptotic p-value with the standard finite-n adjustment.
    root_n = math.sqrt(n)
    argument = (root_n + 0.12 + 0.11 / root_n) * statistic
    return KsResult(
        statistic=statistic,
        p_value=kolmogorov_sf(argument),
        n_effective=float(n),
    )


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> KsResult:
    """Two-sample KS test (are two samples from one distribution?)."""
    x = np.sort(np.asarray(a, dtype=float).ravel())
    y = np.sort(np.asarray(b, dtype=float).ravel())
    if x.size < 5 or y.size < 5:
        raise ValueError("need at least 5 samples on each side")
    combined = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, combined, side="right") / x.size
    cdf_y = np.searchsorted(y, combined, side="right") / y.size
    statistic = float(np.max(np.abs(cdf_x - cdf_y)))
    n_effective = x.size * y.size / (x.size + y.size)
    root = math.sqrt(n_effective)
    argument = (root + 0.12 + 0.11 / root) * statistic
    return KsResult(
        statistic=statistic,
        p_value=kolmogorov_sf(argument),
        n_effective=float(n_effective),
    )
