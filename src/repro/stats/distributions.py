"""Empirical distribution utilities: ECDF/CCDF, quantiles and histograms.

Every figure in the paper is either a CDF, a CCDF on log axes, or a
histogram over logarithmically scaled values; these helpers are the common
currency between the analysis modules and the experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted support points and cumulative probabilities.

    ``values[i]`` has ``probs[i]`` = P(X <= values[i]).
    """

    values: np.ndarray
    probs: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probs):
            raise ValueError("values and probs must have equal length")

    def __len__(self) -> int:
        return len(self.values)

    def evaluate(self, x: float | np.ndarray) -> np.ndarray:
        """P(X <= x) by step interpolation."""
        idx = np.searchsorted(self.values, np.asarray(x, dtype=float), side="right")
        probs = np.concatenate(([0.0], self.probs))
        return probs[idx]

    def quantile(self, q: float | np.ndarray) -> np.ndarray:
        """Inverse CDF (lowest value v with P(X <= v) >= q)."""
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantiles must be in [0, 1]")
        idx = np.searchsorted(self.probs, q_arr, side="left")
        idx = np.clip(idx, 0, len(self.values) - 1)
        return self.values[idx]

    @property
    def median(self) -> float:
        return float(self.quantile(0.5)[0])


def ecdf(samples: Iterable[float]) -> Ecdf:
    """Build the empirical CDF of ``samples``."""
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build an ECDF from zero samples")
    probs = np.arange(1, data.size + 1, dtype=float) / data.size
    return Ecdf(values=data, probs=probs)


def ccdf_points(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """(x, P(X >= x)) points for a CCDF plot, one point per sample.

    Uses P(X >= x) (not strict >) to match the paper's stretched-exponential
    convention P(X >= x_i) = i/N for rank-ordered data.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        raise ValueError("cannot build a CCDF from zero samples")
    # For sorted ascending data, P(X >= data[k]) = (n - k) / n.
    n = data.size
    probs = (n - np.arange(n, dtype=float)) / n
    return data, probs


def log_bins(
    low: float, high: float, bins_per_decade: int = 10
) -> np.ndarray:
    """Logarithmically spaced bin edges covering [low, high]."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high for log bins")
    n_decades = np.log10(high / low)
    n_edges = max(2, int(np.ceil(n_decades * bins_per_decade)) + 1)
    return np.logspace(np.log10(low), np.log10(high), n_edges)


@dataclass(frozen=True)
class Histogram:
    """Histogram as bin edges plus per-bin counts and densities."""

    edges: np.ndarray
    counts: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def log_centers(self) -> np.ndarray:
        """Geometric bin centers, appropriate for log-spaced edges."""
        return np.sqrt(self.edges[:-1] * self.edges[1:])

    @property
    def densities(self) -> np.ndarray:
        """Counts normalized to integrate to one over bin widths."""
        total = self.counts.sum()
        widths = np.diff(self.edges)
        if total == 0:
            return np.zeros_like(widths)
        return self.counts / (total * widths)

    @property
    def fractions(self) -> np.ndarray:
        """Per-bin fraction of all samples."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total


def histogram(samples: Iterable[float], edges: Sequence[float]) -> Histogram:
    """Count samples into the given bin edges (values outside are dropped)."""
    edges_arr = np.asarray(edges, dtype=float)
    if edges_arr.ndim != 1 or edges_arr.size < 2:
        raise ValueError("edges must be a 1-D array of at least two values")
    if np.any(np.diff(edges_arr) <= 0):
        raise ValueError("edges must be strictly increasing")
    counts, _ = np.histogram(np.asarray(list(samples), dtype=float), bins=edges_arr)
    return Histogram(edges=edges_arr, counts=counts)


def quantiles(
    samples: Iterable[float], qs: Sequence[float] = (0.25, 0.5, 0.75)
) -> np.ndarray:
    """Convenience wrapper: the requested empirical quantiles of samples."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot take quantiles of zero samples")
    return np.quantile(data, np.asarray(qs, dtype=float))


def fraction_below(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute a fraction of zero samples")
    return float(np.mean(data < threshold))
