"""Stretched-exponential (SE) models of user activity.

Section 3.2.3 of the paper finds that the per-user number of stored and
retrieved files is *not* power-law distributed; instead it follows a
stretched exponential, whose CCDF is

    P(X >= x) = exp(-(x / x0)^c)

with stretch factor ``c`` and scale ``x0``.  For data ranked in descending
order (rank i out of N users, value y_i), P(X >= y_i) = i/N, which turns the
CCDF into a straight line in "log-rank vs y^c" coordinates:

    y_i^c = -a * log(i) + b      with a = x0^c * ... (see the paper)

The fit therefore searches over ``c``: for each candidate c we regress y^c on
log(rank), and we keep the c maximizing the coefficient of determination R^2
(equivalently, the c whose transformed data is straightest) — the
rank-regression flavor of the maximum-likelihood procedure the paper cites.

A direct Weibull MLE (the SE CCDF is a Weibull survival function) is also
provided as a cross-check, along with sampling via inverse-CDF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StretchedExponentialFit:
    """A fitted stretched-exponential rank model.

    Attributes
    ----------
    c:
        Stretch factor (smaller c = more skewed tail).
    a, b:
        Slope and intercept of the line ``y^c = -a log(rank) + b``.
    x0:
        Scale parameter, ``a ** (1/c)``.
    r_squared:
        Coefficient of determination of the rank regression in the
        transformed coordinates — the paper reports R^2 > 0.998.
    n:
        Number of ranked observations.
    """

    c: float
    a: float
    b: float
    x0: float
    r_squared: float
    n: int

    def ccdf(self, x: float | np.ndarray) -> np.ndarray:
        """P(X >= x) under the fitted model."""
        x_arr = np.clip(np.atleast_1d(np.asarray(x, dtype=float)), 0.0, None)
        return np.exp(-((x_arr / self.x0) ** self.c))

    def value_at_rank(self, rank: float | np.ndarray) -> np.ndarray:
        """Predicted value for a given descending rank (1 = most active)."""
        rank_arr = np.atleast_1d(np.asarray(rank, dtype=float))
        if np.any(rank_arr < 1):
            raise ValueError("ranks start at 1")
        transformed = np.clip(-self.a * np.log(rank_arr) + self.b, 0.0, None)
        return transformed ** (1.0 / self.c)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sampling: X = x0 * (-ln U)^(1/c)."""
        u = rng.uniform(0.0, 1.0, size=n)
        u = np.clip(u, 1e-300, 1.0)
        return self.x0 * (-np.log(u)) ** (1.0 / self.c)


def _rank_regression(values_desc: np.ndarray, c: float) -> tuple[float, float, float]:
    """Regress y^c on log(rank); return (a, b, r_squared)."""
    n = values_desc.size
    log_rank = np.log(np.arange(1, n + 1, dtype=float))
    y = values_desc**c
    x = -log_rank
    x_mean, y_mean = x.mean(), y.mean()
    sxx = np.sum((x - x_mean) ** 2)
    sxy = np.sum((x - x_mean) * (y - y_mean))
    if sxx == 0:
        return 0.0, float(y_mean), 0.0
    a = sxy / sxx
    b = y_mean - a * x_mean
    residuals = y - (a * x + b)
    syy = np.sum((y - y_mean) ** 2)
    r2 = 1.0 - float(np.sum(residuals**2) / syy) if syy > 0 else 0.0
    return float(a), float(b), r2


def fit_stretched_exponential(
    values: np.ndarray,
    *,
    c_grid: np.ndarray | None = None,
    refine_iterations: int = 40,
) -> StretchedExponentialFit:
    """Fit a stretched-exponential rank model to positive activity counts.

    Parameters
    ----------
    values:
        Per-user activity values (any order; zeros are dropped, as a user
        with no activity of the given kind has no rank in the paper's plot).
    c_grid:
        Candidate stretch factors for the coarse search (default: 0.02..1.0).
    refine_iterations:
        Golden-section refinement steps around the best grid cell.
    """
    data = np.asarray(values, dtype=float).ravel()
    data = data[data > 0]
    if data.size < 3:
        raise ValueError("need at least 3 positive values to fit")
    desc = np.sort(data)[::-1]

    if c_grid is None:
        c_grid = np.linspace(0.02, 1.0, 50)

    def score(c: float) -> float:
        return _rank_regression(desc, c)[2]

    scores = np.array([score(c) for c in c_grid])
    best_idx = int(np.argmax(scores))
    lo = c_grid[max(0, best_idx - 1)]
    hi = c_grid[min(len(c_grid) - 1, best_idx + 1)]

    # Golden-section search for the R^2-maximizing c in [lo, hi].
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    x1 = hi - inv_phi * (hi - lo)
    x2 = lo + inv_phi * (hi - lo)
    f1, f2 = score(x1), score(x2)
    for _ in range(refine_iterations):
        if f1 < f2:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + inv_phi * (hi - lo)
            f2 = score(x2)
        else:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - inv_phi * (hi - lo)
            f1 = score(x1)
    c = 0.5 * (lo + hi)
    a, b, r2 = _rank_regression(desc, c)
    a = max(a, 1e-12)
    x0 = a ** (1.0 / c)
    return StretchedExponentialFit(
        c=float(c), a=float(a), b=float(b), x0=float(x0), r_squared=float(r2),
        n=int(desc.size),
    )


def fit_weibull_mle(
    values: np.ndarray, *, max_iterations: int = 200, tol: float = 1e-10
) -> tuple[float, float]:
    """Weibull maximum-likelihood estimate ``(shape c, scale x0)``.

    The SE CCDF is exactly a Weibull survival function, so this provides an
    independent estimate of (c, x0) to cross-check the rank regression.
    Solved by Newton iteration on the profile likelihood in the shape.
    """
    data = np.asarray(values, dtype=float).ravel()
    data = data[data > 0]
    if data.size < 3:
        raise ValueError("need at least 3 positive values")
    log_x = np.log(data)
    c = 1.0

    for _ in range(max_iterations):
        xc = data**c
        sum_xc = xc.sum()
        sum_xc_log = (xc * log_x).sum()
        sum_xc_log2 = (xc * log_x * log_x).sum()
        # f(c) = 1/c + mean(log x) - sum(x^c log x)/sum(x^c) = 0
        f = 1.0 / c + log_x.mean() - sum_xc_log / sum_xc
        fp = -1.0 / (c * c) - (
            sum_xc_log2 * sum_xc - sum_xc_log**2
        ) / (sum_xc**2)
        step = f / fp
        new_c = c - step
        if new_c <= 0:
            new_c = c / 2.0
        if abs(new_c - c) < tol:
            c = new_c
            break
        c = new_c

    x0 = float((np.mean(data**c)) ** (1.0 / c))
    return float(c), x0


def power_law_r_squared(values: np.ndarray) -> float:
    """R^2 of a pure power-law (straight line in log-log rank) fit.

    The paper argues SE beats power law for this workload; comparing this
    against :class:`StretchedExponentialFit.r_squared` quantifies that.
    """
    data = np.asarray(values, dtype=float).ravel()
    data = data[data > 0]
    if data.size < 3:
        raise ValueError("need at least 3 positive values")
    desc = np.sort(data)[::-1]
    log_rank = np.log(np.arange(1, desc.size + 1, dtype=float))
    log_val = np.log(desc)
    x_mean, y_mean = log_rank.mean(), log_val.mean()
    sxx = np.sum((log_rank - x_mean) ** 2)
    sxy = np.sum((log_rank - x_mean) * (log_val - y_mean))
    slope = sxy / sxx if sxx else 0.0
    intercept = y_mean - slope * x_mean
    residuals = log_val - (slope * log_rank + intercept)
    syy = np.sum((log_val - y_mean) ** 2)
    return 1.0 - float(np.sum(residuals**2) / syy) if syy > 0 else 0.0
