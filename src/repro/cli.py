"""Command-line interface.

Subcommands
-----------
``generate``
    Synthesize a week-long trace to a TSV/JSONL file.
``analyze``
    Run the Section 3 behaviour pipeline over a trace file and print the
    findings report.
``experiments``
    Run the paper-reproduction battery (all of it, or selected ids).
``simulate-flow``
    Run one packet-level chunk flow and print per-chunk measurements.
``faults-demo``
    Chaos smoke test: replay a fixed workload through the fault-injected
    service cluster and fail unless every transfer eventually completes.
``replay``
    Open-loop traffic replay: fire a synthetic trace at the cluster on a
    speed-multiplied or rate-targeted schedule and print the latency/
    shed-rate telemetry dashboard (see ``docs/TELEMETRY.md``).
``autoscale``
    Chaos-coupled autoscaling loop: drive a fleet controller window by
    window against the live service under a chosen fault regime and
    print the fleet trajectory, SLO tally and a determinism digest.
``lint``
    Run reprolint, the determinism/schema static-analysis pass, over the
    given paths (see ``docs/STATIC_ANALYSIS.md``).

All subcommands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _cmd_generate(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .logs.anonymize import Anonymizer
    from .logs.io import write_jsonl, write_tsv
    from .workload.generator import GeneratorOptions, TraceGenerator
    from .workload.parallel import generate_sharded

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards < 0:
        print(f"--shards must be >= 1 (or 0 for auto), got {args.shards}",
              file=sys.stderr)
        return 2
    options = GeneratorOptions(max_chunks_per_file=args.max_chunks)
    writer = write_jsonl if args.output.endswith((".jsonl", ".jsonl.gz")) else write_tsv
    n_shards = args.shards or args.workers
    if n_shards > 1 or args.workers > 1:
        # Sharded path: workers write sorted part files into a scratch
        # directory, then the k-way merge streams one time-sorted trace
        # into the output.  Record-identical to the serial path for any
        # (--shards, --workers) — see docs/SCALING.md.
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(
            prefix=output.name + ".parts-", dir=output.parent
        ) as scratch:
            sharded = generate_sharded(
                args.users,
                n_pc_only_users=args.pc_users,
                options=options,
                seed=args.seed,
                n_shards=max(n_shards, 1),
                n_workers=args.workers,
                part_dir=scratch,
            )
            records = sharded.merged()
            if args.anonymize:
                records = Anonymizer().anonymize_stream(records)
            count = writer(records, args.output)
    else:
        generator = TraceGenerator(
            args.users,
            n_pc_only_users=args.pc_users,
            options=options,
            seed=args.seed,
        )
        records = generator.generate()
        if args.anonymize:
            records = Anonymizer().anonymize_stream(records)
        count = writer(records, args.output)
    print(f"wrote {count:,} records to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .core.report import analyze_trace
    from .logs.io import open_reader, read_columnar
    from .logs.summary import summarize

    if args.engine == "columnar":
        # Bulk-parse straight into column arrays; LogRecord objects are
        # only materialized transiently for the streaming summary.
        trace = read_columnar(args.trace)
        if not len(trace):
            print("trace is empty", file=sys.stderr)
            return 1
        print(summarize(trace.iter_records()).render())
        report = analyze_trace(
            trace, fit_size_model=not args.fast, engine="columnar"
        )
    else:
        records = list(open_reader(args.trace))
        if not records:
            print("trace is empty", file=sys.stderr)
            return 1
        print(summarize(records).render())
        report = analyze_trace(records, fit_size_model=not args.fast)
    model = report.interval_model
    print(f"sessions recovered  : {report.session_shares.n_sessions:,}")
    print(
        f"interval model      : within={model.within_session_mean_seconds:.1f}s "
        f"between={model.between_session_mean_seconds / 3600:.1f}h "
        f"tau={model.tau:.0f}s"
    )
    for finding in report.rows():
        print(f"[{finding.topic}] {finding.statement}")
        print(f"    -> {finding.implication}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import json

    from . import experiments

    selected = []
    for module in experiments.ALL_EXPERIMENTS:
        name = module.__name__.rsplit(".", 1)[-1]
        if not args.only or any(token in name for token in args.only):
            selected.append(module)
    if not selected:
        print("no experiments match", file=sys.stderr)
        return 1
    failures = 0
    results = []
    for module in selected:
        result = module.run()
        results.append(result)
        if not args.json:
            print(result.render())
            print()
        failures += not result.qualitative_ok()
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        print(f"{len(selected) - failures}/{len(selected)} experiments pass")
    return 1 if failures else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from . import experiments
    from .experiments.validation import pass_rate_summary, validate

    selected = [
        module
        for module in experiments.ALL_EXPERIMENTS
        if not args.only
        or any(token in module.__name__ for token in args.only)
    ]
    if not selected:
        print("no experiments match", file=sys.stderr)
        return 1
    seeds = list(range(args.base_seed, args.base_seed + args.seeds))
    outcomes = validate(selected, seeds, verbose=True)
    robust, total, rate = pass_rate_summary(outcomes)
    print(
        f"{robust}/{total} experiments robust over {len(seeds) + 1} runs; "
        f"mean check pass rate {rate:.1%}"
    )
    return 0 if robust == total else 1


def _cmd_simulate_flow(args: argparse.Namespace) -> int:
    from .logs.schema import CHUNK_SIZE, Direction, DeviceType
    from .tcpsim.flow import simulate_flow
    from .tcpsim.path import NetworkPath

    flow = simulate_flow(
        direction=Direction(args.direction),
        device=DeviceType(args.device),
        file_size=args.chunks * CHUNK_SIZE,
        path=NetworkPath(
            bandwidth=args.bandwidth,
            one_way_delay=args.rtt / 2.0,
        ),
        seed=args.seed,
    )
    print(
        f"{args.direction} of {args.chunks} chunks on {args.device}: "
        f"{flow.duration:.2f}s, goodput {flow.throughput / 1024:.1f} KB/s, "
        f"{flow.slow_start_restarts} slow-start restarts"
    )
    for chunk in flow.chunk_results:
        print(
            f"  chunk {chunk.index}: ttran={chunk.ttran:6.3f}s "
            f"tsrv={chunk.tsrv:5.3f}s idle/rto="
            f"{chunk.idle_rto_ratio:5.2f} restarted={chunk.restarted}"
        )
    return 0


def _cmd_faults_demo(args: argparse.Namespace) -> int:
    from .experiments.r2_fault_resilience import _planned_workload, _replay

    if args.fault_rate < 0:
        print(f"--fault-rate must be >= 0, got {args.fault_rate}",
              file=sys.stderr)
        return 2
    if args.zones < 0:
        print(f"--zones must be >= 0, got {args.zones}", file=sys.stderr)
        return 2
    if args.zones and not 0.0 < args.zone_share < 1.0:
        print(f"--zone-share must be in (0, 1), got {args.zone_share}",
              file=sys.stderr)
        return 2
    if args.metadata_shards < 1 or args.metadata_replicas < 0:
        print("--metadata-shards must be >= 1 and --metadata-replicas >= 0",
              file=sys.stderr)
        return 2
    if (args.metadata_shards, args.metadata_replicas) != (1, 0):
        return _faults_demo_metatier(args)
    plan = _planned_workload(args.users, args.seed)
    if args.zones:
        return _faults_demo_correlated(plan, args)
    outcome = _replay(plan, args.fault_rate, args.seed)
    unrecovered = outcome.n_transfers - outcome.n_completed
    print(
        f"replayed {outcome.n_transfers} transfers at fault rate "
        f"{args.fault_rate:g}: {outcome.n_completed} completed, "
        f"{unrecovered} unrecovered"
    )
    print(
        f"  attempt failure rate {outcome.failure_rate:.1%}, "
        f"{outcome.retries} retries, {outcome.failovers} failovers, "
        f"{outcome.backoff_seconds:.1f}s spent backing off"
    )
    if unrecovered:
        print(f"FAIL: {unrecovered} transfers never completed",
              file=sys.stderr)
        return 1
    print("all transfers eventually completed")
    return 0


def _faults_demo_correlated(plan: list, args: argparse.Namespace) -> int:
    """Correlated arm of the chaos smoke test: zones + retry storms.

    Prints the access-log digest so CI can assert that two invocations of
    the same correlated plan are byte-identical across processes.
    """
    from .experiments.r3_correlated_failures import build_configs, replay

    config = build_configs(
        rate=args.fault_rate, zone_share=args.zone_share, n_zones=args.zones
    )[1]
    rep = replay(plan, config, args.seed, "correlated")
    unrecovered = rep.n_transfers - rep.n_completed
    print(
        f"replayed {rep.n_transfers} transfers at fault rate "
        f"{args.fault_rate:g} across {args.zones} failure zones "
        f"(zone share {args.zone_share:g}): {rep.n_completed} completed, "
        f"{unrecovered} unrecovered"
    )
    print(
        f"  {rep.retries} retries, {rep.failovers} failovers, "
        f"{rep.crash_rejections} crash rejections "
        f"({rep.zone_crash_rejections} zone), {rep.shed_requests} sheds "
        f"({rep.pressure_sheds} pressure, {rep.overload_sheds} overload)"
    )
    print(f"  access-log digest: {rep.log_digest}")
    if unrecovered:
        print(f"FAIL: {unrecovered} transfers never completed",
              file=sys.stderr)
        return 1
    print("all transfers eventually completed")
    return 0


def _faults_demo_metatier(args: argparse.Namespace) -> int:
    """Replicated chaos arm: per-shard metadata outages, quorum reads.

    Replays a compressed synthetic trace against a sharded tier whose
    per-node outage schedule is aggressive enough to intersect the
    replayed span, then prints per-shard rejections and the access-log
    digest so CI can ``cmp`` two invocations (metatier-smoke job).
    """
    from .experiments.r4_open_loop import R4_RETRY_POLICY
    from .faults import FaultConfig
    from .service.cluster import ServiceCluster
    from .service.replay import replay_trace, synthetic_replay_trace

    trace = synthetic_replay_trace(args.users, args.seed)
    config = FaultConfig(
        error_rate=args.fault_rate,
        metadata_outage_rate=90.0,
        metadata_mean_downtime=10.0,
    )
    cluster = ServiceCluster(
        n_frontends=2,
        faults=config,
        fault_seed=args.seed,
        retry_policy=R4_RETRY_POLICY,
        metadata_shards=args.metadata_shards,
        metadata_replicas=args.metadata_replicas,
        read_policy=args.read_policy,
    )
    result = replay_trace(trace, cluster, rate=2.0, seed=args.seed)
    avail = cluster.metadata_availability()
    stats = cluster.fault_stats
    print(
        f"replayed {result.ops_total} ops against "
        f"{args.metadata_shards} metadata shard(s) x "
        f"{1 + args.metadata_replicas} node(s) ({args.read_policy}): "
        f"{result.ops_completed} completed, {result.ops_aborted} aborted"
    )
    print(
        f"  shard rejections {avail['shard_rejections']} "
        f"({stats.shard_rejections} total), "
        f"{avail['blocked_users']} users ever blocked; "
        f"replica reads {stats.replica_reads} "
        f"({stats.failover_reads} failover, "
        f"{stats.stale_reads_avoided} stale avoided)"
    )
    print(f"  access-log digest: {result.log_digest()}")
    if result.ops_aborted:
        print(f"FAIL: {result.ops_aborted} operations never completed",
              file=sys.stderr)
        return 1
    print("all operations eventually completed")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .experiments.r4_open_loop import R4_RETRY_POLICY, correlated_config
    from .service.cluster import ServiceCluster
    from .service.replay import replay_trace, synthetic_replay_trace
    from .service.telemetry import SloPolicy

    if args.users < 1:
        print(f"--users must be >= 1, got {args.users}", file=sys.stderr)
        return 2
    if args.metadata_shards < 1:
        print(f"--metadata-shards must be >= 1, got {args.metadata_shards}",
              file=sys.stderr)
        return 2
    if args.metadata_replicas < 0:
        print(f"--metadata-replicas must be >= 0, got {args.metadata_replicas}",
              file=sys.stderr)
        return 2
    if args.speedup <= 0:
        print(f"--speedup must be > 0, got {args.speedup}", file=sys.stderr)
        return 2
    if args.rate is not None and args.rate <= 0:
        print(f"--rate must be > 0, got {args.rate}", file=sys.stderr)
        return 2
    if args.window <= 0:
        print(f"--window must be > 0, got {args.window}", file=sys.stderr)
        return 2
    slo = None
    if args.slo:
        try:
            slo = SloPolicy.parse(args.slo)
        except ValueError as exc:
            print(f"bad --slo: {exc}", file=sys.stderr)
            return 2
    trace = synthetic_replay_trace(args.users, args.seed)
    cluster = ServiceCluster(
        n_frontends=args.frontends,
        faults=correlated_config() if args.faults else None,
        fault_seed=args.fault_seed,
        frontend_capacity=args.capacity,
        retry_policy=R4_RETRY_POLICY,
        metadata_shards=args.metadata_shards,
        metadata_replicas=args.metadata_replicas,
        read_policy=args.read_policy,
    )
    result = replay_trace(
        trace,
        cluster,
        speedup=args.speedup,
        rate=args.rate,
        mode=args.mode,
        seed=args.seed,
        window_seconds=args.window,
    )
    snap = result.snapshot(slo)
    if args.json:
        print(snap.to_json())
    else:
        print(
            f"replayed {result.ops_total} ops ({result.mode} loop, "
            f"speedup {result.speedup:g}x, offered rate "
            f"{result.offered_rate:.3f} ops/s): "
            f"{result.ops_completed} completed, {result.ops_aborted} aborted, "
            f"{result.ops_skipped} skipped"
        )
        print(snap.render())
    print(f"  access-log digest: {result.log_digest()}")
    if slo is not None and not snap.slo_ok:
        print("FAIL: SLO violated", file=sys.stderr)
        return 1
    return 0


def _cmd_autoscale(args: argparse.Namespace) -> int:
    """Run the chaos-coupled autoscaling loop once and print the outcome.

    Prints one line per window plus a final ``autoscale digest:`` line so
    CI can assert two invocations are byte-identical (autoscaler-smoke
    job).  ``--json PATH`` additionally writes the fleet-trajectory JSON
    artifact.
    """
    from pathlib import Path

    from .experiments.r6_autoscaler import (
        FRONTEND_CAPACITY,
        MEAN_SIZE,
        PEAK_OPS,
        R6_POLICY,
        R6_RETRY_POLICY,
        SLO_SHED,
        WINDOW_SECONDS,
        build_faults,
    )
    from .service.autoscaler import (
        diurnal_autoscale_workload,
        run_autoscaled_service,
    )

    if args.windows < 1:
        print(f"--windows must be >= 1, got {args.windows}", file=sys.stderr)
        return 2
    workload = diurnal_autoscale_workload(
        args.windows,
        window_seconds=WINDOW_SECONDS,
        peak_ops=PEAK_OPS,
        mean_size=MEAN_SIZE,
        seed=args.seed,
    )
    run = run_autoscaled_service(
        workload,
        R6_POLICY,
        strategy=args.strategy,
        faults=build_faults(args.regime, workload.horizon),
        fault_seed=args.fault_seed,
        frontend_capacity=FRONTEND_CAPACITY,
        retry_policy=R6_RETRY_POLICY,
        slo_shed=SLO_SHED,
    )
    print(
        f"autoscale: strategy={run.strategy} regime={args.regime} "
        f"windows={workload.n_windows} fault-seed={args.fault_seed}"
    )
    for w in run.windows:
        flags = "".join(
            flag for flag, on in (
                ("V", w.violation), ("U", w.underprovisioned)
            ) if on
        )
        print(
            f"  w{w.window:03d} fleet={w.fleet:3d} offered={w.offered:3d} "
            f"shed={w.shed_rate:6.1%} down={w.down_fraction:6.1%} "
            f"{flags}"
        )
    print(
        f"  server-hours={run.server_hours} "
        f"violations={run.violation_windows}/{workload.n_windows} "
        f"underprovisioned={run.underprovisioned_windows} "
        f"aborted={run.aborted} reconciled={run.reconciled}"
    )
    if args.json:
        Path(args.json).write_text(run.trajectory_json(), encoding="utf-8")
        print(f"  trajectory written to {args.json}")
    print(f"autoscale digest: {run.log_digest}")
    if not run.reconciled:
        print("FAIL: telemetry did not reconcile with FaultStats",
              file=sys.stderr)
        return 1
    return 0


def _cmd_paper_scale(args: argparse.Namespace) -> int:
    """Streaming columnar pipeline: generate → merge → analyze, bounded RAM.

    Prints the analysis digest so CI can assert that two invocations are
    byte-identical (paper-scale-smoke job), plus peak RSS so the memory
    bound is observable.  ``--check`` additionally runs the in-memory
    columnar engine on the concatenated parts and asserts digest
    equality — only viable at scales that fit in RAM.
    """
    import json
    import resource
    import tempfile

    from .core.streaming import analyze_stream, report_from_columnar
    from .logs.columnar import ColumnarTrace
    from .workload.generator import GeneratorOptions
    from .workload.parallel import generate_columnar_sharded

    if args.users < 1:
        print(f"--users must be >= 1, got {args.users}", file=sys.stderr)
        return 2
    if args.block_rows < 1:
        print(f"--block-rows must be >= 1, got {args.block_rows}",
              file=sys.stderr)
        return 2
    options = GeneratorOptions(max_chunks_per_file=args.max_chunks)
    with tempfile.TemporaryDirectory(dir=args.parts_dir) as scratch:
        sharded = generate_columnar_sharded(
            args.users,
            n_pc_only_users=args.pc_users,
            options=options,
            seed=args.seed,
            n_shards=args.shards,
            n_workers=args.workers or None,
            part_dir=scratch,
            batch_records=args.batch_records,
        )
        report = analyze_stream(
            sharded.merged_blocks(block_rows=args.block_rows), tau=args.tau
        )
        check_ok = None
        if args.check:
            reference = report_from_columnar(
                ColumnarTrace.concatenate(
                    sharded.open_parts()
                ).sorted_by_user_time(),
                tau=args.tau,
            )
            check_ok = reference.digest() == report.digest()
    # Linux reports ru_maxrss in KiB (macOS in bytes).
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = peak / 1024 if sys.platform != "darwin" else peak / (1024 * 1024)
    summary = {
        "users": args.users + args.pc_users,
        "records": report.n_records,
        "shards": args.shards,
        "block_rows": args.block_rows,
        "sessions": report.sessions.n_sessions,
        "profiled_users": report.users.n_users,
        "intervals": report.intervals.n_intervals,
        "digest": report.digest(),
        "peak_rss_mb": round(peak_mb, 1),
    }
    if args.json:
        # Pure JSON on stdout (the digest is a summary field there).
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"paper-scale: {summary['records']} records from "
            f"{summary['users']} users across {args.shards} shards "
            f"(block {args.block_rows} rows)"
        )
        print(
            f"  sessions: {summary['sessions']}  users profiled: "
            f"{summary['profiled_users']}  intervals: {summary['intervals']}"
        )
        print(f"  peak RSS: {summary['peak_rss_mb']} MB")
        print(f"  analysis digest: {summary['digest']}")
    if check_ok is not None:
        if not check_ok:
            print("FAIL: streaming digest != in-memory digest",
                  file=sys.stderr)
            return 1
        if not args.json:
            print("  check: streaming == in-memory engine")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.engine import lint_command

    return lint_command(
        args.paths,
        json_out=args.json,
        baseline=args.baseline,
        rules=args.rules,
        cache_file=None if args.no_cache else args.cache_file,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'An Empirical Analysis of a "
            "Large-scale Mobile Cloud Storage Service' (IMC 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a request trace")
    gen.add_argument("output", help="output path (.tsv/.jsonl, optionally .gz)")
    gen.add_argument("--users", type=int, default=1000)
    gen.add_argument("--pc-users", type=int, default=0)
    gen.add_argument("--max-chunks", type=int, default=8,
                     help="chunk records per file cap")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--workers", type=int, default=1,
                     help="worker processes for sharded generation "
                          "(output is identical for any value)")
    gen.add_argument("--shards", type=int, default=0,
                     help="population shards (default: --workers); "
                          "output is identical for any value")
    gen.add_argument("--anonymize", action="store_true",
                     help="pseudonymize user/device ids")
    gen.set_defaults(func=_cmd_generate)

    ana = sub.add_parser("analyze", help="analyze a trace file")
    ana.add_argument("trace", help="trace path written by 'generate'")
    ana.add_argument("--fast", action="store_true",
                     help="skip the mixture-model fit")
    ana.add_argument("--engine", choices=("records", "columnar"),
                     default="records",
                     help="analysis implementation: per-record objects or "
                          "the vectorized struct-of-arrays fast path "
                          "(identical results)")
    ana.set_defaults(func=_cmd_analyze)

    exp = sub.add_parser("experiments", help="run the reproduction battery")
    exp.add_argument("only", nargs="*",
                     help="substring filters on experiment names")
    exp.add_argument("--json", action="store_true",
                     help="emit machine-readable results")
    exp.set_defaults(func=_cmd_experiments)

    val = sub.add_parser(
        "validate", help="rerun experiments across seeds (robustness)"
    )
    val.add_argument("only", nargs="*",
                     help="substring filters on experiment names")
    val.add_argument("--seeds", type=int, default=3,
                     help="number of extra seeds beyond the default run")
    val.add_argument("--base-seed", type=int, default=100)
    val.set_defaults(func=_cmd_validate)

    sim = sub.add_parser("simulate-flow", help="run one packet-level flow")
    sim.add_argument("--direction", choices=("store", "retrieve"),
                     default="store")
    sim.add_argument("--device", choices=("android", "ios"), default="android")
    sim.add_argument("--chunks", type=int, default=8)
    sim.add_argument("--bandwidth", type=float, default=2_000_000.0,
                     help="bottleneck bytes/second")
    sim.add_argument("--rtt", type=float, default=0.1, help="base RTT seconds")
    sim.add_argument("--seed", type=int, default=0)
    sim.set_defaults(func=_cmd_simulate_flow)

    chaos = sub.add_parser(
        "faults-demo",
        help="chaos smoke test: inject faults, require full recovery",
    )
    chaos.add_argument("--fault-rate", type=float, default=0.05,
                       help="fault severity (see FaultConfig.at_rate)")
    chaos.add_argument("--users", type=int, default=12)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--zones", type=int, default=0,
                       help="partition the fleet into N correlated failure "
                            "zones (0 = independent faults only)")
    chaos.add_argument("--zone-share", type=float, default=0.6,
                       help="fraction of the crash budget moved into the "
                            "shared zone-level outage process")
    chaos.add_argument("--metadata-shards", type=int, default=1,
                       help="run the replicated metadata chaos arm with N "
                            "namespace shards (1 = historical demos)")
    chaos.add_argument("--metadata-replicas", type=int, default=0,
                       help="replicas per metadata shard")
    chaos.add_argument("--read-policy",
                       choices=("primary-only", "quorum", "any-replica"),
                       default="quorum",
                       help="metadata read policy for the replicated arm")
    chaos.set_defaults(func=_cmd_faults_demo)

    rep = sub.add_parser(
        "replay",
        help="open-loop traffic replay with latency/shed telemetry",
    )
    rep.add_argument("--users", type=int, default=16,
                     help="users in the synthetic replay trace")
    rep.add_argument("--seed", type=int, default=0,
                     help="trace + client seed (replay is deterministic)")
    rep.add_argument("--speedup", type=float, default=1.0,
                     help="divide every arrival timestamp by this factor")
    rep.add_argument("--rate", type=float, default=None,
                     help="target mean offered rate in ops/s "
                          "(overrides --speedup)")
    rep.add_argument("--mode", choices=("open", "closed"), default="open",
                     help="open: client clocks jump to scheduled arrivals; "
                          "closed: historical wait-for-completion semantics")
    rep.add_argument("--frontends", type=int, default=2)
    rep.add_argument("--capacity", type=int, default=8,
                     help="per-front-end in-flight admission limit")
    rep.add_argument("--faults", action="store_true",
                     help="arm the R4 correlated fault plan")
    rep.add_argument("--fault-seed", type=int, default=7)
    rep.add_argument("--metadata-shards", type=int, default=1,
                     help="metadata namespace shards (1 = historical "
                          "single server)")
    rep.add_argument("--metadata-replicas", type=int, default=0,
                     help="replicas per metadata shard")
    rep.add_argument("--read-policy",
                     choices=("primary-only", "quorum", "any-replica"),
                     default="primary-only",
                     help="metadata read policy for the sharded tier")
    rep.add_argument("--slo", default=None,
                     help="SLO policy, e.g. 'p99=30,shed=0.01,fail=0.05' "
                          "(exit 1 on violation)")
    rep.add_argument("--window", type=float, default=60.0,
                     help="telemetry window length, virtual seconds")
    rep.add_argument("--json", action="store_true",
                     help="emit the telemetry snapshot as JSON")
    rep.set_defaults(func=_cmd_replay)

    paper = sub.add_parser(
        "paper-scale",
        help="streaming columnar pipeline: generate, merge and analyze "
             "in bounded memory",
    )
    paper.add_argument("--users", type=int, default=50_000,
                       help="mobile users to generate")
    paper.add_argument("--pc-users", type=int, default=0,
                       help="PC-only users to generate")
    paper.add_argument("--max-chunks", type=int, default=8,
                       help="chunk records per file cap")
    paper.add_argument("--seed", type=int, default=0)
    paper.add_argument("--shards", type=int, default=8,
                       help="columnar shard parts (output identical for "
                            "any value)")
    paper.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = one per core, capped "
                            "at --shards)")
    paper.add_argument("--block-rows", type=int, default=1 << 20,
                       help="merge window per shard; peak RSS scales with "
                            "block-rows x shards, not with records")
    paper.add_argument("--batch-records", type=int, default=65_536,
                       help="records a worker buffers before appending to "
                            "its part files")
    paper.add_argument("--tau", type=float, default=3600.0,
                       help="session cut threshold, seconds")
    paper.add_argument("--parts-dir", default=None,
                       help="directory for the scratch part files "
                            "(default: system temp; always cleaned up)")
    paper.add_argument("--check", action="store_true",
                       help="also run the in-memory engine and assert "
                            "digest equality (loads the whole trace)")
    paper.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")
    paper.set_defaults(func=_cmd_paper_scale)

    auto = sub.add_parser(
        "autoscale",
        help="chaos-coupled autoscaling loop (R6 configuration)",
    )
    auto.add_argument("--strategy",
                      choices=("static", "reactive", "fault-aware",
                               "predictive", "oracle"),
                      default="fault-aware",
                      help="fleet controller to drive the loop with")
    auto.add_argument("--regime",
                      choices=("fault-free", "independent", "correlated"),
                      default="correlated",
                      help="fault regime to deploy under the fleet")
    auto.add_argument("--windows", type=int, default=48,
                      help="number of windows to simulate")
    auto.add_argument("--seed", type=int, default=0,
                      help="workload seed")
    auto.add_argument("--fault-seed", type=int, default=3,
                      help="fault-plan master seed")
    auto.add_argument("--json", metavar="FILE", default=None,
                      help="also write the fleet-trajectory JSON artifact")
    auto.set_defaults(func=_cmd_autoscale)

    lint = sub.add_parser(
        "lint",
        help="run reprolint (determinism & schema-invariant static analysis)",
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable findings")
    lint.add_argument("--baseline", metavar="FILE",
                      help="JSON findings file whose entries are ignored")
    lint.add_argument("--rules", metavar="IDS",
                      help="comma-separated rule subset to run (e.g. D2,M1)")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the incremental summary cache")
    lint.add_argument("--cache-file", metavar="FILE",
                      default=".reprolint_cache.json",
                      help="summary cache location "
                           "(default: .reprolint_cache.json)")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
