"""Download popularity modeling.

The paper observes that download-only users fetch widely shared content —
videos and software packages distributed as URLs through social media —
and proposes monitoring download popularity for locality of interest
(Section 3.1.4).  This module models that shared-content request stream:
a catalog of shared objects with Zipf-like popularity and retrieval-mixture
sizes, plus the request sequence a cache proxy would see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MB = 1024 * 1024


@dataclass(frozen=True)
class SharedObject:
    """One shared object in the download catalog."""

    key: str
    size: int


@dataclass(frozen=True)
class PopularityModel:
    """Catalog and request-process parameters.

    ``zipf_s = 0`` degenerates to uniform popularity (the no-locality
    null hypothesis the paper wants to test against).
    """

    n_objects: int = 500
    zipf_s: float = 0.9
    #: Shared content skews large (the paper's ~150 MB component); sizes
    #: come from an exponential around this mean with a floor.
    mean_size_mb: float = 60.0
    min_size_mb: float = 1.0

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("n_objects must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.mean_size_mb <= 0 or self.min_size_mb <= 0:
            raise ValueError("sizes must be positive")


def build_catalog(
    model: PopularityModel, rng: np.random.Generator
) -> list[SharedObject]:
    """The shared-object catalog, most popular first."""
    sizes = np.maximum(
        model.min_size_mb * MB,
        rng.exponential(model.mean_size_mb * MB, model.n_objects),
    ).astype(np.int64)
    return [
        SharedObject(key=f"obj-{i}", size=int(sizes[i]))
        for i in range(model.n_objects)
    ]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf rank weights ``1 / rank**s``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


def request_stream(
    model: PopularityModel,
    n_requests: int,
    seed: int = 0,
) -> tuple[list[SharedObject], list[SharedObject]]:
    """(catalog, requests): the sequence a front cache would see."""
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = np.random.default_rng(seed)
    catalog = build_catalog(model, rng)
    weights = zipf_weights(model.n_objects, model.zipf_s)
    choices = rng.choice(model.n_objects, size=n_requests, p=weights)
    return catalog, [catalog[int(i)] for i in choices]


def corpus_bytes(catalog: list[SharedObject]) -> int:
    """Total unique bytes in the catalog."""
    return sum(o.size for o in catalog)
