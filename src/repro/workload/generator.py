"""The synthetic trace generator.

Executes a synthesized population (:mod:`repro.workload.population`) into a
stream of Table 1 :class:`~repro.logs.schema.LogRecord` entries: for each
user, sessions on their active days at diurnal start times; within each
session, file operations bunched at the beginning (the paper's burstiness),
followed by the chunk requests that move the data; chunk timing priced by
the closed-form TCP transfer model with slow-start-restart penalties.

The generator is streaming — it yields records user by user — and every
record carries a ground-truth ``session_id`` that the analysis pipeline
ignores but tests use to score the recovered sessionization.

Every user's record stream depends only on the master seed and their own
``user_id`` (per-user generators are spawned off the master seed through
:class:`numpy.random.SeedSequence`, and session ids live in a per-user
namespace), so users can be generated in any order — or on any worker —
and still produce bit-identical records.  :mod:`repro.workload.parallel`
relies on this contract to shard generation across processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..logs.schema import CHUNK_SIZE, DeviceType, Direction, LogRecord, RequestKind
from ..service.frontend import TransferModel
from ..tcpsim.devices import DEFAULT_SERVER, ServerProfile, profile_for
from ..tcpsim.rto import paper_rto_estimate
from .config import UserType, WorkloadConfig
from .diurnal import SECONDS_PER_DAY, DiurnalSampler
from .population import UserSpec, build_population
from .sessions import SessionClass, SessionPlan, SessionPlanner

#: Session ids are namespaced per user: user ``u``'s ``k``-th session gets
#: id ``u * SESSION_ID_STRIDE + k``.  A user emits at most a few sessions
#: per active day, so the stride leaves orders of magnitude of headroom
#: while keeping ids unique across the whole population regardless of the
#: order (or process) users are generated in.
SESSION_ID_STRIDE = 1 << 16


def user_rng(master_seed: int, user_id: int) -> np.random.Generator:
    """Derive user ``user_id``'s private RNG from the master seed.

    Uses a :class:`numpy.random.SeedSequence` spawn key, the supported way
    to carve independent, collision-resistant streams out of one seed:
    ``SeedSequence(s, spawn_key=(u,))`` is exactly the ``u``-th child that
    ``SeedSequence(s).spawn(n)`` would produce, without materializing the
    other ``n - 1``.  The derivation depends only on ``(master_seed,
    user_id)``, never on generation order — the property that lets shards
    of the population be generated on different workers bit-identically.
    """
    return np.random.default_rng(
        np.random.SeedSequence(master_seed, spawn_key=(user_id,))
    )


@dataclass(frozen=True)
class GeneratorOptions:
    """Knobs that trade fidelity for trace size.

    Attributes
    ----------
    max_chunks_per_file:
        Cap on chunk *records* per file.  Volumes are preserved exactly: a
        capped file emits records whose volumes sum to the file size.  The
        512 KB convention only matters for record counts, not for any
        analysis in the paper, so benches use small caps to keep synthetic
        traces tractable.
    emit_chunks:
        When False only file operations are emitted (enough for the
        session/interval analyses), shrinking traces by another order of
        magnitude.
    """

    max_chunks_per_file: int = 64
    emit_chunks: bool = True

    def __post_init__(self) -> None:
        if self.max_chunks_per_file < 1:
            raise ValueError("max_chunks_per_file must be >= 1")


class TraceGenerator:
    """Generates one observation week of synthetic request logs.

    Parameters
    ----------
    n_mobile_users:
        Mobile user population size.
    n_pc_only_users:
        Additional PC-only users (for Table 3's third column).
    config:
        Calibration parameters; defaults to the paper values.
    options:
        Fidelity/size trade-offs.
    seed:
        Master seed; the trace is fully deterministic given it.
    population:
        Prebuilt user specs to execute instead of synthesizing them from
        the counts.  The caller must guarantee they came from
        :func:`~repro.workload.population.build_population` with the same
        ``(counts, config, seed)`` — the sharded engine uses this to build
        the population once and hand each worker only its shard.
    """

    def __init__(
        self,
        n_mobile_users: int,
        *,
        n_pc_only_users: int = 0,
        config: WorkloadConfig | None = None,
        options: GeneratorOptions | None = None,
        seed: int = 0,
        population: list[UserSpec] | None = None,
    ) -> None:
        if n_mobile_users < 1:
            raise ValueError(
                f"n_mobile_users must be >= 1, got {n_mobile_users}"
            )
        if n_pc_only_users < 0:
            raise ValueError(
                f"n_pc_only_users must be >= 0, got {n_pc_only_users}"
            )
        self.config = config or WorkloadConfig()
        self.options = options or GeneratorOptions()
        self.seed = seed
        self.population = (
            population
            if population is not None
            else build_population(
                n_mobile_users,
                n_pc_only_users=n_pc_only_users,
                config=self.config,
                seed=seed,
            )
        )
        self._diurnal = DiurnalSampler(self.config.diurnal)
        self._planner = SessionPlanner(self.config.session_mix, self.config.file_sizes)
        self._transfer = TransferModel()
        self._server: ServerProfile = DEFAULT_SERVER

    # ------------------------------------------------------------------
    # Record generation
    # ------------------------------------------------------------------

    def generate(self) -> Iterator[LogRecord]:
        """Yield the full trace, grouped by user, time-ordered per user."""
        for user in self.population:
            yield from self.generate_user(user)

    def generate_user(self, user: UserSpec) -> Iterator[LogRecord]:
        """Yield one user's records in timestamp order.

        Depends only on ``(self.seed, user)`` — no generator state survives
        between users — so any subset of the population can be generated in
        any order (or in another process) with bit-identical output.
        """
        rng = user_rng(self.seed, user.user_id)
        records: list[LogRecord] = []
        store_left = user.store_files
        retrieve_left = user.retrieve_files

        plans = self._plan_days(user, store_left, retrieve_left, rng)
        used_platforms: set[bool] = set()  # True = PC
        session_index = 0
        for day, day_plans in plans:
            # Days with several sessions start early enough that the chain
            # stays within the day (a midnight spill would register as a
            # spurious "return" in the engagement analyses), with gaps
            # comfortably above the one-hour session threshold.
            n_plans = len(day_plans)
            gap_hi = min(4.5, max(2.0, 14.0 / max(1, n_plans - 1)))
            base = self._diurnal.sample_timestamp(day, rng)
            latest_start = (
                (day + 1) * SECONDS_PER_DAY
                - (n_plans - 1) * gap_hi * 3600.0
                - 1800.0
            )
            base = max(day * SECONDS_PER_DAY, min(base, latest_start))
            for plan in day_plans:
                device = self._pick_device(
                    user, plan, rng, session_index, used_platforms
                )
                used_platforms.add(device.device_type is DeviceType.PC)
                session_index += 1
                session_id = user.user_id * SESSION_ID_STRIDE + session_index
                records.extend(
                    self._emit_session(user, device.device_id, device.device_type,
                                       plan, base, session_id, rng)
                )
                base += float(rng.uniform(0.5 * gap_hi, gap_hi)) * 3600.0
        records.sort(key=lambda r: r.timestamp)
        yield from records

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan_days(
        self,
        user: UserSpec,
        store_left: int,
        retrieve_left: int,
        rng: np.random.Generator,
    ) -> list[tuple[int, list[SessionPlan]]]:
        """Distribute the user's weekly file budget over their active days.

        At most a few sessions happen per day (keeping the inter-session
        interval component near the paper's one-day scale); whatever store
        budget survives to the last active day drains in one bulk
        auto-backup session, so heavy users' stretched-exponential activity
        counts are preserved.
        """
        day_plans: list[tuple[int, list[SessionPlan]]] = []
        occasional = user.user_type is UserType.OCCASIONAL
        size_cap = 450 * 1024 if occasional else None
        pc_profile = not user.mobile_devices
        days = list(user.active_days)
        max_sessions_per_day = 3
        for index, day in enumerate(days):
            plans: list[SessionPlan] = []
            last_day = index == len(days) - 1
            remaining_days = len(days) - index
            while (store_left > 0 or retrieve_left > 0) and (
                len(plans) < max_sessions_per_day
            ):
                # Reserve at least one file per remaining active day, so an
                # engaged user still has something to do when they return
                # (otherwise every later visit would be invisible in logs).
                reserve = min(remaining_days - 1, 2)
                store_today = max(0, store_left - reserve)
                retrieve_today = max(0, retrieve_left - reserve)
                if store_today <= 0 and retrieve_today <= 0:
                    if store_left > 0:
                        store_today = 1
                    else:
                        retrieve_today = 1
                plan = self._planner.plan_session(
                    rng,
                    store_budget=store_today,
                    retrieve_budget=retrieve_today,
                    pc_profile=pc_profile,
                    max_avg_size_bytes=size_cap,
                )
                store_left -= len(plan.store_sizes)
                retrieve_left -= len(plan.retrieve_sizes)
                plans.append(plan)
                if not last_day and float(rng.uniform()) < 0.9:
                    break  # leave the rest for later days
            if last_day and store_left > 0:
                plans.append(
                    self._planner.plan_session(
                        rng,
                        store_budget=store_left,
                        retrieve_budget=0,
                        pc_profile=pc_profile,
                        max_avg_size_bytes=size_cap,
                        bulk_store_ops=store_left,
                    )
                )
                store_left = 0
            if last_day and retrieve_left > 0:
                plans.append(
                    self._planner.plan_session(
                        rng,
                        store_budget=0,
                        retrieve_budget=retrieve_left,
                        pc_profile=pc_profile,
                        max_avg_size_bytes=size_cap,
                        bulk_retrieve_ops=retrieve_left,
                    )
                )
                retrieve_left = 0
            if user.same_day_sync and index == 0 and plans:
                # Mixed users syncing uploads the same day: append a small
                # retrieval session mirroring part of today's upload,
                # consuming retrieve budget when available.
                first_store = next(
                    (p for p in plans if p.store_sizes), None
                )
                if first_store is not None:
                    sizes = first_store.store_sizes[
                        : max(1, len(first_store.store_sizes) // 2)
                    ]
                    retrieve_left = max(0, retrieve_left - len(sizes))
                    plans.append(
                        SessionPlan(
                            session_class=SessionClass.RETRIEVE_ONLY,
                            store_sizes=(),
                            retrieve_sizes=sizes,
                        )
                    )
            if plans:
                day_plans.append((day, plans))
        return day_plans

    def _pick_device(
        self,
        user: UserSpec,
        plan: SessionPlan,
        rng: np.random.Generator,
        session_index: int,
        used_platforms: set[bool],
    ):
        """Choose the device performing a session.

        Mobile&PC users retrieve preferentially from the PC (the paper:
        "users are more likely to sync data uploaded by mobile devices
        from PCs"), store preferentially from mobile, and touch the
        platform they have not used yet on their second session (real
        dual-platform users run the client on both machines).
        """
        mobile = user.mobile_devices
        pcs = user.pc_devices
        if not mobile:
            return pcs[0]
        if not pcs:
            return mobile[int(rng.integers(0, len(mobile)))]
        if session_index >= 1 and len(used_platforms) == 1:
            # Visit the other platform so the user shows up as mobile&PC.
            want_pc = not next(iter(used_platforms))
            return pcs[0] if want_pc else mobile[0]
        if plan.session_class is SessionClass.RETRIEVE_ONLY:
            if float(rng.uniform()) < 0.6:
                return pcs[0]
        elif float(rng.uniform()) < 0.55:
            return mobile[int(rng.integers(0, len(mobile)))]
        return pcs[0] if float(rng.uniform()) < 0.6 else mobile[0]

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit_session(
        self,
        user: UserSpec,
        device_id: str,
        device_type: DeviceType,
        plan: SessionPlan,
        start: float,
        session_id: int,
        rng: np.random.Generator,
    ) -> list[LogRecord]:
        """Emit one session: bursty file operations, then chunk streams."""
        intervals = self.config.intervals
        records: list[LogRecord] = []

        ops: list[tuple[Direction, int]] = [
            (Direction.STORE, size) for size in plan.store_sizes
        ] + [(Direction.RETRIEVE, size) for size in plan.retrieve_sizes]

        # Large sessions are always app-batched (multi-select backup);
        # smaller multi-op sessions are batched with probability
        # p_batch_small, else the user drives them one file at a time.
        batch_mode = len(ops) > intervals.batch_threshold or (
            len(ops) > 1 and float(rng.uniform()) < intervals.p_batch_small
        )
        mean_log10, std_log10 = (
            (intervals.batch_mean_log10, intervals.batch_std_log10)
            if batch_mode
            else (intervals.within_mean_log10, intervals.within_std_log10)
        )

        op_time = start
        op_times: list[tuple[float, Direction, int]] = []
        for index, (direction, size) in enumerate(ops):
            if index:
                gap = 10.0 ** float(rng.normal(mean_log10, std_log10))
                op_time += gap
            op_times.append((op_time, direction, size))

        rtt = user.rtt
        tsrv_meta = float(self._server.tsrv.sample(rng)) * 0.2
        for when, direction, _size in op_times:
            records.append(
                LogRecord(
                    timestamp=when,
                    device_type=device_type,
                    device_id=device_id,
                    user_id=user.user_id,
                    kind=RequestKind.FILE_OP,
                    direction=direction,
                    volume=0,
                    processing_time=tsrv_meta,
                    server_time=tsrv_meta,
                    rtt=rtt,
                    proxied=user.proxied,
                    session_id=session_id,
                )
            )

        if self.options.emit_chunks and not user.dedup_only:
            # Transfers share the device's link: each file's chunk stream
            # starts once the previous file finished (the app's transfer
            # queue), which is what stretches sessions far beyond the
            # operating time and produces the Fig 4 burstiness.
            transfer_clock = 0.0
            for when, direction, size in op_times:
                start = max(when + float(rng.uniform(0.05, 0.3)), transfer_clock)
                chunk_records, transfer_clock = self._emit_chunks(
                    user, device_id, device_type, direction, size,
                    start, session_id, rng,
                )
                records.extend(chunk_records)
        records.sort(key=lambda r: r.timestamp)
        return records

    def _emit_chunks(
        self,
        user: UserSpec,
        device_id: str,
        device_type: DeviceType,
        direction: Direction,
        file_size: int,
        start: float,
        session_id: int,
        rng: np.random.Generator,
    ) -> tuple[list[LogRecord], float]:
        """Emit the chunk requests moving one file.

        Returns the records plus the time the transfer finished, so the
        caller can queue the next file behind it.
        """
        n_full = max(1, math.ceil(file_size / CHUNK_SIZE))
        n_records = min(n_full, self.options.max_chunks_per_file)
        # Volumes per emitted record, preserving the exact file size.
        base_volume, remainder = divmod(file_size, n_records)
        volumes = [base_volume + (1 if i < remainder else 0) for i in range(n_records)]

        profile = profile_for(device_type)
        is_store = direction is Direction.STORE
        tclt_dist = profile.tclt(is_store)
        rto = paper_rto_estimate(user.rtt)
        bandwidth = user.bandwidth * (
            1.0 if is_store else self.config.network.downlink_factor
        )
        records: list[LogRecord] = []
        clock = start
        idle = 0.0
        for index, volume in enumerate(volumes):
            restarted = index > 0 and idle > rto
            tsrv = float(self._server.tsrv.sample(rng))
            ttran = self._transfer.transfer_time(
                volume, user.rtt, bandwidth, direction, restarted
            )
            tchunk = ttran + tsrv
            records.append(
                LogRecord(
                    timestamp=clock,
                    device_type=device_type,
                    device_id=device_id,
                    user_id=user.user_id,
                    kind=RequestKind.CHUNK,
                    direction=direction,
                    volume=volume,
                    processing_time=tchunk,
                    server_time=tsrv,
                    rtt=user.rtt,
                    proxied=user.proxied,
                    session_id=session_id,
                )
            )
            tclt = float(tclt_dist.sample(rng))
            clock += tchunk + tclt
            idle = tsrv + tclt
        return records, clock


def generate_trace(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
) -> list[LogRecord]:
    """Convenience wrapper: generate and materialize a full trace."""
    generator = TraceGenerator(
        n_mobile_users,
        n_pc_only_users=n_pc_only_users,
        config=config,
        options=options,
        seed=seed,
    )
    return list(generator.generate())
