"""Sharded parallel trace generation.

The serial :class:`~repro.workload.generator.TraceGenerator` executes the
whole population in one process, which makes week-scale traces CPU-bound
on a single core.  This module partitions the population into ``K``
deterministic shards and generates them on worker processes, preserving a
strict determinism contract:

**Determinism contract.**  For a fixed master seed, the multiset of
records produced is identical regardless of the number of shards, the
number of workers, or worker scheduling.  Three properties make this
hold:

1. Per-user RNG streams are spawned off the master seed with
   :class:`numpy.random.SeedSequence` keyed only by ``user_id`` (see
   :func:`repro.workload.generator.user_rng`), so a user's records do not
   depend on which other users a worker generates, or in what order.
2. Session ids are namespaced per user
   (``user_id * SESSION_ID_STRIDE + k``), so no cross-user counter leaks
   scheduling order into the output.
3. Shard assignment is a pure function of ``user_id`` and the shard
   count (:func:`shard_of_user`), and every worker rebuilds the same
   deterministic population from ``(n_mobile_users, n_pc_only_users,
   config, seed)``.

Each shard's records are sorted by the total order :func:`merge_key` =
``(timestamp, user_id)`` and streamed to a per-shard TSV/JSONL part file
through :mod:`repro.logs.io`; :func:`merge_shards` is a k-way heap merge
over the part files, so downstream analyses see one globally
timestamp-sorted stream without ever materializing the trace in memory.
Ties within one ``(timestamp, user_id)`` key keep the user's emission
order, which is well-defined because a user lives in exactly one shard.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..logs.columnar import (
    DEFAULT_MERGE_BLOCK_ROWS,
    ColumnarTrace,
    merge_columnar_sorted,
)
from ..logs.io import open_reader, read_columnar, write_jsonl, write_tsv
from ..logs.parts import ColumnarPartWriter, read_columnar_part
from ..logs.schema import LogRecord
from .config import WorkloadConfig
from .generator import GeneratorOptions, TraceGenerator
from .population import UserSpec, build_population

#: Part files are named ``part-0042.tsv`` etc. inside the part directory.
PART_STEM = "part"

#: Records a columnar-part worker buffers before appending them to the
#: part files.  Bounds worker RSS at O(batch), independent of shard size.
DEFAULT_PART_BATCH_RECORDS = 65_536


# ----------------------------------------------------------------------
# Shard partitioning
# ----------------------------------------------------------------------


def shard_of_user(user_id: int, n_shards: int) -> int:
    """Deterministic shard assignment: ``user_id % n_shards``.

    A pure function of its arguments — independent of population size,
    generation order, and worker count.  Changing ``n_shards`` *does*
    reassign users (this is the one documented instability); for a fixed
    shard count the mapping never changes.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return user_id % n_shards


def partition_users(
    users: Sequence[UserSpec], n_shards: int
) -> list[list[UserSpec]]:
    """Split ``users`` into ``n_shards`` lists by :func:`shard_of_user`.

    Every user lands in exactly one shard; shards may be empty (including
    the degenerate empty-population case, which yields ``n_shards`` empty
    lists).  Within a shard, the population's relative order is kept.
    """
    shards: list[list[UserSpec]] = [[] for _ in range(n_shards)]
    for user in users:
        shards[shard_of_user(user.user_id, n_shards)].append(user)
    return shards


def merge_key(record: LogRecord) -> tuple[float, int]:
    """Total-order sort key for shard files and the k-way merge.

    ``(timestamp, user_id)`` is total across shards because equal keys can
    only collide within a single user (one shard), where stable sorting
    preserves the generator's emission order.
    """
    return (record.timestamp, record.user_id)


# ----------------------------------------------------------------------
# Shard execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to regenerate one shard from scratch."""

    shard_index: int
    n_shards: int
    n_mobile_users: int
    n_pc_only_users: int
    config: WorkloadConfig | None
    options: GeneratorOptions | None
    seed: int
    #: Destination part file; ``None`` returns records in memory instead.
    path: str | None
    #: This shard's prebuilt user specs.  ``None`` makes the worker
    #: rebuild the (deterministic) population and partition it itself —
    #: same output, one redundant population build per worker.
    users: tuple[UserSpec, ...] | None = None
    #: Record batch size for the columnar-part worker (ignored by the
    #: TSV/JSONL and in-memory workers).
    batch_records: int = DEFAULT_PART_BATCH_RECORDS


@dataclass(frozen=True)
class ShardPart:
    """One generated shard: its part file (if any) and bookkeeping."""

    shard_index: int
    path: str | None
    n_records: int
    n_users: int
    records: tuple[LogRecord, ...] = ()

    def __iter__(self) -> Iterator[LogRecord]:
        if self.path is None:
            return iter(self.records)
        return open_reader(self.path)

    def columnar(self) -> ColumnarTrace:
        """Load this part as a :class:`ColumnarTrace` (bulk parse).

        The record iterator above re-parses the part file into one
        :class:`LogRecord` object per line; this path goes through the
        chunked columnar readers in :mod:`repro.logs.io` instead — no
        per-record objects, an order of magnitude faster on large parts.
        Prefer it (or :func:`generate_columnar_sharded`, which skips text
        entirely) for anything beyond record-at-a-time debugging.
        """
        if self.path is None:
            return ColumnarTrace.from_records(self.records)
        return read_columnar(self.path)


def generate_shard(task: ShardTask) -> ShardPart:
    """Generate one shard's records, sorted by :func:`merge_key`.

    Runs in a worker process: takes the shard's users from the task (or
    rebuilds the deterministic population and partitions it), then either
    streams the sorted records to ``task.path`` via :mod:`repro.logs.io`
    or returns them in memory.
    """
    generator = TraceGenerator(
        task.n_mobile_users,
        n_pc_only_users=task.n_pc_only_users,
        config=task.config,
        options=task.options,
        seed=task.seed,
        population=list(task.users) if task.users is not None else None,
    )
    users = (
        list(task.users)
        if task.users is not None
        else partition_users(generator.population, task.n_shards)[task.shard_index]
    )
    records = [r for user in users for r in generator.generate_user(user)]
    records.sort(key=merge_key)
    if task.path is None:
        return ShardPart(
            shard_index=task.shard_index,
            path=None,
            n_records=len(records),
            n_users=len(users),
            records=tuple(records),
        )
    writer = (
        write_jsonl
        if task.path.endswith((".jsonl", ".jsonl.gz"))
        else write_tsv
    )
    count = writer(records, task.path)
    return ShardPart(
        shard_index=task.shard_index,
        path=task.path,
        n_records=count,
        n_users=len(users),
    )


# ----------------------------------------------------------------------
# Orchestration and merging
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedTrace:
    """The output of a sharded generation run."""

    parts: tuple[ShardPart, ...]

    @property
    def n_records(self) -> int:
        return sum(part.n_records for part in self.parts)

    @property
    def paths(self) -> list[str]:
        return [part.path for part in self.parts if part.path is not None]

    def merged(self) -> Iterator[LogRecord]:
        """One globally time-sorted stream over all shards."""
        return heapq.merge(*self.parts, key=merge_key)


def merge_shards(paths: Sequence[str | Path]) -> Iterator[LogRecord]:
    """K-way merge of sorted part files into one time-sorted stream.

    Holds one record per shard in memory; output is non-decreasing in
    :func:`merge_key` provided each part file is sorted by it (which
    :func:`generate_shard` guarantees).
    """
    return heapq.merge(*(open_reader(p) for p in paths), key=merge_key)


def _resolve_workers(n_shards: int, n_workers: int | None) -> int:
    if n_workers is None:
        n_workers = min(n_shards, os.cpu_count() or 1)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return min(n_workers, n_shards)


def generate_sharded(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
    n_shards: int = 4,
    n_workers: int | None = None,
    part_dir: str | Path | None = None,
    part_format: str = "tsv",
) -> ShardedTrace:
    """Generate a trace as ``n_shards`` sorted shards on worker processes.

    Parameters
    ----------
    n_shards:
        Number of deterministic population shards.  The merged output is
        identical for every value (the determinism contract).
    n_workers:
        Worker processes; defaults to ``min(n_shards, cpu_count)``.  With
        one worker, shards run inline in this process (no pool overhead,
        same output).
    part_dir:
        Directory receiving ``part-NNNN.<fmt>`` files.  When ``None``,
        shards are returned in memory on the :class:`ShardPart` objects —
        records then round-trip through pickle instead of a file, keeping
        full float precision.
    part_format:
        ``"tsv"`` or ``"jsonl"`` (optionally with a ``.gz`` suffix, e.g.
        ``"tsv.gz"``), for ``part_dir`` mode.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    stem_format = part_format.removesuffix(".gz")
    if stem_format not in ("tsv", "jsonl"):
        raise ValueError(f"unsupported part format: {part_format!r}")
    n_workers = _resolve_workers(n_shards, n_workers)
    if part_dir is not None:
        part_dir = Path(part_dir)
        part_dir.mkdir(parents=True, exist_ok=True)
    # Build the population once here and hand each worker only its shard,
    # so workers skip the redundant O(population) rebuild.  build_population
    # validates the counts as a side effect.
    population = build_population(
        n_mobile_users,
        n_pc_only_users=n_pc_only_users,
        config=config or WorkloadConfig(),
        seed=seed,
    )
    shards = partition_users(population, n_shards)
    tasks = [
        ShardTask(
            shard_index=index,
            n_shards=n_shards,
            n_mobile_users=n_mobile_users,
            n_pc_only_users=n_pc_only_users,
            config=config,
            options=options,
            seed=seed,
            path=(
                str(part_dir / f"{PART_STEM}-{index:04d}.{part_format}")
                if part_dir is not None
                else None
            ),
            users=tuple(shards[index]),
        )
        for index in range(n_shards)
    ]
    if n_workers == 1:
        parts = [generate_shard(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            parts = list(pool.map(generate_shard, tasks))
    return ShardedTrace(parts=tuple(parts))


def generate_trace_parallel(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
    n_shards: int = 4,
    n_workers: int | None = None,
) -> list[LogRecord]:
    """Parallel drop-in for :func:`repro.workload.generator.generate_trace`.

    Generates in-memory shards on worker processes and returns the exact
    record list the serial generator would produce — same records, same
    order (the serial generator emits users in ascending ``user_id`` with
    each user time-sorted, so sorting the merged stream by ``(user_id,
    timestamp)`` reconstructs it; the sort is stable and a user's
    within-timestamp ties keep their emission order).

    .. deprecated:: use only where :class:`LogRecord` objects are the
       point (record-path equivalence tests, small debugging runs).  The
       per-record materialization caps this path far below paper scale;
       :func:`generate_columnar_parallel` returns the same trace as
       arrays, and :func:`generate_columnar_sharded` streams it through
       memory-mapped parts without materializing anything.
    """
    sharded = generate_sharded(
        n_mobile_users,
        n_pc_only_users=n_pc_only_users,
        config=config,
        options=options,
        seed=seed,
        n_shards=n_shards,
        n_workers=n_workers,
        part_dir=None,
    )
    records = [r for part in sharded.parts for r in part.records]
    records.sort(key=lambda r: (r.user_id, r.timestamp))
    return records


def _generate_shard_columnar(task: ShardTask) -> ColumnarTrace:
    """Worker: generate one shard and return it as column arrays.

    The worker streams its users' records straight into a
    :class:`ColumnarTrace` (records exist one user at a time and are
    dropped immediately), so what crosses the process boundary — and what
    the parent concatenates — is a handful of NumPy arrays, never a
    per-record object graph.  Rows are left in emission order (users in
    shard order, each user time-sorted); the parent's lexsort establishes
    the global order.
    """
    generator = TraceGenerator(
        task.n_mobile_users,
        n_pc_only_users=task.n_pc_only_users,
        config=task.config,
        options=task.options,
        seed=task.seed,
        population=list(task.users) if task.users is not None else None,
    )
    users = (
        list(task.users)
        if task.users is not None
        else partition_users(generator.population, task.n_shards)[task.shard_index]
    )
    return ColumnarTrace.from_records(
        r for user in users for r in generator.generate_user(user)
    )


def generate_columnar_parallel(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
    n_shards: int = 4,
    n_workers: int | None = None,
) -> ColumnarTrace:
    """Columnar counterpart of :func:`generate_trace_parallel`.

    Workers return struct-of-arrays shards which the parent concatenates
    and stably lexsorts by ``(user_id, timestamp)`` — the serial
    generator's emission order — so
    ``generate_columnar_parallel(...).to_records()`` equals
    ``generate_trace(...)`` record for record (and field for field: arrays
    round-trip through pickle at full float precision).  The parent never
    materializes a single :class:`LogRecord`.

    Note that worker results still cross the process boundary as pickled
    arrays and the parent holds — then lexsorts — the whole trace, so
    peak RSS is O(records).  :func:`generate_columnar_sharded` produces
    the identical stream through memory-mapped part files in
    O(block × shards) memory; prefer it beyond a few million records.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_workers = _resolve_workers(n_shards, n_workers)
    population = build_population(
        n_mobile_users,
        n_pc_only_users=n_pc_only_users,
        config=config or WorkloadConfig(),
        seed=seed,
    )
    shards = partition_users(population, n_shards)
    tasks = [
        ShardTask(
            shard_index=index,
            n_shards=n_shards,
            n_mobile_users=n_mobile_users,
            n_pc_only_users=n_pc_only_users,
            config=config,
            options=options,
            seed=seed,
            path=None,
            users=tuple(shards[index]),
        )
        for index in range(n_shards)
    ]
    if n_workers == 1:
        parts = [_generate_shard_columnar(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            parts = list(pool.map(_generate_shard_columnar, tasks))
    return ColumnarTrace.concatenate(parts).sorted_by_user_time()


@dataclass(frozen=True)
class ColumnarShardPart:
    """One shard written as a memory-mappable columnar part directory."""

    shard_index: int
    path: str
    n_records: int
    n_users: int

    def open(self, *, mmap: bool = True) -> ColumnarTrace:
        """Open the part (memory-mapped by default — zero copy)."""
        return read_columnar_part(self.path, mmap=mmap)


def _generate_shard_part(task: ShardTask) -> ColumnarShardPart:
    """Worker: stream one shard straight to a columnar part directory.

    Users are generated in ascending ``user_id`` order (each user's
    records already time-sorted), so the part is ``(user_id, timestamp)``-
    sorted on disk without any shard-wide sort or materialization: at
    most ``task.batch_records`` records exist at a time, whatever the
    shard size.  Only the part *path* crosses back to the parent.
    """
    if task.path is None:
        raise ValueError("columnar part generation needs a part path")
    generator = TraceGenerator(
        task.n_mobile_users,
        n_pc_only_users=task.n_pc_only_users,
        config=task.config,
        options=task.options,
        seed=task.seed,
        population=list(task.users) if task.users is not None else None,
    )
    users = (
        list(task.users)
        if task.users is not None
        else partition_users(generator.population, task.n_shards)[task.shard_index]
    )
    # The population is built in ascending user_id order already; sorting
    # makes the part's sort invariant locally evident (and is a no-op).
    users.sort(key=lambda user: user.user_id)
    batch_records = max(1, task.batch_records)
    with ColumnarPartWriter(task.path) as writer:
        buffer: list[LogRecord] = []
        for user in users:
            buffer.extend(generator.generate_user(user))
            if len(buffer) >= batch_records:
                writer.append(ColumnarTrace.from_records(buffer))
                buffer.clear()
        if buffer:
            writer.append(ColumnarTrace.from_records(buffer))
        n_records = writer.n_rows
    return ColumnarShardPart(
        shard_index=task.shard_index,
        path=task.path,
        n_records=n_records,
        n_users=len(users),
    )


@dataclass(frozen=True)
class ColumnarShardedTrace:
    """A trace generated as on-disk columnar shard parts.

    Nothing is resident: each part is a directory of raw ``.npy`` column
    files that :meth:`merged_blocks` memory-maps and k-way merges into
    bounded-size blocks in global ``(user_id, timestamp)`` order — the
    stream the folds in :mod:`repro.core.streaming` consume.
    """

    parts: tuple[ColumnarShardPart, ...]

    @property
    def n_records(self) -> int:
        return sum(part.n_records for part in self.parts)

    @property
    def paths(self) -> list[str]:
        return [part.path for part in self.parts]

    def open_parts(self, *, mmap: bool = True) -> list[ColumnarTrace]:
        return [part.open(mmap=mmap) for part in self.parts]

    def merged_blocks(
        self,
        *,
        block_rows: int = DEFAULT_MERGE_BLOCK_ROWS,
        mmap: bool = True,
    ) -> Iterator[ColumnarTrace]:
        """Stream the global ``(user_id, timestamp)`` order in blocks.

        Concatenating the blocks reproduces
        ``generate_columnar_parallel(...)`` byte for byte, but peak RSS
        is O(``block_rows`` × shards): sources are memory-mapped and the
        merge buffers one window per shard.
        """
        return merge_columnar_sorted(
            self.open_parts(mmap=mmap),
            block_rows=block_rows,
            order="user_time",
        )


def generate_columnar_sharded(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
    n_shards: int = 4,
    n_workers: int | None = None,
    part_dir: str | Path,
    batch_records: int = DEFAULT_PART_BATCH_RECORDS,
) -> ColumnarShardedTrace:
    """Generate a trace as memory-mappable columnar shard parts.

    The paper-scale entry point: workers stream their shards to
    ``part_dir/part-NNNN.cols/`` directories (worker RSS bounded by
    ``batch_records``) and hand back paths; the parent pickles no arrays
    and holds no records.  Follow with
    :meth:`ColumnarShardedTrace.merged_blocks` to analyze the global
    stream in bounded memory.  The determinism contract of this module
    applies unchanged: the merged stream is identical for every shard
    and worker count.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_workers = _resolve_workers(n_shards, n_workers)
    part_dir = Path(part_dir)
    part_dir.mkdir(parents=True, exist_ok=True)
    population = build_population(
        n_mobile_users,
        n_pc_only_users=n_pc_only_users,
        config=config or WorkloadConfig(),
        seed=seed,
    )
    shards = partition_users(population, n_shards)
    tasks = [
        ShardTask(
            shard_index=index,
            n_shards=n_shards,
            n_mobile_users=n_mobile_users,
            n_pc_only_users=n_pc_only_users,
            config=config,
            options=options,
            seed=seed,
            path=str(part_dir / f"{PART_STEM}-{index:04d}.cols"),
            users=tuple(shards[index]),
            batch_records=batch_records,
        )
        for index in range(n_shards)
    ]
    if n_workers == 1:
        parts = [_generate_shard_part(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            parts = list(pool.map(_generate_shard_part, tasks))
    return ColumnarShardedTrace(parts=tuple(parts))


def generate_trace_to_file(
    output: str | Path,
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    options: GeneratorOptions | None = None,
    seed: int = 0,
    n_shards: int = 4,
    n_workers: int | None = None,
) -> int:
    """Generate shards in a scratch directory and merge into ``output``.

    The output file is globally timestamp-sorted (merge order), written in
    the format implied by its extension.  Returns the record count.
    """
    output = Path(output)
    suffix = "".join(output.suffixes)
    part_format = "jsonl" if ".jsonl" in suffix else "tsv"
    writer = write_jsonl if part_format == "jsonl" else write_tsv
    output.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(
        prefix=output.name + ".parts-", dir=output.parent
    ) as scratch:
        sharded = generate_sharded(
            n_mobile_users,
            n_pc_only_users=n_pc_only_users,
            config=config,
            options=options,
            seed=seed,
            n_shards=n_shards,
            n_workers=n_workers,
            part_dir=scratch,
            part_format=part_format,
        )
        return writer(sharded.merged(), output)
