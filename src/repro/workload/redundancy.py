"""Upload-stream synthesis for the redundancy-elimination ablation.

Two contrasting upload streams, matching the usage contrast the paper
draws between mobile and PC clients:

* **Mobile photo backup** — each upload is a freshly captured, immutable
  photo or clip; the only redundancy is exact re-uploads: re-backups after
  an app reinstall, and the occasional widely-shared viral file.  Content
  never mutates (footnote 1 of the paper: any local change produces a new
  file; delta updates are not supported).
* **PC document sync** — users repeatedly save edited revisions of the
  same working set; each revision rewrites a couple of chunks of a
  multi-chunk document, leaving the rest byte-identical.

Feeding both through :class:`repro.service.dedup.RedundancyEliminator`
quantifies the paper's claim that chunk-level dedup and delta encoding,
indispensable for the PC workload, buy almost nothing for mobile backup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logs.schema import CHUNK_SIZE
from ..service.chunks import FileManifest, build_manifest

MB = 1024 * 1024


@dataclass(frozen=True)
class MobileBackupModel:
    """Parameters of the mobile photo-backup stream.

    Calibrated to the paper: ~1.5 MB mean photo size, a small re-backup
    probability (device migration/reinstall) and a thin viral-share tail.
    """

    n_users: int = 40
    photos_per_user: int = 30
    photo_mean_mb: float = 1.5
    rebackup_probability: float = 0.05
    viral_files: int = 2
    viral_uploaders: int = 10
    viral_size_mb: float = 8.0


@dataclass(frozen=True)
class PcSyncModel:
    """Parameters of the PC document-editing stream."""

    n_users: int = 20
    documents_per_user: int = 5
    document_chunks: int = 8
    revisions_per_document: int = 10
    chunks_changed_per_revision: int = 2


def _photo(user: int, index: int, size: int, generation: int = 0) -> FileManifest:
    seed = f"mobile/u{user}/photo{index}/g{generation}".encode()
    return build_manifest(f"IMG_{index:04d}.jpg", seed, size)


def mobile_backup_stream(
    model: MobileBackupModel = MobileBackupModel(), seed: int = 0
) -> tuple[list[FileManifest], list[str]]:
    """The mobile photo-backup upload stream, with per-upload lineages.

    Every photo is its own lineage: there is never a prior revision for a
    delta codec to diff against (photos are immutable).
    """
    rng = np.random.default_rng(seed)
    entries: list[tuple[FileManifest, str]] = []
    originals: list[tuple[FileManifest, str]] = []
    for user in range(model.n_users):
        for index in range(model.photos_per_user):
            size = max(64 * 1024, int(rng.exponential(model.photo_mean_mb) * MB))
            manifest = _photo(user, index, size)
            lineage = f"mobile/u{user}/photo{index}"
            entries.append((manifest, lineage))
            originals.append((manifest, lineage))
            # Occasional exact re-upload of an earlier photo (re-backup).
            if originals and float(rng.uniform()) < model.rebackup_probability:
                entries.append(originals[int(rng.integers(0, len(originals)))])
    # Viral files: the same content uploaded by many users.
    for v in range(model.viral_files):
        viral = build_manifest(
            f"viral-{v}.mp4",
            f"viral/{v}".encode(),
            int(model.viral_size_mb * MB),
        )
        for uploader in range(model.viral_uploaders):
            entries.append((viral, f"viral/{v}/u{uploader}"))
    # Shuffle to interleave users, as the front-end would see it.
    order = rng.permutation(len(entries))
    manifests = [entries[i][0] for i in order]
    lineages = [entries[i][1] for i in order]
    return manifests, lineages


def pc_sync_stream(
    model: PcSyncModel = PcSyncModel(), seed: int = 0
) -> tuple[list[FileManifest], list[str]]:
    """The PC document-sync upload stream, with per-upload lineages.

    Each revision of a document changes ``chunks_changed_per_revision`` of
    its chunks; the manifest of revision r shares the untouched chunks'
    hashes with revision r-1, which is exactly what chunk-level dedup
    exploits, and all revisions share one lineage, which is what delta
    encoding needs.
    """
    rng = np.random.default_rng(seed)
    manifests: list[FileManifest] = []
    lineages: list[str] = []
    for user in range(model.n_users):
        for doc in range(model.documents_per_user):
            # Per-chunk generation counters: bumping one changes its hash.
            generations = [0] * model.document_chunks
            for revision in range(model.revisions_per_document):
                if revision > 0:
                    changed = rng.choice(
                        model.document_chunks,
                        size=min(
                            model.chunks_changed_per_revision,
                            model.document_chunks,
                        ),
                        replace=False,
                    )
                    for c in changed:
                        generations[int(c)] += 1
                chunk_seeds = [
                    f"pc/u{user}/d{doc}/c{c}/g{generations[c]}"
                    for c in range(model.document_chunks)
                ]
                sizes = [CHUNK_SIZE] * model.document_chunks
                from ..service.chunks import content_md5

                manifest = FileManifest(
                    name=f"doc-{doc}.docx",
                    size=sum(sizes),
                    file_md5=content_md5("|".join(chunk_seeds).encode()),
                    chunk_md5s=tuple(
                        content_md5(s.encode()) for s in chunk_seeds
                    ),
                    chunk_sizes=tuple(sizes),
                )
                manifests.append(manifest)
                lineages.append(f"pc/u{user}/doc{doc}")
    return manifests, lineages
