"""Diurnal time-of-day sampling.

Session start times follow the hourly activity profile of the paper's
Fig 1: a pronounced evening surge around 11 PM (home WiFi), and a deep
early-morning trough.  :class:`DiurnalSampler` turns the 24 hourly weights
into an inverse-CDF sampler over seconds-of-day, and exposes the peak/
off-peak structure that the upload-deferral ablation exploits.
"""

from __future__ import annotations

import numpy as np

from .config import DiurnalModel

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class DiurnalSampler:
    """Samples seconds-of-day according to an hourly weight profile."""

    def __init__(self, model: DiurnalModel) -> None:
        weights = np.asarray(model.hourly_weights, dtype=float)
        if weights.shape != (24,):
            raise ValueError("need exactly 24 hourly weights")
        self.model = model
        self._probs = weights / weights.sum()
        self._cum = np.concatenate(([0.0], np.cumsum(self._probs)))

    def sample_time_of_day(self, rng: np.random.Generator) -> float:
        """One start time in [0, 86400), uniform within the chosen hour."""
        u = float(rng.uniform())
        hour = int(np.searchsorted(self._cum, u, side="right")) - 1
        hour = min(23, max(0, hour))
        return hour * SECONDS_PER_HOUR + float(rng.uniform()) * SECONDS_PER_HOUR

    def sample_timestamp(self, day: int, rng: np.random.Generator) -> float:
        """One absolute timestamp within observation day ``day``."""
        if day < 0:
            raise ValueError("day must be >= 0")
        return day * SECONDS_PER_DAY + self.sample_time_of_day(rng)

    def hourly_probabilities(self) -> np.ndarray:
        """Normalized per-hour session-start probabilities."""
        return self._probs.copy()

    def peak_hours(self, n: int = 3) -> list[int]:
        """The ``n`` busiest hours (descending)."""
        if not 1 <= n <= 24:
            raise ValueError("n must be in [1, 24]")
        order = np.argsort(self._probs)[::-1]
        return [int(h) for h in order[:n]]

    def trough_hours(self, n: int = 3) -> list[int]:
        """The ``n`` quietest hours (ascending load)."""
        if not 1 <= n <= 24:
            raise ValueError("n must be in [1, 24]")
        order = np.argsort(self._probs)
        return [int(h) for h in order[:n]]
