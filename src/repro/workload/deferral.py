"""The "smart auto backup" upload-deferral policy (Section 3.2.2).

The paper observes that about 80% of mobile users never retrieve their
uploads within the week, so most uploads could be deferred off the evening
peak into the early-morning trough, flattening the provisioning curve.
This module implements that policy over a log stream and measures its
effect: peak-hour load before/after and the peak-to-mean ratio the capacity
planner would provision for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..logs.schema import Direction, LogRecord
from .diurnal import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class DeferralPolicy:
    """Defer store traffic out of peak hours into a low-load window.

    Parameters
    ----------
    peak_hours:
        Hours (0-23) whose store chunks are deferred (paper: the 9 PM to
        11 PM surge).
    target_hour:
        Start of the early-morning upload window the deferred traffic is
        replayed in.
    window_hours:
        Length of the replay window; deferred records are spread uniformly
        across it.
    defer_fraction:
        Fraction of eligible store requests actually deferred (users must
        opt in, and some need their uploads immediately).
    """

    peak_hours: tuple[int, ...] = (21, 22, 23)
    target_hour: int = 3
    window_hours: float = 5.0
    defer_fraction: float = 0.75

    def __post_init__(self) -> None:
        if not self.peak_hours:
            raise ValueError("need at least one peak hour")
        if any(not 0 <= h <= 23 for h in self.peak_hours):
            raise ValueError("peak hours must be in [0, 23]")
        if not 0 <= self.target_hour <= 23:
            raise ValueError("target_hour must be in [0, 23]")
        if self.window_hours <= 0:
            raise ValueError("window_hours must be positive")
        if not 0.0 <= self.defer_fraction <= 1.0:
            raise ValueError("defer_fraction must be in [0, 1]")

    def apply(
        self, records: Iterable[LogRecord], seed: int = 0
    ) -> Iterator[LogRecord]:
        """Rewrite timestamps of deferred store requests.

        Deferred requests move to the *next* morning window (the paper:
        "uploads during peak workload periods could be deferred to the
        following early mornings").  Retrievals and file operations are
        never deferred — only the bulk chunk traffic.
        """
        rng = np.random.default_rng(seed)
        peak = set(self.peak_hours)
        for record in records:
            hour = int((record.timestamp % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
            eligible = (
                record.direction is Direction.STORE
                and record.is_chunk
                and hour in peak
            )
            if eligible and float(rng.uniform()) < self.defer_fraction:
                day = int(record.timestamp // SECONDS_PER_DAY)
                new_time = (
                    (day + 1) * SECONDS_PER_DAY
                    + self.target_hour * SECONDS_PER_HOUR
                    + float(rng.uniform()) * self.window_hours * SECONDS_PER_HOUR
                )
                yield record.with_timestamp(new_time)
            else:
                yield record


@dataclass(frozen=True)
class LoadSummary:
    """Hourly volume profile of a (possibly deferred) trace."""

    hourly_bytes: np.ndarray

    @property
    def peak(self) -> float:
        return float(self.hourly_bytes.max())

    @property
    def mean(self) -> float:
        return float(self.hourly_bytes.mean())

    @property
    def peak_to_mean(self) -> float:
        """The over-provisioning factor capacity planning pays for."""
        if self.mean == 0:
            raise ValueError("empty load profile")
        return self.peak / self.mean


def folded_load(records: Iterable[LogRecord]) -> LoadSummary:
    """Average transferred bytes per hour-of-day (the provisioning curve).

    Capacity is planned against the recurring daily profile; folding onto
    the 24-hour clock averages out one-off whale sessions that a recurring
    deferral policy cannot (and should not) chase.
    """
    profile = np.zeros(24)
    for record in records:
        if record.is_chunk:
            hour = int((record.timestamp % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
            profile[hour] += record.volume
    if profile.sum() == 0:
        raise ValueError("no chunk records in trace")
    return LoadSummary(hourly_bytes=profile)


def hourly_load(records: Iterable[LogRecord]) -> LoadSummary:
    """Total transferred bytes per absolute hour of the observation window."""
    volumes: dict[int, float] = {}
    for record in records:
        if record.is_chunk:
            hour = int(record.timestamp // SECONDS_PER_HOUR)
            volumes[hour] = volumes.get(hour, 0.0) + record.volume
    if not volumes:
        raise ValueError("no chunk records in trace")
    n_hours = max(volumes) + 1
    profile = np.zeros(n_hours)
    for hour, volume in volumes.items():
        profile[hour] = volume
    return LoadSummary(hourly_bytes=profile)


def evaluate_deferral(
    records: list[LogRecord],
    policy: DeferralPolicy,
    seed: int = 0,
    *,
    folded: bool = True,
) -> tuple[LoadSummary, LoadSummary]:
    """(before, after) load summaries under a deferral policy.

    ``folded=True`` (default) evaluates on the 24-hour provisioning curve;
    ``folded=False`` uses raw absolute hours.
    """
    load = folded_load if folded else hourly_load
    before = load(records)
    after = load(policy.apply(records, seed=seed))
    return before, after
