"""Paper-calibrated generation parameters.

Every constant here is traceable to a number the paper reports (section or
figure cited inline).  The trace generator plants these models; the analysis
pipeline must then recover them — the self-consistency loop that stands in
for the proprietary trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

MB = 1024 * 1024


class UserType(enum.Enum):
    """The four usage types of Section 3.2.1 (Table 3)."""

    UPLOAD_ONLY = "upload_only"
    DOWNLOAD_ONLY = "download_only"
    OCCASIONAL = "occasional"
    MIXED = "mixed"


class DeviceGroup(enum.Enum):
    """User grouping by device usage (Figs 7b, 8, 9)."""

    ONE_MOBILE = "one_mobile"
    MULTI_MOBILE = "multi_mobile"
    MOBILE_AND_PC = "mobile_and_pc"
    PC_ONLY = "pc_only"


@dataclass(frozen=True)
class SessionIntervalModel:
    """Two-component Gaussian mixture over log10(inter-op seconds) (Fig 3).

    Component 1: within-session intervals, mean ~10 s.  Component 2:
    between-session intervals, mean ~1 day.  The paper derives the session
    threshold tau = 1 hour from the valley between them.
    """

    within_mean_log10: float = 1.05  # ~11 s
    within_std_log10: float = 0.50
    between_mean_log10: float = 4.94  # 86,400 s ~ 1 day
    between_std_log10: float = 0.42
    #: Spacing used when the app batch-issues file operations (the user
    #: selected several files at once; Section 3.1.2: ">20 ops land within
    #: 3% of the session").  Sub-second, below the Fig 3 support.
    batch_mean_log10: float = -0.7  # ~0.2 s
    batch_std_log10: float = 0.30
    #: Sessions with more operations than this are always app-batched.
    batch_threshold: int = 10
    #: Probability that a small (2..batch_threshold ops) session was also
    #: issued as a batch (multi-select) rather than one file at a time.
    p_batch_small: float = 0.78


@dataclass(frozen=True)
class FileSizeModel:
    """Three-component exponential mixtures for per-session average file
    size in MB (Table 2)."""

    store_weights: tuple[float, ...] = (0.91, 0.07, 0.02)
    store_means_mb: tuple[float, ...] = (1.5, 13.1, 77.4)
    retrieve_weights: tuple[float, ...] = (0.46, 0.26, 0.28)
    retrieve_means_mb: tuple[float, ...] = (1.6, 29.8, 146.8)
    #: Sessions drawing a non-photo (large) size component are capped at
    #: this many operations: users upload videos one or two at a time and
    #: fetch big shared files singly, which is what keeps the Fig 5b slope
    #: at the *photo* size (~1.5 MB) even though the mixture mean is ~3.8 MB,
    #: and what makes single-file retrieve sessions average ~70 MB (Fig 5c).
    large_component_max_ops_store: int = 3
    large_component_max_ops_retrieve: int = 2
    #: PC clients sync mostly small files (Li et al. 2014, cited in
    #: Section 3.1.3: "majority of files are very small (< 100 KB)").
    pc_weights: tuple[float, ...] = (0.70, 0.25, 0.05)
    pc_means_mb: tuple[float, ...] = (0.08, 1.0, 20.0)


@dataclass(frozen=True)
class SessionMixModel:
    """Session class shares (Section 3.1.1) and ops-per-session shape
    (Fig 5a: 40% of sessions have one op, ~10% exceed 20)."""

    store_only: float = 0.682
    retrieve_only: float = 0.299
    mixed: float = 0.019
    #: Generator-level knob; the *recovered* single-op share lands near the
    #: paper's 40% once budget-exhausted and occasional sessions add their
    #: forced single-op sessions on top.
    single_op_fraction: float = 0.15
    #: Geometric tail for 2..20 ops.
    small_tail_mean: float = 4.0
    #: Fraction of sessions above 20 ops, Pareto-tailed up to the cap.
    large_fraction: float = 0.10
    large_pareto_alpha: float = 1.3
    max_ops: int = 200


@dataclass(frozen=True)
class UserMixModel:
    """User-type shares per device group — the Table 3 plant.

    These generator-level shares sit slightly off the paper's observed
    Table 3 because classification is behavioural: an upload-only user
    whose single photo draws small lands in the occasional bucket, and
    single-session mobile&PC users are only ever observed on one platform.
    The plants below are tuned so the *recovered* Table 3 matches the
    paper (checked by experiment T3).
    """

    #: One-device mobile users; combined with ``multi_mobile`` (weighted by
    #: the device-count mix) this lands the Table 3 mobile column.
    mobile_only: dict[UserType, float] = field(
        default_factory=lambda: {
            UserType.UPLOAD_ONLY: 0.605,
            UserType.DOWNLOAD_ONLY: 0.205,
            UserType.OCCASIONAL: 0.140,
            UserType.MIXED: 0.050,
        }
    )
    #: Multi-device mobile users sync data between their own devices, so
    #: far fewer are purely upload-only — the Fig 7b "significant
    #: reduction in storage-dominating users when using multiple mobile
    #: devices".  The shift leans on download-only rather than mixed so
    #: the Fig 9 bound (~80% of uploaders never retrieve, independent of
    #: device count) survives: download-only users are not uploaders.
    multi_mobile: dict[UserType, float] = field(
        default_factory=lambda: {
            UserType.UPLOAD_ONLY: 0.425,
            UserType.DOWNLOAD_ONLY: 0.325,
            UserType.OCCASIONAL: 0.130,
            UserType.MIXED: 0.120,
        }
    )
    mobile_and_pc: dict[UserType, float] = field(
        default_factory=lambda: {
            UserType.UPLOAD_ONLY: 0.600,
            UserType.DOWNLOAD_ONLY: 0.165,
            UserType.OCCASIONAL: 0.115,
            UserType.MIXED: 0.120,
        }
    )
    pc_only: dict[UserType, float] = field(
        default_factory=lambda: {
            UserType.UPLOAD_ONLY: 0.420,
            UserType.DOWNLOAD_ONLY: 0.185,
            UserType.OCCASIONAL: 0.215,
            UserType.MIXED: 0.180,
        }
    )

    def shares(self, group: DeviceGroup) -> dict[UserType, float]:
        if group is DeviceGroup.PC_ONLY:
            return self.pc_only
        if group is DeviceGroup.MOBILE_AND_PC:
            return self.mobile_and_pc
        if group is DeviceGroup.MULTI_MOBILE:
            return self.multi_mobile
        return self.mobile_only


@dataclass(frozen=True)
class ActivityModel:
    """Stretched-exponential rank models for weekly per-user file counts
    (Fig 10: store c=0.2, retrieve c=0.15).

    The paper's intercepts (b) correspond to its ~10^6-user population; the
    generator rescales b so that the least-active user lands at one file
    regardless of the generated population size.
    """

    store_c: float = 0.20
    store_a: float = 0.448
    retrieve_c: float = 0.15
    retrieve_a: float = 0.322
    #: Lognormal jitter (sigma in natural log) around the rank curve.
    jitter_sigma: float = 0.25


@dataclass(frozen=True)
class EngagementModel:
    """Bimodal return behaviour (Fig 8) and retrieval-after-upload (Fig 9).

    ``p_engaged`` is the probability a user returns at all during the week;
    engaged users are then active on each later day with ``p_daily``.
    Paper anchors: ~50% of one-device users never return; <20% of
    multi-device users never return.
    """

    #: Tuned above the target never-return rates because users whose file
    #: budget drains on day one cannot act on later active days.
    p_engaged: dict[DeviceGroup, float] = field(
        default_factory=lambda: {
            DeviceGroup.ONE_MOBILE: 0.62,
            DeviceGroup.MULTI_MOBILE: 0.80,
            DeviceGroup.MOBILE_AND_PC: 0.92,
            DeviceGroup.PC_ONLY: 0.80,
        }
    )
    p_daily: float = 0.55
    #: Probability that a mixed-type mobile&PC user syncs (retrieves) the
    #: same day they upload — the Fig 9 day-0 spike.
    p_same_day_sync_pc: float = 0.75
    p_same_day_sync_mobile: float = 0.15


@dataclass(frozen=True)
class DeviceModel:
    """Device population: 78.4% of accesses from Android (Section 2.2);
    1.396 M devices across 1.149 M users (~1.22 devices/user); 14.3% of
    mobile users also use a PC."""

    android_share: float = 0.784
    #: Owned mobile devices per user; the paper's 1.22 is *observed*
    #: devices (those appearing in logs), and lightly-active users never
    #: touch their second device, so ownership is planted a bit higher.
    device_count_probs: tuple[float, ...] = (0.74, 0.19, 0.07)  # 1, 2, 3 devices
    pc_co_use: float = 0.155


@dataclass(frozen=True)
class DiurnalModel:
    """Hourly activity weights (Fig 1): a diurnal cycle with a sharp surge
    around 11 PM when users reach home WiFi, and a 3-6 AM trough."""

    hourly_weights: tuple[float, ...] = (
        2.0,  # 00
        1.2,  # 01
        0.8,  # 02
        0.5,  # 03
        0.4,  # 04
        0.5,  # 05
        0.8,  # 06
        1.2,  # 07
        1.8,  # 08
        2.2,  # 09
        2.5,  # 10
        2.6,  # 11
        2.8,  # 12
        2.6,  # 13
        2.5,  # 14
        2.6,  # 15
        2.7,  # 16
        2.8,  # 17
        3.0,  # 18
        3.3,  # 19
        3.8,  # 20
        4.6,  # 21
        5.5,  # 22
        4.5,  # 23
    )

    def __post_init__(self) -> None:
        if len(self.hourly_weights) != 24:
            raise ValueError("need exactly 24 hourly weights")
        if any(w <= 0 for w in self.hourly_weights):
            raise ValueError("hourly weights must be positive")


@dataclass(frozen=True)
class NetworkModel:
    """Per-session network conditions: heavy-tailed RTT with ~100 ms median
    (Fig 14) and a lognormal uplink bandwidth."""

    rtt_median: float = 0.12
    rtt_sigma: float = 0.72
    #: Uplink bandwidth: 2015-era Chinese mobile uplinks (3G and home WiFi
    #: over ADSL) cluster around a few hundred KB/s, leaving a sizable
    #: share of uploads limited by the 64 KB server window instead of the
    #: path (the Fig 15 concentration).
    bandwidth_median: float = 250_000.0
    bandwidth_sigma: float = 0.9
    #: Downlink over uplink ratio (2015-era ADSL/3G asymmetry).
    downlink_factor: float = 2.0
    proxied_fraction: float = 0.06


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything the trace generator needs, bundled."""

    intervals: SessionIntervalModel = field(default_factory=SessionIntervalModel)
    file_sizes: FileSizeModel = field(default_factory=FileSizeModel)
    session_mix: SessionMixModel = field(default_factory=SessionMixModel)
    user_mix: UserMixModel = field(default_factory=UserMixModel)
    activity: ActivityModel = field(default_factory=ActivityModel)
    engagement: EngagementModel = field(default_factory=EngagementModel)
    devices: DeviceModel = field(default_factory=DeviceModel)
    diurnal: DiurnalModel = field(default_factory=DiurnalModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    observation_days: int = 7
    #: Fraction of day-0 first-activity users, so engagement analyses have
    #: a sizable first-day cohort.
    first_day_cohort: float = 0.40

PAPER_CONFIG = WorkloadConfig()
