"""User population synthesis.

Builds the per-user specifications the trace generator executes: device
group and inventory (Android/iOS/PC mix of Section 2.2), usage type
(Table 3 shares per device group), weekly activity budget (stretched-
exponential ranks, Fig 10), active-day schedule (the bimodal engagement of
Fig 8) and per-user network conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logs.schema import DeviceType
from .activity import assign_store_retrieve_counts
from .config import DeviceGroup, UserType, WorkloadConfig


@dataclass(frozen=True)
class DeviceSpec:
    """One device owned by a user."""

    device_id: str
    device_type: DeviceType


@dataclass
class UserSpec:
    """Everything the generator needs to emit one user's week."""

    user_id: int
    group: DeviceGroup
    user_type: UserType
    devices: tuple[DeviceSpec, ...]
    active_days: tuple[int, ...]
    store_files: int
    retrieve_files: int
    rtt: float
    bandwidth: float
    proxied: bool
    #: Mixed mobile&PC users that sync uploads from a PC the same day.
    same_day_sync: bool = False
    #: Occasional users whose uploads were answered by the metadata
    #: server's content dedup: they emit file operations but no chunk
    #: traffic, leaving their total volume at (near) zero.
    dedup_only: bool = False

    @property
    def mobile_devices(self) -> tuple[DeviceSpec, ...]:
        return tuple(d for d in self.devices if d.device_type is not DeviceType.PC)

    @property
    def pc_devices(self) -> tuple[DeviceSpec, ...]:
        return tuple(d for d in self.devices if d.device_type is DeviceType.PC)

    @property
    def first_day(self) -> int:
        return self.active_days[0]


def _sample_type(shares: dict[UserType, float], rng: np.random.Generator) -> UserType:
    types = list(shares)
    probs = np.asarray([shares[t] for t in types], dtype=float)
    probs /= probs.sum()
    return types[int(rng.choice(len(types), p=probs))]


def _sample_active_days(
    config: WorkloadConfig, group: DeviceGroup, rng: np.random.Generator
) -> tuple[int, ...]:
    """First-activity day plus the bimodal return schedule of Fig 8."""
    if (
        config.observation_days == 1
        or float(rng.uniform()) < config.first_day_cohort
    ):
        first = 0
    else:
        first = int(rng.integers(1, config.observation_days))
    days = [first]
    engaged = float(rng.uniform()) < config.engagement.p_engaged[group]
    if engaged:
        for day in range(first + 1, config.observation_days):
            if float(rng.uniform()) < config.engagement.p_daily:
                days.append(day)
    return tuple(days)


def _sample_devices(
    user_id: int,
    group: DeviceGroup,
    config: WorkloadConfig,
    rng: np.random.Generator,
) -> tuple[DeviceSpec, ...]:
    devices: list[DeviceSpec] = []
    if group is not DeviceGroup.PC_ONLY:
        probs = np.asarray(config.devices.device_count_probs, dtype=float)
        probs /= probs.sum()
        if group is DeviceGroup.MULTI_MOBILE:
            n_mobile = 2 + int(rng.choice(2, p=(0.8, 0.2)))
        elif group is DeviceGroup.ONE_MOBILE:
            n_mobile = 1
        else:
            n_mobile = 1 + int(rng.choice(len(probs), p=probs))
        for i in range(n_mobile):
            is_android = float(rng.uniform()) < config.devices.android_share
            devices.append(
                DeviceSpec(
                    device_id=f"m{user_id:x}-{i}",
                    device_type=(
                        DeviceType.ANDROID if is_android else DeviceType.IOS
                    ),
                )
            )
    if group in (DeviceGroup.MOBILE_AND_PC, DeviceGroup.PC_ONLY):
        devices.append(
            DeviceSpec(device_id=f"p{user_id:x}", device_type=DeviceType.PC)
        )
    return tuple(devices)


def _occasional_budget(rng: np.random.Generator) -> tuple[int, int]:
    """Occasional users move under 1 MB total (Table 3 definition).

    Nearly half of them also peek at a shared file, so a later retrieval
    session exists to bound the Fig 9 never-retrieve fraction near the
    paper's ~80%.
    """
    if float(rng.uniform()) < 0.35:
        return 1, 1
    return 1 + int(rng.integers(0, 2)), 0


def build_population(
    n_mobile_users: int,
    *,
    n_pc_only_users: int = 0,
    config: WorkloadConfig | None = None,
    seed: int = 0,
) -> list[UserSpec]:
    """Synthesize a user population.

    Parameters
    ----------
    n_mobile_users:
        Users with at least one mobile device (the paper's 1.15 M, scaled).
    n_pc_only_users:
        Additional PC-only users for the Table 3 comparison columns.
    config:
        Calibration; defaults to the paper values.
    seed:
        Master seed; the population is fully deterministic given it.
    """
    if n_mobile_users < 1:
        raise ValueError("need at least one mobile user")
    if n_pc_only_users < 0:
        raise ValueError("n_pc_only_users must be >= 0")
    config = config or WorkloadConfig()
    rng = np.random.default_rng(seed)

    users: list[UserSpec] = []
    user_id = 0
    for _ in range(n_mobile_users):
        user_id += 1
        uses_pc = float(rng.uniform()) < config.devices.pc_co_use
        if uses_pc:
            group = DeviceGroup.MOBILE_AND_PC
        else:
            probs = np.asarray(config.devices.device_count_probs, dtype=float)
            probs /= probs.sum()
            n_mobile = 1 + int(rng.choice(len(probs), p=probs))
            group = (
                DeviceGroup.ONE_MOBILE if n_mobile == 1 else DeviceGroup.MULTI_MOBILE
            )
        user_type = _sample_type(config.user_mix.shares(group), rng)
        devices = _sample_devices(user_id, group, config, rng)
        active_days = _sample_active_days(config, group, rng)
        same_day_sync = user_type is UserType.MIXED and (
            float(rng.uniform())
            < (
                config.engagement.p_same_day_sync_pc
                if group is DeviceGroup.MOBILE_AND_PC
                else config.engagement.p_same_day_sync_mobile
            )
        )
        users.append(
            UserSpec(
                user_id=user_id,
                group=group,
                user_type=user_type,
                devices=devices,
                active_days=active_days,
                store_files=0,
                retrieve_files=0,
                rtt=float(
                    rng.lognormal(
                        np.log(config.network.rtt_median), config.network.rtt_sigma
                    )
                ),
                bandwidth=max(
                    30_000.0,
                    float(
                        rng.lognormal(
                            np.log(config.network.bandwidth_median),
                            config.network.bandwidth_sigma,
                        )
                    ),
                ),
                proxied=float(rng.uniform()) < config.network.proxied_fraction,
                same_day_sync=same_day_sync,
            )
        )

    for _ in range(n_pc_only_users):
        user_id += 1
        group = DeviceGroup.PC_ONLY
        user_type = _sample_type(config.user_mix.shares(group), rng)
        users.append(
            UserSpec(
                user_id=user_id,
                group=group,
                user_type=user_type,
                devices=_sample_devices(user_id, group, config, rng),
                active_days=_sample_active_days(config, group, rng),
                store_files=0,
                retrieve_files=0,
                rtt=float(rng.lognormal(np.log(0.04), 0.5)),
                bandwidth=max(
                    100_000.0, float(rng.lognormal(np.log(1_500_000.0), 0.6))
                ),
                proxied=float(rng.uniform()) < config.network.proxied_fraction,
            )
        )

    _assign_activity(users, config, rng)
    return users


def _assign_activity(
    users: list[UserSpec], config: WorkloadConfig, rng: np.random.Generator
) -> None:
    """Give each user a weekly store/retrieve file budget.

    Upload-only users store, download-only users retrieve, mixed users do
    both, occasional users move a token amount.  The budgets within each
    role follow the stretched-exponential rank law.
    """
    storers = [
        u
        for u in users
        if u.user_type in (UserType.UPLOAD_ONLY, UserType.MIXED)
    ]
    retrievers = [
        u
        for u in users
        if u.user_type in (UserType.DOWNLOAD_ONLY, UserType.MIXED)
    ]
    store_counts, retrieve_counts = assign_store_retrieve_counts(
        len(storers), len(retrievers), config.activity, rng
    )
    for user, count in zip(storers, store_counts):
        user.store_files = int(count)
    for user, count in zip(retrievers, retrieve_counts):
        user.retrieve_files = int(count)
    for user in users:
        if user.user_type is UserType.OCCASIONAL:
            n_store, n_retrieve = _occasional_budget(rng)
            user.store_files = n_store
            user.retrieve_files = n_retrieve
            # Occasional traffic is metadata-only: their few uploads are
            # answered by content dedup and their peeks at shared links
            # never materialize into chunk transfers, keeping their volume
            # at zero (well under the 1 MB Table 3 threshold).
            user.dedup_only = True
        elif user.group is DeviceGroup.PC_ONLY:
            # PC clients are roughly twice as chatty per user in the
            # paper's dataset (1.2B logs / 2M users vs 349M / 1.15M), and
            # their files are an order of magnitude smaller; scale their
            # weekly budgets so small PC users still clear the 1 MB
            # occasional threshold with their tiny files.
            user.store_files = max(user.store_files * 6, 4) if user.store_files else 0
            user.retrieve_files = (
                max(user.retrieve_files * 6, 4) if user.retrieve_files else 0
            )
