"""Stretched-exponential activity assignment.

The paper's Fig 10 shows that weekly per-user file counts follow a
stretched-exponential rank law: the i-th most active of N users handles
about ``(b - a ln i)**(1/c)`` files.  The generator uses that law directly
as the activity planner: storing users receive ranked store counts, and
retrieving users ranked retrieve counts, each with a small lognormal jitter
so recovered fits are statistical rather than exact algebra.

The paper's intercept ``b`` belongs to its million-user population; we
rescale it so that the least-active generated user still lands at one file,
keeping the curve shape (``c``, ``a``) intact at any population size.
"""

from __future__ import annotations

import math

import numpy as np

from .config import ActivityModel


def rank_activity_counts(
    n_users: int,
    c: float,
    a: float,
    rng: np.random.Generator,
    jitter_sigma: float = 0.25,
) -> np.ndarray:
    """Per-rank activity counts for ``n_users`` ranked users.

    Implements ``x_i = (b - a ln i) ** (1/c)`` with ``b = a ln(n) + 1`` so
    ``x_n ~= 1``, then applies multiplicative lognormal jitter and floors
    at one file.  Returned in rank order (most active first).
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    if c <= 0 or a <= 0:
        raise ValueError("c and a must be positive")
    ranks = np.arange(1, n_users + 1, dtype=float)
    b = a * math.log(n_users) + 1.0
    transformed = np.clip(b - a * np.log(ranks), 1e-9, None)
    counts = transformed ** (1.0 / c)
    if jitter_sigma > 0:
        counts = counts * rng.lognormal(0.0, jitter_sigma, size=n_users)
    return np.maximum(1, np.round(counts)).astype(int)


def assign_store_retrieve_counts(
    n_storers: int,
    n_retrievers: int,
    model: ActivityModel,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled weekly store/retrieve file counts for the two populations.

    The rank law yields counts in rank order; shuffling detaches rank from
    user identity so that user attributes (device group, type) stay
    independent of activity level except where the generator couples them
    deliberately.
    """
    stores = (
        rank_activity_counts(
            n_storers, model.store_c, model.store_a, rng, model.jitter_sigma
        )
        if n_storers
        else np.empty(0, dtype=int)
    )
    retrieves = (
        rank_activity_counts(
            n_retrievers, model.retrieve_c, model.retrieve_a, rng, model.jitter_sigma
        )
        if n_retrievers
        else np.empty(0, dtype=int)
    )
    rng.shuffle(stores)
    rng.shuffle(retrieves)
    return stores, retrieves
