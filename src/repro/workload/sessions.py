"""Session content synthesis: class, size, file count and file sizes.

Builds the per-session structures the generator turns into log records:
which class a session belongs to (store-only / retrieve-only / mixed), how
many file operations it contains (Fig 5a's shape: 40% single-op, ~10% above
20 ops), and the per-file sizes drawn so that the *session average* file
size follows the planted Table 2 exponential mixtures exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .config import MB, FileSizeModel, SessionMixModel


class SessionClass(enum.Enum):
    """The three session classes of Section 3.1.1."""

    STORE_ONLY = "store_only"
    RETRIEVE_ONLY = "retrieve_only"
    MIXED = "mixed"


@dataclass(frozen=True)
class SessionPlan:
    """A planned session: how many files move in each direction and their
    sizes in bytes."""

    session_class: SessionClass
    store_sizes: tuple[int, ...]
    retrieve_sizes: tuple[int, ...]

    @property
    def n_ops(self) -> int:
        return len(self.store_sizes) + len(self.retrieve_sizes)

    @property
    def store_volume(self) -> int:
        return sum(self.store_sizes)

    @property
    def retrieve_volume(self) -> int:
        return sum(self.retrieve_sizes)


def sample_ops_count(
    mix: SessionMixModel, rng: np.random.Generator, max_ops: int | None = None
) -> int:
    """Number of file operations in a session (Fig 5a shape)."""
    cap = max_ops if max_ops is not None else mix.max_ops
    cap = max(1, cap)
    u = float(rng.uniform())
    if u < mix.single_op_fraction or cap == 1:
        return 1
    if u < 1.0 - mix.large_fraction:
        # 2..20 ops: shifted geometric.
        count = 2 + int(rng.geometric(1.0 / mix.small_tail_mean)) - 1
        return min(cap, min(20, count))
    # >20 ops: Pareto tail.
    tail = 20.0 * (1.0 + rng.pareto(mix.large_pareto_alpha))
    return min(cap, min(mix.max_ops, int(tail)))


def sample_size_component(
    weights: tuple[float, ...], rng: np.random.Generator
) -> int:
    """Pick a size-mixture component index by weight."""
    return int(rng.choice(len(weights), p=np.asarray(weights) / sum(weights)))


def sample_average_file_size(
    weights: tuple[float, ...],
    means_mb: tuple[float, ...],
    rng: np.random.Generator,
    min_bytes: int = 16 * 1024,
    component: int | None = None,
) -> int:
    """One session-average file size in bytes from an exponential mixture.

    When ``component`` is given the draw comes from that component only
    (used to couple file size with operation count).
    """
    if len(weights) != len(means_mb):
        raise ValueError("weights and means must align")
    if component is None:
        component = sample_size_component(weights, rng)
    if not 0 <= component < len(means_mb):
        raise ValueError(f"component {component} out of range")
    size_mb = float(rng.exponential(means_mb[component]))
    return max(min_bytes, int(size_mb * MB))


def spread_file_sizes(
    average: int, n_files: int, rng: np.random.Generator, spread_sigma: float = 0.4
) -> tuple[int, ...]:
    """Per-file sizes with lognormal spread whose mean is exactly ``average``.

    The paper's Table 2 model describes the per-session *average* file
    size, so we preserve that average exactly while letting individual
    files within the session vary (a photo burst is homogeneous; a mixed
    folder less so).
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    if average < n_files:
        raise ValueError("average size must be at least one byte per file")
    if n_files == 1:
        return (average,)
    jitter = rng.lognormal(0.0, spread_sigma, size=n_files)
    jitter /= jitter.mean()
    sizes = np.maximum(1, np.round(jitter * average)).astype(np.int64)
    # Fix rounding drift so the session average stays exact.
    drift = int(average) * n_files - int(sizes.sum())
    sizes[int(np.argmax(sizes))] += drift
    if sizes.min() < 1:
        # Pathological drift correction; redistribute from the largest.
        deficit = 1 - int(sizes.min())
        sizes[int(np.argmin(sizes))] += deficit
        sizes[int(np.argmax(sizes))] -= deficit
    return tuple(int(s) for s in sizes)


class SessionPlanner:
    """Turns a per-user file budget into a sequence of session plans."""

    def __init__(self, mix: SessionMixModel, sizes: FileSizeModel) -> None:
        self.mix = mix
        self.sizes = sizes

    def _class_for(
        self, can_store: bool, can_retrieve: bool, rng: np.random.Generator
    ) -> SessionClass:
        if can_store and not can_retrieve:
            return SessionClass.STORE_ONLY
        if can_retrieve and not can_store:
            return SessionClass.RETRIEVE_ONLY
        total = self.mix.store_only + self.mix.retrieve_only + self.mix.mixed
        u = float(rng.uniform()) * total
        if u < self.mix.store_only:
            return SessionClass.STORE_ONLY
        if u < self.mix.store_only + self.mix.retrieve_only:
            return SessionClass.RETRIEVE_ONLY
        return SessionClass.MIXED

    def _plan_direction(
        self,
        rng: np.random.Generator,
        budget: int,
        *,
        is_store: bool,
        pc_profile: bool,
        max_avg_size_bytes: int | None,
        ops_override: int | None = None,
    ) -> tuple[int, ...]:
        if pc_profile:
            weights, means = self.sizes.pc_weights, self.sizes.pc_means_mb
            large_cap = None
        elif is_store:
            weights, means = self.sizes.store_weights, self.sizes.store_means_mb
            large_cap = self.sizes.large_component_max_ops_store
        else:
            weights, means = (
                self.sizes.retrieve_weights,
                self.sizes.retrieve_means_mb,
            )
            large_cap = self.sizes.large_component_max_ops_retrieve
        component = sample_size_component(weights, rng)
        if ops_override is not None:
            n = max(1, min(budget, ops_override))
            component = 0  # bulk auto-backup sessions are photo streams
        else:
            n = sample_ops_count(self.mix, rng, max_ops=budget)
            # Large-file sessions carry few operations (videos are uploaded
            # one or two at a time; big shared files are fetched singly —
            # which is what pushes the single-file retrieve session mean
            # toward the paper's ~70 MB).
            if component > 0 and large_cap is not None:
                if not is_store and float(rng.uniform()) < 0.35:
                    n = 1
                else:
                    n = min(n, large_cap)
        if max_avg_size_bytes is not None:
            # Occasional users draw from the ordinary photo component,
            # truncated: they are simply the users whose few files happened
            # to be small, so the Table 2 mixture stays undistorted.
            component = 0
            avg = max_avg_size_bytes
            for _ in range(64):
                avg = sample_average_file_size(
                    weights, means, rng, component=component
                )
                if avg < max_avg_size_bytes:
                    break
            avg = min(avg, max_avg_size_bytes)
        else:
            avg = sample_average_file_size(weights, means, rng, component=component)
        return spread_file_sizes(max(avg, n), n, rng)

    def plan_session(
        self,
        rng: np.random.Generator,
        *,
        store_budget: int,
        retrieve_budget: int,
        pc_profile: bool = False,
        max_avg_size_bytes: int | None = None,
        bulk_store_ops: int | None = None,
        bulk_retrieve_ops: int | None = None,
    ) -> SessionPlan:
        """Plan one session, consuming at most the given file budgets.

        Parameters
        ----------
        pc_profile:
            Switch the size mixtures to the PC-client profile (smaller,
            editing-heavy files).
        max_avg_size_bytes:
            Cap the sampled average file size (used for occasional users,
            whose total traffic stays under 1 MB).
        bulk_store_ops:
            Force a store session with exactly this many operations (the
            auto-backup catch-up sessions of very heavy users).
        bulk_retrieve_ops:
            Force a retrieve session with exactly this many operations
            (multi-device sync drains of very heavy retrievers).
        """
        if store_budget <= 0 and retrieve_budget <= 0:
            raise ValueError("nothing left to plan")
        if bulk_store_ops is not None and bulk_retrieve_ops is not None:
            raise ValueError("a bulk session drains one direction only")
        if bulk_store_ops is not None:
            cls = SessionClass.STORE_ONLY
        elif bulk_retrieve_ops is not None:
            cls = SessionClass.RETRIEVE_ONLY
        else:
            cls = self._class_for(store_budget > 0, retrieve_budget > 0, rng)
        store_sizes: tuple[int, ...] = ()
        retrieve_sizes: tuple[int, ...] = ()
        if cls in (SessionClass.STORE_ONLY, SessionClass.MIXED):
            store_sizes = self._plan_direction(
                rng,
                store_budget,
                is_store=True,
                pc_profile=pc_profile,
                max_avg_size_bytes=max_avg_size_bytes,
                ops_override=bulk_store_ops,
            )
        if cls in (SessionClass.RETRIEVE_ONLY, SessionClass.MIXED):
            retrieve_sizes = self._plan_direction(
                rng,
                retrieve_budget,
                is_store=False,
                pc_profile=pc_profile,
                max_avg_size_bytes=max_avg_size_bytes,
                ops_override=bulk_retrieve_ops,
            )
        return SessionPlan(
            session_class=cls,
            store_sizes=store_sizes,
            retrieve_sizes=retrieve_sizes,
        )
