"""Workload synthesis substrate.

Generates synthetic week-long request traces statistically calibrated to
every model the paper publishes — Gaussian-mixture operation intervals,
Table 2 file-size mixtures, Table 3 user types, stretched-exponential
activity ranks, bimodal engagement and the Fig 1 diurnal cycle — standing
in for the proprietary 350 M-request dataset."""

from .activity import assign_store_retrieve_counts, rank_activity_counts
from .config import (
    MB,
    PAPER_CONFIG,
    ActivityModel,
    DeviceGroup,
    DeviceModel,
    DiurnalModel,
    EngagementModel,
    FileSizeModel,
    NetworkModel,
    SessionIntervalModel,
    SessionMixModel,
    UserMixModel,
    UserType,
    WorkloadConfig,
)
from .deferral import (
    DeferralPolicy,
    LoadSummary,
    evaluate_deferral,
    folded_load,
    hourly_load,
)
from .diurnal import SECONDS_PER_DAY, SECONDS_PER_HOUR, DiurnalSampler
from .generator import GeneratorOptions, TraceGenerator, generate_trace
from .popularity import (
    PopularityModel,
    SharedObject,
    build_catalog,
    corpus_bytes,
    request_stream,
    zipf_weights,
)
from .population import DeviceSpec, UserSpec, build_population
from .redundancy import (
    MobileBackupModel,
    PcSyncModel,
    mobile_backup_stream,
    pc_sync_stream,
)
from .sessions import (
    SessionClass,
    SessionPlan,
    SessionPlanner,
    sample_average_file_size,
    sample_ops_count,
    spread_file_sizes,
)

__all__ = [
    "ActivityModel",
    "DeferralPolicy",
    "DeviceGroup",
    "DeviceModel",
    "DeviceSpec",
    "DiurnalModel",
    "DiurnalSampler",
    "EngagementModel",
    "FileSizeModel",
    "GeneratorOptions",
    "LoadSummary",
    "MB",
    "MobileBackupModel",
    "NetworkModel",
    "PcSyncModel",
    "PopularityModel",
    "PAPER_CONFIG",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SessionClass",
    "SessionIntervalModel",
    "SessionMixModel",
    "SessionPlan",
    "SessionPlanner",
    "SharedObject",
    "TraceGenerator",
    "UserMixModel",
    "UserSpec",
    "UserType",
    "WorkloadConfig",
    "assign_store_retrieve_counts",
    "build_catalog",
    "build_population",
    "corpus_bytes",
    "evaluate_deferral",
    "generate_trace",
    "folded_load",
    "hourly_load",
    "mobile_backup_stream",
    "pc_sync_stream",
    "rank_activity_counts",
    "request_stream",
    "sample_average_file_size",
    "sample_ops_count",
    "spread_file_sizes",
    "zipf_weights",
]
