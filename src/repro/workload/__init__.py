"""Workload synthesis substrate.

Generates synthetic week-long request traces statistically calibrated to
every model the paper publishes — Gaussian-mixture operation intervals,
Table 2 file-size mixtures, Table 3 user types, stretched-exponential
activity ranks, bimodal engagement and the Fig 1 diurnal cycle — standing
in for the proprietary 350 M-request dataset."""

from .activity import assign_store_retrieve_counts, rank_activity_counts
from .config import (
    MB,
    PAPER_CONFIG,
    ActivityModel,
    DeviceGroup,
    DeviceModel,
    DiurnalModel,
    EngagementModel,
    FileSizeModel,
    NetworkModel,
    SessionIntervalModel,
    SessionMixModel,
    UserMixModel,
    UserType,
    WorkloadConfig,
)
from .deferral import (
    DeferralPolicy,
    LoadSummary,
    evaluate_deferral,
    folded_load,
    hourly_load,
)
from .diurnal import SECONDS_PER_DAY, SECONDS_PER_HOUR, DiurnalSampler
from .generator import (
    SESSION_ID_STRIDE,
    GeneratorOptions,
    TraceGenerator,
    generate_trace,
    user_rng,
)
from .parallel import (
    ShardedTrace,
    ShardPart,
    ShardTask,
    generate_shard,
    generate_sharded,
    generate_trace_parallel,
    generate_trace_to_file,
    merge_key,
    merge_shards,
    partition_users,
    shard_of_user,
)
from .popularity import (
    PopularityModel,
    SharedObject,
    build_catalog,
    corpus_bytes,
    request_stream,
    zipf_weights,
)
from .population import DeviceSpec, UserSpec, build_population
from .redundancy import (
    MobileBackupModel,
    PcSyncModel,
    mobile_backup_stream,
    pc_sync_stream,
)
from .sessions import (
    SessionClass,
    SessionPlan,
    SessionPlanner,
    sample_average_file_size,
    sample_ops_count,
    spread_file_sizes,
)

__all__ = [
    "ActivityModel",
    "DeferralPolicy",
    "DeviceGroup",
    "DeviceModel",
    "DeviceSpec",
    "DiurnalModel",
    "DiurnalSampler",
    "EngagementModel",
    "FileSizeModel",
    "GeneratorOptions",
    "LoadSummary",
    "MB",
    "MobileBackupModel",
    "NetworkModel",
    "PcSyncModel",
    "PopularityModel",
    "PAPER_CONFIG",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SESSION_ID_STRIDE",
    "SessionClass",
    "SessionIntervalModel",
    "SessionMixModel",
    "SessionPlan",
    "SessionPlanner",
    "SharedObject",
    "ShardPart",
    "ShardTask",
    "ShardedTrace",
    "TraceGenerator",
    "UserMixModel",
    "UserSpec",
    "UserType",
    "WorkloadConfig",
    "assign_store_retrieve_counts",
    "build_catalog",
    "build_population",
    "corpus_bytes",
    "evaluate_deferral",
    "generate_shard",
    "generate_sharded",
    "generate_trace",
    "generate_trace_parallel",
    "generate_trace_to_file",
    "folded_load",
    "hourly_load",
    "merge_key",
    "merge_shards",
    "mobile_backup_stream",
    "partition_users",
    "pc_sync_stream",
    "rank_activity_counts",
    "request_stream",
    "sample_average_file_size",
    "sample_ops_count",
    "shard_of_user",
    "spread_file_sizes",
    "user_rng",
    "zipf_weights",
]
