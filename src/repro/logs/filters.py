"""Composable record filters.

The paper repeatedly restricts the trace before an analysis: mobile devices
only, unproxied requests only (Section 4), chunk requests only, one specific
day, etc.  These helpers keep those restrictions explicit and streaming.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .schema import Direction, DeviceType, LogRecord, RequestKind

Predicate = Callable[[LogRecord], bool]


def mobile_only(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Keep only records from mobile (Android/iOS) devices."""
    return (r for r in records if r.is_mobile)


def pc_only(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Keep only records from PC clients."""
    return (r for r in records if r.device_type is DeviceType.PC)


def unproxied(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Drop proxied requests, as Section 4 does before TCP analysis."""
    return (r for r in records if not r.proxied)


def of_kind(records: Iterable[LogRecord], kind: RequestKind) -> Iterator[LogRecord]:
    """Keep only records of the given request kind."""
    return (r for r in records if r.kind is kind)


def of_direction(
    records: Iterable[LogRecord], direction: Direction
) -> Iterator[LogRecord]:
    """Keep only store or only retrieve records."""
    return (r for r in records if r.direction is direction)


def of_device(
    records: Iterable[LogRecord], device_type: DeviceType
) -> Iterator[LogRecord]:
    """Keep only records from one device type."""
    return (r for r in records if r.device_type is device_type)


def in_window(
    records: Iterable[LogRecord], start: float, end: float
) -> Iterator[LogRecord]:
    """Keep records with ``start <= timestamp < end``."""
    if end < start:
        raise ValueError(f"empty window: start={start}, end={end}")
    return (r for r in records if start <= r.timestamp < end)


def of_users(records: Iterable[LogRecord], user_ids: set[int]) -> Iterator[LogRecord]:
    """Keep records whose user is in ``user_ids``."""
    return (r for r in records if r.user_id in user_ids)


def matching(records: Iterable[LogRecord], *predicates: Predicate) -> Iterator[LogRecord]:
    """Keep records satisfying every predicate (AND composition)."""
    return (r for r in records if all(p(r) for p in predicates))
