"""Struct-of-arrays trace representation for vectorized analysis.

The record-at-a-time analyses in :mod:`repro.core` walk Python
:class:`~repro.logs.schema.LogRecord` objects one by one — fine for unit
tests, hopeless for the paper's 349 M-request scale.  This module holds the
same Table 1 trace as a **column-per-field** :class:`ColumnarTrace`:
NumPy arrays for the numeric fields, small-integer code arrays for the
enum fields (device type, request kind, direction, result), and a string
pool for device ids (each record stores an index into the pool).

One :class:`LogRecord` costs hundreds of bytes and a Python-level attribute
lookup per field access; one columnar row costs ~60 bytes and every
analysis over it is a NumPy kernel.  The vectorized fast paths built on top
(:func:`repro.core.sessions.sessionize_columnar`,
:func:`repro.core.usage.profile_users_columnar`,
:func:`repro.logs.stream.tally_by_user_columnar`, …) are equivalence-tested
against the record-path implementations: same session boundaries, same
tallies, same profiles.

Invariants
----------
* Row order is preserved exactly by :meth:`ColumnarTrace.from_records` /
  :meth:`ColumnarTrace.to_records`; the round trip is the identity
  (floats are stored as float64, never quantized).
* Enum code tables are part of the schema: :data:`SCHEMA_VERSION` must be
  bumped whenever the column layout *or* a code table changes, so on-disk
  NPZ caches invalidate instead of decoding garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from .schema import DeviceType, Direction, LogRecord, RequestKind, ResultCode

#: Version of the on-disk/NPZ column layout and enum code tables.  Bump on
#: any change to the columns, dtypes, or the code tables below; cached
#: artifacts keyed by an older version are ignored.
SCHEMA_VERSION = 1

#: Enum code tables.  A field's code is its index in the tuple; the tables
#: are append-only (append new members, never reorder) so codes stay stable.
DEVICE_TYPES: tuple[DeviceType, ...] = (
    DeviceType.ANDROID,
    DeviceType.IOS,
    DeviceType.PC,
)
REQUEST_KINDS: tuple[RequestKind, ...] = (RequestKind.FILE_OP, RequestKind.CHUNK)
DIRECTIONS: tuple[Direction, ...] = (Direction.STORE, Direction.RETRIEVE)
RESULT_CODES: tuple[ResultCode, ...] = (
    ResultCode.OK,
    ResultCode.SERVER_ERROR,
    ResultCode.UNAVAILABLE,
    ResultCode.TIMEOUT,
    ResultCode.SHED,
)

DEVICE_CODE = {member: code for code, member in enumerate(DEVICE_TYPES)}
KIND_CODE = {member: code for code, member in enumerate(REQUEST_KINDS)}
DIRECTION_CODE = {member: code for code, member in enumerate(DIRECTIONS)}
RESULT_CODE = {member: code for code, member in enumerate(RESULT_CODES)}

#: Frequently tested codes, exported so analysis modules can build boolean
#: masks without importing the code dicts.
PC_CODE = DEVICE_CODE[DeviceType.PC]
FILE_OP_CODE = KIND_CODE[RequestKind.FILE_OP]
CHUNK_CODE = KIND_CODE[RequestKind.CHUNK]
STORE_CODE = DIRECTION_CODE[Direction.STORE]
RETRIEVE_CODE = DIRECTION_CODE[Direction.RETRIEVE]
OK_CODE = RESULT_CODE[ResultCode.OK]

#: Enum value -> code, keyed by the raw string (the bulk-parse lookup).
#: Benchmarked against NumPy string-array comparisons: a plain dict list
#: comprehension wins because building a ``U``-dtype array costs more
#: than every lookup combined.
DEVICE_CODE_BY_VALUE = {m.value: c for m, c in DEVICE_CODE.items()}
KIND_CODE_BY_VALUE = {m.value: c for m, c in KIND_CODE.items()}
DIRECTION_CODE_BY_VALUE = {m.value: c for m, c in DIRECTION_CODE.items()}
RESULT_CODE_BY_VALUE = {m.value: c for m, c in RESULT_CODE.items()}


def _map_enum_values(values: Sequence[str], by_value: dict) -> np.ndarray:
    """Map a raw string column to enum codes (invalid values raise)."""
    try:
        return np.asarray([by_value[v] for v in values], dtype=np.uint8)
    except KeyError as exc:
        raise ValueError(f"unknown enum value: {exc.args[0]!r}") from None

#: (column name, dtype) of every array column, in on-disk order.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("timestamp", "float64"),
    ("device_type", "uint8"),
    ("device_code", "int64"),
    ("user_id", "int64"),
    ("kind", "uint8"),
    ("direction", "uint8"),
    ("volume", "int64"),
    ("processing_time", "float64"),
    ("server_time", "float64"),
    ("rtt", "float64"),
    ("proxied", "bool"),
    ("result", "uint8"),
    ("session_id", "int64"),
)


@dataclass(frozen=True)
class ColumnarTrace:
    """One trace as a struct of arrays (all the same length).

    ``device_code`` indexes into ``device_pool``, the deduplicated tuple of
    device-id strings; every other enum field stores its code-table index.
    Instances are cheap to slice (:meth:`select`), concatenate
    (:meth:`concatenate`) and persist (:meth:`to_npz`), and round-trip
    loss-lessly to :class:`~repro.logs.schema.LogRecord` lists.
    """

    timestamp: np.ndarray
    device_type: np.ndarray
    device_code: np.ndarray
    device_pool: tuple[str, ...]
    user_id: np.ndarray
    kind: np.ndarray
    direction: np.ndarray
    volume: np.ndarray
    processing_time: np.ndarray
    server_time: np.ndarray
    rtt: np.ndarray
    proxied: np.ndarray
    result: np.ndarray
    session_id: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.timestamp)
        for name, _ in COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} rows, "
                    f"expected {n}"
                )
        if len(self.device_code) and self.device_code.max(initial=-1) >= len(
            self.device_pool
        ):
            raise ValueError("device_code points past the device pool")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnarTrace":
        """A zero-row trace (identity for :meth:`concatenate`)."""
        return cls._from_columns(
            {name: np.empty(0, dtype=dtype) for name, dtype in COLUMNS},
            device_pool=(),
        )

    @classmethod
    def _from_columns(
        cls, columns: dict[str, np.ndarray], device_pool: tuple[str, ...]
    ) -> "ColumnarTrace":
        return cls(device_pool=device_pool, **columns)

    @classmethod
    def from_records(cls, records: Iterable[LogRecord]) -> "ColumnarTrace":
        """Build a columnar trace from any record iterable, order-preserving."""
        timestamp: list[float] = []
        device_type: list[int] = []
        device_code: list[int] = []
        user_id: list[int] = []
        kind: list[int] = []
        direction: list[int] = []
        volume: list[int] = []
        processing_time: list[float] = []
        server_time: list[float] = []
        rtt: list[float] = []
        proxied: list[bool] = []
        result: list[int] = []
        session_id: list[int] = []
        pool: dict[str, int] = {}
        for r in records:
            timestamp.append(r.timestamp)
            device_type.append(DEVICE_CODE[r.device_type])
            code = pool.setdefault(r.device_id, len(pool))
            device_code.append(code)
            user_id.append(r.user_id)
            kind.append(KIND_CODE[r.kind])
            direction.append(DIRECTION_CODE[r.direction])
            volume.append(r.volume)
            processing_time.append(r.processing_time)
            server_time.append(r.server_time)
            rtt.append(r.rtt)
            proxied.append(r.proxied)
            result.append(RESULT_CODE[r.result])
            session_id.append(r.session_id)
        columns = {
            "timestamp": np.asarray(timestamp, dtype=np.float64),
            "device_type": np.asarray(device_type, dtype=np.uint8),
            "device_code": np.asarray(device_code, dtype=np.int64),
            "user_id": np.asarray(user_id, dtype=np.int64),
            "kind": np.asarray(kind, dtype=np.uint8),
            "direction": np.asarray(direction, dtype=np.uint8),
            "volume": np.asarray(volume, dtype=np.int64),
            "processing_time": np.asarray(processing_time, dtype=np.float64),
            "server_time": np.asarray(server_time, dtype=np.float64),
            "rtt": np.asarray(rtt, dtype=np.float64),
            "proxied": np.asarray(proxied, dtype=bool),
            "result": np.asarray(result, dtype=np.uint8),
            "session_id": np.asarray(session_id, dtype=np.int64),
        }
        return cls._from_columns(columns, device_pool=tuple(pool))

    @classmethod
    def from_string_columns(
        cls,
        *,
        timestamp: Sequence[str] | np.ndarray,
        device_type: Sequence[str],
        device_id: Sequence[str],
        user_id: Sequence[str] | np.ndarray,
        kind: Sequence[str],
        direction: Sequence[str],
        volume: Sequence[str] | np.ndarray,
        processing_time: Sequence[str] | np.ndarray,
        server_time: Sequence[str] | np.ndarray,
        rtt: Sequence[str] | np.ndarray,
        proxied: Sequence[str],
        result: Sequence[str],
        session_id: Sequence[str] | np.ndarray,
        device_pool: dict[str, int] | None = None,
    ) -> "ColumnarTrace":
        """Build one chunk from raw text columns (the bulk-parse fast path).

        Numeric columns convert with one ``np.asarray`` call each; enum
        columns map through their value tables.  ``device_pool`` lets the
        caller thread one pool dict across chunks so codes stay global.
        """
        pool = device_pool if device_pool is not None else {}
        columns = {
            "timestamp": np.asarray(timestamp, dtype=np.float64),
            "device_type": _map_enum_values(device_type, DEVICE_CODE_BY_VALUE),
            "device_code": np.asarray(
                [pool.setdefault(d, len(pool)) for d in device_id],
                dtype=np.int64,
            ),
            "user_id": np.asarray(user_id, dtype=np.int64),
            "kind": _map_enum_values(kind, KIND_CODE_BY_VALUE),
            "direction": _map_enum_values(direction, DIRECTION_CODE_BY_VALUE),
            "volume": np.asarray(volume, dtype=np.int64),
            "processing_time": np.asarray(processing_time, dtype=np.float64),
            "server_time": np.asarray(server_time, dtype=np.float64),
            "rtt": np.asarray(rtt, dtype=np.float64),
            "proxied": np.asarray(
                [p == "1" or p == "true" for p in proxied], dtype=bool
            ),
            "result": _map_enum_values(result, RESULT_CODE_BY_VALUE),
            "session_id": np.asarray(session_id, dtype=np.int64),
        }
        return cls._from_columns(columns, device_pool=tuple(pool))

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamp)

    def columns(self) -> dict[str, np.ndarray]:
        """The array columns as a name -> array dict (no copy)."""
        return {name: getattr(self, name) for name, _ in COLUMNS}

    def record(self, i: int) -> LogRecord:
        """Materialize row ``i`` as a :class:`LogRecord`."""
        return LogRecord(
            timestamp=float(self.timestamp[i]),
            device_type=DEVICE_TYPES[self.device_type[i]],
            device_id=self.device_pool[self.device_code[i]],
            user_id=int(self.user_id[i]),
            kind=REQUEST_KINDS[self.kind[i]],
            direction=DIRECTIONS[self.direction[i]],
            volume=int(self.volume[i]),
            processing_time=float(self.processing_time[i]),
            server_time=float(self.server_time[i]),
            rtt=float(self.rtt[i]),
            proxied=bool(self.proxied[i]),
            result=RESULT_CODES[self.result[i]],
            session_id=int(self.session_id[i]),
        )

    def __iter__(self) -> Iterator[LogRecord]:
        return self.iter_records()

    def iter_records(self) -> Iterator[LogRecord]:
        """Yield rows as records one at a time (bounded memory)."""
        # Pull the columns into locals once; .tolist() converts to native
        # Python scalars in bulk, ~5x faster than per-element np indexing.
        ts = self.timestamp.tolist()
        dt = self.device_type.tolist()
        dc = self.device_code.tolist()
        uid = self.user_id.tolist()
        kind = self.kind.tolist()
        direction = self.direction.tolist()
        vol = self.volume.tolist()
        proc = self.processing_time.tolist()
        srv = self.server_time.tolist()
        rtt = self.rtt.tolist()
        prox = self.proxied.tolist()
        res = self.result.tolist()
        sid = self.session_id.tolist()
        pool = self.device_pool
        for i in range(len(ts)):
            yield LogRecord(
                timestamp=ts[i],
                device_type=DEVICE_TYPES[dt[i]],
                device_id=pool[dc[i]],
                user_id=uid[i],
                kind=REQUEST_KINDS[kind[i]],
                direction=DIRECTIONS[direction[i]],
                volume=vol[i],
                processing_time=proc[i],
                server_time=srv[i],
                rtt=rtt[i],
                proxied=prox[i],
                result=RESULT_CODES[res[i]],
                session_id=sid[i],
            )

    def to_records(self) -> list[LogRecord]:
        """Materialize the whole trace as a record list (row order kept)."""
        return list(self.iter_records())

    def device_ids(self) -> np.ndarray:
        """Per-row device-id strings (decoded through the pool)."""
        pool = np.asarray(self.device_pool, dtype=object)
        if not len(self):
            return pool[:0]
        return pool[self.device_code]

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------

    @property
    def mobile_mask(self) -> np.ndarray:
        return self.device_type != PC_CODE

    @property
    def file_op_mask(self) -> np.ndarray:
        return self.kind == FILE_OP_CODE

    @property
    def chunk_mask(self) -> np.ndarray:
        return self.kind == CHUNK_CODE

    @property
    def ok_mask(self) -> np.ndarray:
        return self.result == OK_CODE

    # ------------------------------------------------------------------
    # Slicing, ordering, concatenation
    # ------------------------------------------------------------------

    def select(self, index: np.ndarray) -> "ColumnarTrace":
        """Rows selected by a boolean mask or integer index array.

        The device pool is shared (codes keep their meaning), so selection
        never rewrites strings.
        """
        return self._from_columns(
            {name: getattr(self, name)[index] for name, _ in COLUMNS},
            device_pool=self.device_pool,
        )

    def sorted_by_user_time(self) -> "ColumnarTrace":
        """Rows stably reordered by ``(user_id, timestamp)``.

        This is the serial generator's emission order (users ascending,
        each user time-sorted); ties keep their current row order because
        :func:`np.lexsort` is stable.
        """
        return self.select(np.lexsort((self.timestamp, self.user_id)))

    def sorted_by_time(self) -> "ColumnarTrace":
        """Rows stably reordered by ``(timestamp, user_id)`` (merge order)."""
        return self.select(np.lexsort((self.user_id, self.timestamp)))

    @classmethod
    def concatenate(cls, traces: Sequence["ColumnarTrace"]) -> "ColumnarTrace":
        """Stack traces row-wise, merging device pools and remapping codes."""
        traces = [t for t in traces if len(t)]
        if not traces:
            return cls.empty()
        pool: dict[str, int] = {}
        remapped_codes: list[np.ndarray] = []
        for trace in traces:
            lookup = np.asarray(
                [pool.setdefault(d, len(pool)) for d in trace.device_pool],
                dtype=np.int64,
            )
            remapped_codes.append(
                lookup[trace.device_code]
                if len(trace.device_pool)
                else trace.device_code
            )
        columns = {
            name: np.concatenate([getattr(t, name) for t in traces])
            for name, _ in COLUMNS
            if name != "device_code"
        }
        columns["device_code"] = np.concatenate(remapped_codes)
        return cls._from_columns(columns, device_pool=tuple(pool))

    # ------------------------------------------------------------------
    # NPZ persistence
    # ------------------------------------------------------------------

    def to_npz_payload(self) -> dict[str, np.ndarray]:
        """The ``np.savez``-ready mapping for this trace (plus metadata)."""
        payload = dict(self.columns())
        payload["device_pool"] = np.asarray(self.device_pool, dtype=np.str_)
        payload["schema_version"] = np.asarray(SCHEMA_VERSION, dtype=np.int64)
        return payload

    def to_npz(self, path: str | Path) -> None:
        """Persist the trace to ``path`` (compressed NPZ)."""
        np.savez_compressed(path, **self.to_npz_payload())

    @classmethod
    def from_npz_payload(cls, data) -> "ColumnarTrace":
        """Rebuild a trace from a loaded NPZ mapping.

        Raises
        ------
        ValueError
            If the payload was written under a different
            :data:`SCHEMA_VERSION` (the caller should regenerate).
        """
        version = int(data["schema_version"])
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"columnar schema version mismatch: file={version}, "
                f"library={SCHEMA_VERSION}"
            )
        columns = {
            name: np.asarray(data[name], dtype=dtype) for name, dtype in COLUMNS
        }
        pool = tuple(str(s) for s in data["device_pool"])
        return cls._from_columns(columns, device_pool=pool)

    @classmethod
    def from_npz(cls, path: str | Path) -> "ColumnarTrace":
        """Load a trace persisted by :meth:`to_npz`."""
        with np.load(path, allow_pickle=False) as data:
            return cls.from_npz_payload(data)


#: Default rows buffered per source by :func:`merge_columnar_sorted` —
#: ~64 MB of scratch per 8 sources at ~60 bytes/row, far below any
#: whole-trace materialization.
DEFAULT_MERGE_BLOCK_ROWS = 1 << 20


def iter_columnar_blocks(
    trace: ColumnarTrace, block_rows: int
) -> Iterator[ColumnarTrace]:
    """Yield ``trace`` as consecutive row slices of at most ``block_rows``.

    Slices are NumPy views (zero copy); on a memory-mapped trace each
    yielded block touches only its own pages.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    for lo in range(0, len(trace), block_rows):
        yield ColumnarTrace._from_columns(
            {
                name: getattr(trace, name)[lo : lo + block_rows]
                for name, _ in COLUMNS
            },
            device_pool=trace.device_pool,
        )


def merge_columnar_sorted(
    sources: Sequence[ColumnarTrace],
    *,
    block_rows: int = DEFAULT_MERGE_BLOCK_ROWS,
    order: str = "user_time",
) -> Iterator[ColumnarTrace]:
    """Memory-bounded k-way merge of sorted columnar sources.

    Each source must already be sorted by the requested ``order`` —
    ``"user_time"`` for ``(user_id, timestamp)`` (what
    :meth:`ColumnarTrace.sorted_by_user_time` produces and the sharded
    generator writes) or ``"time"`` for ``(timestamp, user_id)``.  The
    concatenation of the yielded blocks is **byte-identical** to
    ``ColumnarTrace.concatenate(sources).sorted_by_user_time()`` (resp.
    ``.sorted_by_time()``): same rows, same order, same device pool —
    ties across sources resolve in source order exactly as a stable
    lexsort over the concatenation would.

    Peak scratch is ``O(block_rows × len(sources))`` rows: the merge
    buffers one window of at most ``block_rows`` rows per source (a
    zero-copy slice when sources are memory-mapped) and emits the rows
    that are provably complete — those whose key is below the smallest
    *last buffered* key of any source with unread data.  Emitted blocks
    therefore vary in size but never exceed ``block_rows × len(sources)``
    rows.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    if order == "user_time":
        primary_name, secondary_name = "user_id", "timestamp"
    elif order == "time":
        primary_name, secondary_name = "timestamp", "user_id"
    else:
        raise ValueError(f"unknown merge order: {order!r}")
    live = [t for t in sources if len(t)]

    # One part-wide device pool, first-appearance order across sources —
    # identical to what concatenate() would build (it also skips empties).
    pool: dict[str, int] = {}
    lookups: list[np.ndarray | None] = []
    for trace in live:
        if len(trace.device_pool):
            lookups.append(
                np.asarray(
                    [pool.setdefault(d, len(pool)) for d in trace.device_pool],
                    dtype=np.int64,
                )
            )
        else:
            lookups.append(None)
    device_pool = tuple(pool)

    primary = [getattr(t, primary_name) for t in live]
    secondary = [getattr(t, secondary_name) for t in live]
    lengths = [len(t) for t in live]
    heads = [0] * len(live)

    while True:
        active = [j for j in range(len(live)) if heads[j] < lengths[j]]
        if not active:
            return
        tails = {j: min(heads[j] + block_rows, lengths[j]) for j in active}
        # Rows are complete once their key can no longer be undercut by
        # unread data: the bound is the smallest last-buffered key among
        # sources that still have rows beyond their window.  Rows *equal*
        # to the bound are safe only from sources at or before the lowest
        # such source (``j_bound``): a stable sort over the concatenation
        # orders equal keys by source, and sources after ``j_bound`` may
        # still have more bound-valued rows unread.
        bound = None
        j_bound = None
        for j in active:
            if tails[j] < lengths[j]:
                key = (primary[j][tails[j] - 1], secondary[j][tails[j] - 1])
                if bound is None or key < bound:
                    bound = key
                    j_bound = j
        pieces: list[tuple[int, int, int]] = []
        for j in active:
            lo, hi = heads[j], tails[j]
            if bound is None:
                cut = hi
            else:
                bound_primary, bound_secondary = bound
                window_primary = primary[j][lo:hi]
                left = lo + int(
                    np.searchsorted(window_primary, bound_primary, side="left")
                )
                right = lo + int(
                    np.searchsorted(window_primary, bound_primary, side="right")
                )
                cut = left + int(
                    np.searchsorted(
                        secondary[j][left:right],
                        bound_secondary,
                        side="right" if j <= j_bound else "left",
                    )
                )
            if cut > lo:
                pieces.append((j, lo, cut))
                heads[j] = cut
        # Progress guarantee: the bound source's window ends exactly at
        # the bound key, so at least its window always drains in full.
        columns = {
            name: np.concatenate(
                [getattr(live[j], name)[lo:hi] for j, lo, hi in pieces]
            )
            for name, _ in COLUMNS
            if name != "device_code"
        }
        columns["device_code"] = np.concatenate(
            [
                lookups[j][live[j].device_code[lo:hi]]
                if lookups[j] is not None
                else live[j].device_code[lo:hi]
                for j, lo, hi in pieces
            ]
        )
        # Pieces are gathered in source order, so the stable lexsort
        # resolves equal keys exactly like sorting the concatenation.
        emit_order = np.lexsort(
            (columns[secondary_name], columns[primary_name])
        )
        yield ColumnarTrace._from_columns(
            {name: column[emit_order] for name, column in columns.items()},
            device_pool=device_pool,
        )


def as_columnar(records) -> ColumnarTrace:
    """Coerce a record iterable (or pass through a trace) to columnar form."""
    if isinstance(records, ColumnarTrace):
        return records
    return ColumnarTrace.from_records(records)


# Defensive check: a LogRecord field addition without a columnar column is a
# silent data-loss bug; fail at import time instead.
_COLUMN_NAMES = {name for name, _ in COLUMNS}
_RECORD_FIELDS = {f.name for f in fields(LogRecord)}
_EXPECTED = (_RECORD_FIELDS - {"device_id"}) | {"device_code"}
if _COLUMN_NAMES != _EXPECTED:  # pragma: no cover - import-time guard
    raise RuntimeError(
        "ColumnarTrace columns out of sync with LogRecord fields: "
        f"{sorted(_COLUMN_NAMES.symmetric_difference(_EXPECTED))}"
    )
