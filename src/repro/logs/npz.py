"""Memory-mapped loading of uncompressed ``.npz`` archives.

``np.load(path, mmap_mode="r")`` silently ignores ``mmap_mode`` for
``.npz`` files: the archive is a zip container, and NumPy only maps bare
``.npy`` files.  For *uncompressed* archives (``np.savez``) that is a pure
waste — every stored member is a verbatim ``.npy`` byte range inside the
file, so it can be mapped directly at its offset.

:func:`load_npz` does exactly that: it walks the zip directory, and for
every member that is stored (not deflated), one-dimensional-or-more,
non-empty and C-ordered it returns a read-only ``np.memmap`` positioned
at the member's data offset; anything else (compressed members, 0-d
scalars like ``schema_version``, empty arrays, strings) falls back to a
regular :func:`np.load` read of just that member.  Callers therefore get
zero-copy access where it is safe and ordinary arrays everywhere else,
from one call.

Any structural problem — not a zip, truncated member, malformed ``.npy``
header — surfaces as :class:`ValueError` (or propagates ``OSError``), so
existing "corrupt cache ⇒ regenerate" paths keep working unchanged.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path

import numpy as np

#: Fields of the zip local file header needed to find member data:
#: signature (4s), then 22 bytes we skip, then file-name and extra-field
#: lengths.  The data starts right after the variable-length tail.
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"


def _member_data_offset(fh, info: zipfile.ZipInfo) -> int:
    """Absolute file offset of a stored member's first data byte."""
    fh.seek(info.header_offset)
    header = fh.read(_LOCAL_HEADER_SIZE)
    if (
        len(header) != _LOCAL_HEADER_SIZE
        or header[:4] != _LOCAL_HEADER_SIGNATURE
    ):
        raise ValueError(f"bad zip local header for member {info.filename!r}")
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _mmap_member(path: Path, fh, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Map one stored ``.npy`` member read-only; ``None`` if not mappable."""
    data_start = _member_data_offset(fh, info)
    fh.seek(data_start)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        return None
    if fortran or dtype.hasobject or len(shape) == 0 or 0 in shape:
        # 0-d scalars and empty arrays cannot be mapped; object arrays
        # must never be (np.load below rejects them via allow_pickle).
        return None
    return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=fh.tell())


def load_npz(path: str | Path, *, mmap: bool = True) -> dict[str, np.ndarray]:
    """Load an ``.npz`` archive, memory-mapping members where possible.

    Returns a plain ``{member name: array}`` dict.  With ``mmap=False``
    every member is an ordinary in-memory array (equivalent to copying
    out of ``np.load``); with ``mmap=True`` uncompressed numeric members
    come back as read-only ``np.memmap`` views into ``path``.

    Raises :class:`ValueError` for anything that is not a well-formed
    archive of ``.npy`` members.
    """
    path = Path(path)
    out: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            infos = archive.infolist()
            if mmap:
                with open(path, "rb") as fh:
                    for info in infos:
                        if info.compress_type != zipfile.ZIP_STORED:
                            continue
                        name = info.filename.removesuffix(".npy")
                        array = _mmap_member(path, fh, info)
                        if array is not None:
                            out[name] = array
            with np.load(path, allow_pickle=False) as data:
                for member in data.files:
                    if member not in out:
                        out[member] = data[member]
    except zipfile.BadZipFile as exc:
        raise ValueError(f"not a valid npz archive {path}: {exc}") from None
    return out
