"""Anonymization of identifiers, mirroring the paper's released dataset.

The paper anonymizes both device IDs and user IDs before analysis.  We do the
same for any trace that leaves the simulator: a keyed, deterministic mapping
that preserves join structure (the same raw ID always maps to the same
pseudonym) while being non-invertible without the key.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Iterator

from .schema import LogRecord


def _digest(key: bytes, value: str) -> str:
    """Keyed 13-hex-char pseudonym, the shape of the paper's device IDs."""
    return hmac.new(key, value.encode("utf-8"), hashlib.sha256).hexdigest()[:13]


class Anonymizer:
    """Deterministic keyed pseudonymizer for user and device identifiers.

    Parameters
    ----------
    key:
        Secret key.  Two anonymizers with the same key produce identical
        pseudonyms, so traces anonymized in separate passes still join.
    """

    def __init__(self, key: bytes = b"repro-default-key") -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = key
        self._user_cache: dict[int, int] = {}
        self._device_cache: dict[str, str] = {}

    def user_pseudonym(self, user_id: int) -> int:
        """Stable integer pseudonym for a user ID."""
        cached = self._user_cache.get(user_id)
        if cached is None:
            cached = int(_digest(self._key, f"user:{user_id}"), 16)
            self._user_cache[user_id] = cached
        return cached

    def device_pseudonym(self, device_id: str) -> str:
        """Stable hex pseudonym for a device ID."""
        cached = self._device_cache.get(device_id)
        if cached is None:
            cached = _digest(self._key, f"device:{device_id}")
            self._device_cache[device_id] = cached
        return cached

    def anonymize(self, record: LogRecord) -> LogRecord:
        """Return a copy of ``record`` with pseudonymous identifiers."""
        from dataclasses import replace

        return replace(
            record,
            user_id=self.user_pseudonym(record.user_id),
            device_id=self.device_pseudonym(record.device_id),
        )

    def anonymize_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[LogRecord]:
        """Anonymize a whole record stream lazily."""
        return (self.anonymize(r) for r in records)
