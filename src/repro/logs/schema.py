"""HTTP request log schema.

The paper's Table 1 lists the fields of one HTTP request log entry collected
at the storage front-end servers: timestamp, device type, device ID, user ID,
request type, data volume, request processing time, average RTT, and whether
the request went through an HTTP proxy.

This module defines :class:`LogRecord` — the single record type every other
subsystem consumes or produces — together with the enums for device type,
client platform and request type.  The paper distinguishes *file operation
requests* (which carry file metadata and mark the beginning of a file
store/retrieve) from *chunk requests* (which carry up to 512 KB of data).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

#: Fixed chunk size used by the examined service (bytes).  Files larger than
#: this are split into 512 KB chunks; only the final chunk may be smaller.
CHUNK_SIZE = 512 * 1024


class DeviceType(enum.Enum):
    """Operating system of the client device."""

    ANDROID = "android"
    IOS = "ios"
    PC = "pc"

    @property
    def is_mobile(self) -> bool:
        """Whether this device type is a mobile platform."""
        return self is not DeviceType.PC


class RequestKind(enum.Enum):
    """The two request granularities visible at the front-end servers.

    A *file operation* announces an upcoming file store or retrieve and
    carries only metadata; *chunk* requests move the actual data.
    """

    FILE_OP = "file_op"
    CHUNK = "chunk"


class Direction(enum.Enum):
    """Whether a request stores (uploads) or retrieves (downloads) data."""

    STORE = "store"
    RETRIEVE = "retrieve"


class ResultCode(enum.Enum):
    """Outcome of one request (the Table 1 *result* field).

    Real front-end logs record failed requests next to successful ones;
    the fault-injection layer (:mod:`repro.faults`) produces every code
    below, and analyses that only want the happy path filter with
    :func:`iter_ok` / :attr:`LogRecord.is_ok`.
    """

    OK = "ok"
    #: Transient server-side error (5xx); the request may be retried.
    SERVER_ERROR = "server_error"
    #: The front-end (or metadata server) was down/unreachable.
    UNAVAILABLE = "unavailable"
    #: The client gave up waiting for the response (per-op timeout).
    TIMEOUT = "timeout"
    #: Rejected by degraded-mode load shedding (in-flight queue full).
    SHED = "shed"

    @property
    def is_ok(self) -> bool:
        return self is ResultCode.OK


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One HTTP request log entry (paper Table 1).

    Attributes
    ----------
    timestamp:
        Seconds since the start of the observation window (float, so
        sub-second inter-arrivals survive a round trip through files).
    device_type:
        Android, iOS or PC.
    device_id:
        Anonymized device identifier, unique per physical device.
    user_id:
        Anonymized account identifier; one user may use several devices.
    kind:
        File operation or chunk request.
    direction:
        Store or retrieve.
    volume:
        Bytes uploaded (store) or downloaded (retrieve) by this request.
        File operations carry no payload and have ``volume == 0``.
    processing_time:
        ``Tchunk`` — seconds between the first byte received by the
        front-end server and the last byte sent to the client.
    server_time:
        ``Tsrv`` — seconds spent by upstream storage servers storing or
        preparing the content for this request.
    rtt:
        Average RTT (seconds) of the TCP connection carrying the request.
    proxied:
        True when the request passed through an HTTP proxy
        (``X-FORWARDED-FOR`` present).
    result:
        Request outcome (Table 1's *result* field).  Failed attempts are
        logged with their error code and ``volume == 0`` — no payload was
        durably transferred — so retries are visible in the trace exactly
        as in real front-end logs.
    session_id:
        Ground-truth session tag assigned by the workload generator, or
        ``-1`` when unknown (as in real traces).  The analysis pipeline never
        reads this field; it exists so tests can score recovered
        sessionizations against the truth.
    """

    timestamp: float
    device_type: DeviceType
    device_id: str
    user_id: int
    kind: RequestKind
    direction: Direction
    volume: int = 0
    processing_time: float = 0.0
    server_time: float = 0.0
    rtt: float = 0.0
    proxied: bool = False
    result: ResultCode = ResultCode.OK
    session_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"volume must be >= 0, got {self.volume}")
        if self.processing_time < 0:
            raise ValueError("processing_time must be >= 0")
        if self.rtt < 0:
            raise ValueError("rtt must be >= 0")
        if self.kind is RequestKind.FILE_OP and self.volume:
            raise ValueError("file operations carry no payload")
        if not self.result.is_ok and self.volume:
            raise ValueError("failed requests carry no payload")

    @property
    def is_file_op(self) -> bool:
        return self.kind is RequestKind.FILE_OP

    @property
    def is_chunk(self) -> bool:
        return self.kind is RequestKind.CHUNK

    @property
    def is_mobile(self) -> bool:
        return self.device_type.is_mobile

    @property
    def is_ok(self) -> bool:
        """Whether the request succeeded (Table 1 result field)."""
        return self.result.is_ok

    @property
    def transfer_time(self) -> float:
        """``ttran = Tchunk - Tsrv``: the user-perceived transfer time."""
        return max(0.0, self.processing_time - self.server_time)

    def with_timestamp(self, timestamp: float) -> "LogRecord":
        """Return a copy shifted to ``timestamp`` (used by deferral policies)."""
        return replace(self, timestamp=timestamp)


def sort_by_time(records: Iterable[LogRecord]) -> list[LogRecord]:
    """Return records sorted by (timestamp, user, device) for stable replay."""
    return sorted(records, key=lambda r: (r.timestamp, r.user_id, r.device_id))


def iter_file_ops(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Yield only file-operation records, preserving order."""
    return (r for r in records if r.is_file_op)


def iter_chunks(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Yield only chunk records, preserving order."""
    return (r for r in records if r.is_chunk)


def iter_ok(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Yield only successful requests, preserving order.

    The behaviour analyses consume this view of a failure-polluted trace:
    retried attempts appear as extra failed records, and filtering them out
    must recover the fault-free workload statistics (experiment R2).
    """
    return (r for r in records if r.is_ok)


def iter_failures(records: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Yield only failed requests, preserving order."""
    return (r for r in records if not r.is_ok)
