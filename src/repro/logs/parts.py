"""Memory-mappable columnar shard parts (the zero-copy worker hand-off).

A *columnar part* is a directory holding one raw ``.npy`` file per
:data:`~repro.logs.columnar.COLUMNS` entry plus a ``meta.json`` with the
schema version, the row count and the device pool.  Unlike an ``.npz``
archive — whose members sit inside a zip container that
``np.load(mmap_mode=...)`` silently refuses to map — every column here is
a plain ``.npy`` file, so the parent process opens a worker-written part
with ``np.load(..., mmap_mode="r")`` and touches only the pages an
analysis actually reads.  Nothing is pickled across the process boundary:
the worker hands back a *path*.

:class:`ColumnarPartWriter` is an **append** writer: the worker streams
one :class:`~repro.logs.columnar.ColumnarTrace` batch at a time (e.g. a
few thousand users' rows) and the writer extends each column file in
place, so worker peak RSS is bounded by the batch size, never the shard
size.  The trick is a fixed-width ``.npy`` header (the format reserves
padding for exactly this) rewritten with the final row count on
:meth:`~ColumnarPartWriter.close` — until then the shape on disk says 0
rows, which doubles as a torn-write marker.

``meta.json`` is written only by a successful :meth:`close`, so a crashed
or interrupted worker leaves a part that :func:`read_columnar_part`
rejects with :class:`ValueError` instead of serving truncated data.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import IO

import numpy as np

from .columnar import COLUMNS, SCHEMA_VERSION, ColumnarTrace

#: File name of the part manifest inside a part directory.
PART_META = "meta.json"

#: Total on-disk size of the fixed .npy header we write: magic + version
#: (8 bytes), header length (2 bytes), and a padded header dict.  128
#: bytes fits every COLUMNS dtype with room to spare and keeps the array
#: data 64-byte aligned, which ``np.memmap`` likes.
_NPY_HEADER_TOTAL = 128
_NPY_MAGIC = b"\x93NUMPY\x01\x00"


def _npy_header(dtype: np.dtype, n_rows: int) -> bytes:
    """The fixed-width version-1.0 ``.npy`` header for a 1-D array."""
    descr = np.lib.format.dtype_to_descr(dtype)
    body = "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        n_rows,
    )
    room = _NPY_HEADER_TOTAL - len(_NPY_MAGIC) - 2
    if len(body) + 1 > room:  # pragma: no cover - COLUMNS dtypes all fit
        raise ValueError(f"npy header does not fit {_NPY_HEADER_TOTAL} bytes")
    padded = body + " " * (room - len(body) - 1) + "\n"
    return _NPY_MAGIC + struct.pack("<H", room) + padded.encode("latin1")


class ColumnarPartWriter:
    """Stream a columnar trace to a part directory, one batch at a time.

    Batches may carry different device pools (each worker batch builds its
    own); the writer merges them into one part-wide pool exactly like
    :meth:`ColumnarTrace.concatenate` — first-appearance order, codes
    remapped on the way to disk.

    Usable as a context manager; on a clean exit the part is finalized
    (headers rewritten, ``meta.json`` written), on an exception the column
    files are closed but no manifest is written, leaving the part
    detectably incomplete.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._dtypes: dict[str, np.dtype] = {
            name: np.dtype(dtype) for name, dtype in COLUMNS
        }
        self._files: dict[str, IO[bytes]] = {}
        for name, _ in COLUMNS:
            fh = open(self.directory / f"{name}.npy", "wb")
            fh.write(_npy_header(self._dtypes[name], 0))
            self._files[name] = fh
        self._pool: dict[str, int] = {}
        self._n_rows = 0
        self._finalized = False

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def append(self, batch: ColumnarTrace) -> None:
        """Append one trace batch (rows in the order given)."""
        if self._finalized:
            raise ValueError("part writer already closed")
        if not len(batch):
            return
        for name, _ in COLUMNS:
            column = getattr(batch, name)
            if name == "device_code" and len(batch.device_pool):
                lookup = np.asarray(
                    [
                        self._pool.setdefault(d, len(self._pool))
                        for d in batch.device_pool
                    ],
                    dtype=np.int64,
                )
                column = lookup[column]
            data = np.ascontiguousarray(column, dtype=self._dtypes[name])
            self._files[name].write(data.tobytes())
        self._n_rows += len(batch)

    def close(self) -> None:
        """Finalize the part: rewrite headers, write the manifest."""
        if self._finalized:
            return
        for name, fh in self._files.items():
            fh.flush()
            fh.seek(0)
            fh.write(_npy_header(self._dtypes[name], self._n_rows))
            fh.close()
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "n_records": self._n_rows,
            "device_pool": list(self._pool),
        }
        (self.directory / PART_META).write_text(json.dumps(manifest))
        self._finalized = True

    def abort(self) -> None:
        """Close file handles without writing a manifest (part invalid)."""
        if self._finalized:
            return
        for fh in self._files.values():
            fh.close()

    def __enter__(self) -> "ColumnarPartWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_columnar_part(trace: ColumnarTrace, directory: str | Path) -> None:
    """Write a whole trace as one part (convenience over the writer)."""
    with ColumnarPartWriter(directory) as writer:
        writer.append(trace)


def read_columnar_part(
    directory: str | Path, *, mmap: bool = True
) -> ColumnarTrace:
    """Open a part directory as a :class:`ColumnarTrace`.

    With ``mmap=True`` (the default) every column is a read-only
    ``np.memmap`` — opening a 100M-row part costs pages, not copies, and
    the returned trace behaves like any other (slicing a memmap reads
    only the touched pages).

    Raises
    ------
    ValueError
        On a missing/corrupt manifest, schema-version mismatch, or any
        column file that is missing, truncated, or of the wrong
        dtype/length — an incomplete worker write never parses as data.
    """
    directory = Path(directory)
    meta_path = directory / PART_META
    try:
        manifest = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable columnar part {directory}: {exc}") from None
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"columnar part schema version mismatch: part={version}, "
            f"library={SCHEMA_VERSION}"
        )
    n_rows = manifest.get("n_records")
    pool = manifest.get("device_pool")
    if not isinstance(n_rows, int) or n_rows < 0 or not isinstance(pool, list):
        raise ValueError(f"malformed columnar part manifest {meta_path}")
    columns: dict[str, np.ndarray] = {}
    for name, dtype in COLUMNS:
        path = directory / f"{name}.npy"
        try:
            array = np.load(
                path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise ValueError(f"corrupt part column {path}: {exc}") from None
        if (
            array.ndim != 1
            or array.dtype != np.dtype(dtype)
            or len(array) != n_rows
        ):
            raise ValueError(
                f"part column {path} does not match manifest: "
                f"dtype={array.dtype}, shape={array.shape}, expected "
                f"{n_rows} rows of {dtype}"
            )
        columns[name] = array
    return ColumnarTrace._from_columns(columns, device_pool=tuple(pool))
