"""Reading and writing log files.

Two interchangeable on-disk formats are supported:

* **TSV** — one record per line, tab separated, with a ``#``-prefixed header.
  Compact and greppable; the format we recommend for large synthetic traces.
* **JSONL** — one JSON object per line.  Self-describing and friendlier to
  ad-hoc tooling.

Both writers stream: they never hold more than one record in memory, so a
multi-gigabyte trace can be produced or consumed on a laptop.  Readers are
tolerant of CRLF line endings and trailing blank lines (files that visited
a Windows editor or a ``printf``-happy shell still parse).

For analysis workloads there is a second, much faster read path:
:func:`read_tsv_columnar` / :func:`read_jsonl_columnar` /
:func:`read_columnar` bulk-parse the file in line chunks straight into a
:class:`~repro.logs.columnar.ColumnarTrace` — one ``np.asarray`` call per
numeric column per chunk instead of one ``LogRecord`` per line — while
preserving the legacy 12-column tolerance of the record readers.
"""

from __future__ import annotations

import gzip
import io
import itertools
import json
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

from .columnar import ColumnarTrace
from .schema import Direction, DeviceType, LogRecord, RequestKind, ResultCode

TSV_COLUMNS = (
    "timestamp",
    "device_type",
    "device_id",
    "user_id",
    "kind",
    "direction",
    "volume",
    "processing_time",
    "server_time",
    "rtt",
    "proxied",
    "result",
    "session_id",
)

#: Column count of traces written before the ``result`` field existed;
#: such lines parse with ``result=ok`` (the only value they could carry).
_LEGACY_TSV_COLUMNS = len(TSV_COLUMNS) - 1

_HEADER = "#" + "\t".join(TSV_COLUMNS)


def _open(path: str | Path, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently handling ``.gz`` suffixes."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode + "t", encoding="utf-8")


def record_to_tsv(record: LogRecord) -> str:
    """Serialize one record as a TSV line (no trailing newline)."""
    return "\t".join(
        (
            f"{record.timestamp:.6f}",
            record.device_type.value,
            record.device_id,
            str(record.user_id),
            record.kind.value,
            record.direction.value,
            str(record.volume),
            f"{record.processing_time:.6f}",
            f"{record.server_time:.6f}",
            f"{record.rtt:.6f}",
            "1" if record.proxied else "0",
            record.result.value,
            str(record.session_id),
        )
    )


def record_from_tsv(line: str) -> LogRecord:
    """Parse one TSV line into a :class:`LogRecord`.

    Accepts both the current column set and the legacy pre-``result``
    layout (every legacy request was implicitly successful), with or
    without a trailing CR/LF (CRLF files parse unchanged).

    Raises
    ------
    ValueError
        If the line does not have exactly the expected number of columns or
        a field fails to parse.  Blank lines are malformed here; the file
        readers skip them before calling this.
    """
    parts = line.rstrip("\r\n").split("\t")
    if len(parts) == _LEGACY_TSV_COLUMNS:
        result, session_id = ResultCode.OK, int(parts[11])
    elif len(parts) == len(TSV_COLUMNS):
        result, session_id = ResultCode(parts[11]), int(parts[12])
    else:
        raise ValueError(
            f"expected {len(TSV_COLUMNS)} columns, got {len(parts)}: {line!r}"
        )
    return LogRecord(
        timestamp=float(parts[0]),
        device_type=DeviceType(parts[1]),
        device_id=parts[2],
        user_id=int(parts[3]),
        kind=RequestKind(parts[4]),
        direction=Direction(parts[5]),
        volume=int(parts[6]),
        processing_time=float(parts[7]),
        server_time=float(parts[8]),
        rtt=float(parts[9]),
        proxied=parts[10] == "1",
        result=result,
        session_id=session_id,
    )


def record_to_dict(record: LogRecord) -> dict:
    """Serialize one record as a plain dict (for JSONL)."""
    return {
        "timestamp": record.timestamp,
        "device_type": record.device_type.value,
        "device_id": record.device_id,
        "user_id": record.user_id,
        "kind": record.kind.value,
        "direction": record.direction.value,
        "volume": record.volume,
        "processing_time": record.processing_time,
        "server_time": record.server_time,
        "rtt": record.rtt,
        "proxied": record.proxied,
        "result": record.result.value,
        "session_id": record.session_id,
    }


def record_from_dict(data: dict) -> LogRecord:
    """Build a record from a dict produced by :func:`record_to_dict`."""
    return LogRecord(
        timestamp=float(data["timestamp"]),
        device_type=DeviceType(data["device_type"]),
        device_id=str(data["device_id"]),
        user_id=int(data["user_id"]),
        kind=RequestKind(data["kind"]),
        direction=Direction(data["direction"]),
        volume=int(data.get("volume", 0)),
        processing_time=float(data.get("processing_time", 0.0)),
        server_time=float(data.get("server_time", 0.0)),
        rtt=float(data.get("rtt", 0.0)),
        proxied=bool(data.get("proxied", False)),
        result=ResultCode(data.get("result", "ok")),
        session_id=int(data.get("session_id", -1)),
    )


def write_tsv(records: Iterable[LogRecord], path: str | Path) -> int:
    """Stream ``records`` to ``path`` in TSV format.  Returns record count."""
    count = 0
    with _open(path, "w") as fh:
        fh.write(_HEADER + "\n")
        for record in records:
            fh.write(record_to_tsv(record) + "\n")
            count += 1
    return count


def read_tsv(path: str | Path) -> Iterator[LogRecord]:
    """Stream records from a TSV file written by :func:`write_tsv`."""
    with _open(path, "r") as fh:
        for line in fh:
            if not line.strip() or line.startswith("#"):
                continue
            yield record_from_tsv(line)


def write_jsonl(records: Iterable[LogRecord], path: str | Path) -> int:
    """Stream ``records`` to ``path`` in JSONL format.  Returns record count."""
    count = 0
    with _open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[LogRecord]:
    """Stream records from a JSONL file written by :func:`write_jsonl`."""
    with _open(path, "r") as fh:
        for line in fh:
            if not line.strip():
                continue
            yield record_from_dict(json.loads(line))


def _stem_suffix(path: str | Path) -> str:
    suffixes = Path(path).suffixes
    if suffixes and suffixes[-1] == ".gz":
        return suffixes[-2] if len(suffixes) > 1 else ""
    return suffixes[-1] if suffixes else ""


def open_reader(path: str | Path) -> Iterator[LogRecord]:
    """Pick the reader by file extension (``.tsv``/``.jsonl``, plus ``.gz``)."""
    readers: dict[str, Callable[[str | Path], Iterator[LogRecord]]] = {
        ".tsv": read_tsv,
        ".jsonl": read_jsonl,
    }
    try:
        reader = readers[_stem_suffix(path)]
    except KeyError:
        raise ValueError(f"unsupported log format: {path}") from None
    return reader(path)


# ----------------------------------------------------------------------
# Columnar bulk readers
# ----------------------------------------------------------------------

#: Lines parsed per chunk by the columnar readers.  Each chunk becomes one
#: set of Python lists sliced into columns, so memory stays bounded by the
#: chunk while conversion amortizes to one ``np.asarray`` per column.
COLUMNAR_CHUNK_LINES = 131_072


def _data_lines(fh: IO[str]) -> Iterator[str]:
    """Yield stripped data lines, skipping headers/comments and blanks."""
    for line in fh:
        line = line.rstrip("\r\n")
        if not line or line.startswith("#"):
            continue
        yield line


def _tsv_chunk_to_columnar(
    lines: list[str], pool: dict[str, int]
) -> ColumnarTrace:
    # Fast path: when every line has the same column count, one join+split
    # flattens the whole chunk in C and stride slices peel off the columns
    # — no per-line split, no row tuples.  A chunk mixing layouts falls
    # back to row-at-a-time (conversion errors surface either way).
    n_rows = len(lines)
    n_full = len(TSV_COLUMNS)
    flat = "\t".join(lines).split("\t")
    if len(flat) == n_rows * n_full:
        columns = tuple(flat[i::n_full] for i in range(n_full))
    elif len(flat) == n_rows * _LEGACY_TSV_COLUMNS:
        # Legacy pre-``result`` layout: splice in the only value a legacy
        # trace could carry, keeping the column slice uniform.
        legacy = tuple(flat[i::_LEGACY_TSV_COLUMNS] for i in range(_LEGACY_TSV_COLUMNS))
        columns = legacy[:11] + (["ok"] * n_rows,) + legacy[11:]
    else:
        rows = []
        for line in lines:
            parts = line.split("\t")
            if len(parts) == _LEGACY_TSV_COLUMNS:
                parts = parts[:11] + ["ok", parts[11]]
            elif len(parts) != n_full:
                raise ValueError(
                    f"expected {n_full} columns, got {len(parts)}: "
                    f"{line!r}"
                )
            rows.append(parts)
        columns = tuple(zip(*rows))
    return ColumnarTrace.from_string_columns(
        timestamp=columns[0],
        device_type=columns[1],
        device_id=columns[2],
        user_id=columns[3],
        kind=columns[4],
        direction=columns[5],
        volume=columns[6],
        processing_time=columns[7],
        server_time=columns[8],
        rtt=columns[9],
        proxied=columns[10],
        result=columns[11],
        session_id=columns[12],
        device_pool=pool,
    )


def read_tsv_columnar(
    path: str | Path, *, chunk_lines: int = COLUMNAR_CHUNK_LINES
) -> ColumnarTrace:
    """Bulk-parse a TSV trace into a :class:`ColumnarTrace`.

    Reads ``chunk_lines`` lines at a time and converts them column-sliced
    (one ``np.asarray`` per numeric column per chunk) instead of building a
    :class:`LogRecord` per line — the same rows :func:`read_tsv` yields, an
    order of magnitude faster.  Tolerates the legacy 12-column layout,
    CRLF line endings and trailing blank lines exactly like the record
    reader.
    """
    if chunk_lines < 1:
        raise ValueError("chunk_lines must be >= 1")
    chunks: list[ColumnarTrace] = []
    pool: dict[str, int] = {}
    with _open(path, "r") as fh:
        lines = _data_lines(fh)
        while chunk := list(itertools.islice(lines, chunk_lines)):
            chunks.append(_tsv_chunk_to_columnar(chunk, pool))
    if not chunks:
        return ColumnarTrace.empty()
    # The chunks thread one device pool, so the concatenation remap is the
    # identity — chunk codes survive unchanged.
    return (
        chunks[0] if len(chunks) == 1 else ColumnarTrace.concatenate(chunks)
    )


def read_jsonl_columnar(
    path: str | Path, *, chunk_lines: int = COLUMNAR_CHUNK_LINES
) -> ColumnarTrace:
    """Bulk-parse a JSONL trace into a :class:`ColumnarTrace`.

    Same chunked column-sliced conversion as :func:`read_tsv_columnar`;
    missing optional fields take the :func:`record_from_dict` defaults.
    """
    if chunk_lines < 1:
        raise ValueError("chunk_lines must be >= 1")
    chunks: list[ColumnarTrace] = []
    pool: dict[str, int] = {}
    with _open(path, "r") as fh:
        lines = _data_lines(fh)
        while chunk := list(itertools.islice(lines, chunk_lines)):
            dicts = [json.loads(line) for line in chunk]
            chunks.append(
                ColumnarTrace.from_string_columns(
                    timestamp=[d["timestamp"] for d in dicts],
                    device_type=[d["device_type"] for d in dicts],
                    device_id=[str(d["device_id"]) for d in dicts],
                    user_id=[d["user_id"] for d in dicts],
                    kind=[d["kind"] for d in dicts],
                    direction=[d["direction"] for d in dicts],
                    volume=[d.get("volume", 0) for d in dicts],
                    processing_time=[
                        d.get("processing_time", 0.0) for d in dicts
                    ],
                    server_time=[d.get("server_time", 0.0) for d in dicts],
                    rtt=[d.get("rtt", 0.0) for d in dicts],
                    proxied=[
                        "1" if d.get("proxied", False) else "0" for d in dicts
                    ],
                    result=[d.get("result", "ok") for d in dicts],
                    session_id=[d.get("session_id", -1) for d in dicts],
                    device_pool=pool,
                )
            )
    if not chunks:
        return ColumnarTrace.empty()
    return (
        chunks[0] if len(chunks) == 1 else ColumnarTrace.concatenate(chunks)
    )


def read_columnar(path: str | Path) -> ColumnarTrace:
    """Columnar counterpart of :func:`open_reader`: pick by extension."""
    readers: dict[str, Callable[[str | Path], ColumnarTrace]] = {
        ".tsv": read_tsv_columnar,
        ".jsonl": read_jsonl_columnar,
        ".npz": ColumnarTrace.from_npz,
    }
    try:
        reader = readers[_stem_suffix(path)]
    except KeyError:
        raise ValueError(f"unsupported log format: {path}") from None
    return reader(path)
