"""Reading and writing log files.

Two interchangeable on-disk formats are supported:

* **TSV** — one record per line, tab separated, with a ``#``-prefixed header.
  Compact and greppable; the format we recommend for large synthetic traces.
* **JSONL** — one JSON object per line.  Self-describing and friendlier to
  ad-hoc tooling.

Both writers stream: they never hold more than one record in memory, so a
multi-gigabyte trace can be produced or consumed on a laptop.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

from .schema import Direction, DeviceType, LogRecord, RequestKind, ResultCode

TSV_COLUMNS = (
    "timestamp",
    "device_type",
    "device_id",
    "user_id",
    "kind",
    "direction",
    "volume",
    "processing_time",
    "server_time",
    "rtt",
    "proxied",
    "result",
    "session_id",
)

#: Column count of traces written before the ``result`` field existed;
#: such lines parse with ``result=ok`` (the only value they could carry).
_LEGACY_TSV_COLUMNS = len(TSV_COLUMNS) - 1

_HEADER = "#" + "\t".join(TSV_COLUMNS)


def _open(path: str | Path, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently handling ``.gz`` suffixes."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode + "t", encoding="utf-8")


def record_to_tsv(record: LogRecord) -> str:
    """Serialize one record as a TSV line (no trailing newline)."""
    return "\t".join(
        (
            f"{record.timestamp:.6f}",
            record.device_type.value,
            record.device_id,
            str(record.user_id),
            record.kind.value,
            record.direction.value,
            str(record.volume),
            f"{record.processing_time:.6f}",
            f"{record.server_time:.6f}",
            f"{record.rtt:.6f}",
            "1" if record.proxied else "0",
            record.result.value,
            str(record.session_id),
        )
    )


def record_from_tsv(line: str) -> LogRecord:
    """Parse one TSV line into a :class:`LogRecord`.

    Accepts both the current column set and the legacy pre-``result``
    layout (every legacy request was implicitly successful).

    Raises
    ------
    ValueError
        If the line does not have exactly the expected number of columns or
        a field fails to parse.
    """
    parts = line.rstrip("\n").split("\t")
    if len(parts) == _LEGACY_TSV_COLUMNS:
        result, session_id = ResultCode.OK, int(parts[11])
    elif len(parts) == len(TSV_COLUMNS):
        result, session_id = ResultCode(parts[11]), int(parts[12])
    else:
        raise ValueError(
            f"expected {len(TSV_COLUMNS)} columns, got {len(parts)}: {line!r}"
        )
    return LogRecord(
        timestamp=float(parts[0]),
        device_type=DeviceType(parts[1]),
        device_id=parts[2],
        user_id=int(parts[3]),
        kind=RequestKind(parts[4]),
        direction=Direction(parts[5]),
        volume=int(parts[6]),
        processing_time=float(parts[7]),
        server_time=float(parts[8]),
        rtt=float(parts[9]),
        proxied=parts[10] == "1",
        result=result,
        session_id=session_id,
    )


def record_to_dict(record: LogRecord) -> dict:
    """Serialize one record as a plain dict (for JSONL)."""
    return {
        "timestamp": record.timestamp,
        "device_type": record.device_type.value,
        "device_id": record.device_id,
        "user_id": record.user_id,
        "kind": record.kind.value,
        "direction": record.direction.value,
        "volume": record.volume,
        "processing_time": record.processing_time,
        "server_time": record.server_time,
        "rtt": record.rtt,
        "proxied": record.proxied,
        "result": record.result.value,
        "session_id": record.session_id,
    }


def record_from_dict(data: dict) -> LogRecord:
    """Build a record from a dict produced by :func:`record_to_dict`."""
    return LogRecord(
        timestamp=float(data["timestamp"]),
        device_type=DeviceType(data["device_type"]),
        device_id=str(data["device_id"]),
        user_id=int(data["user_id"]),
        kind=RequestKind(data["kind"]),
        direction=Direction(data["direction"]),
        volume=int(data.get("volume", 0)),
        processing_time=float(data.get("processing_time", 0.0)),
        server_time=float(data.get("server_time", 0.0)),
        rtt=float(data.get("rtt", 0.0)),
        proxied=bool(data.get("proxied", False)),
        result=ResultCode(data.get("result", "ok")),
        session_id=int(data.get("session_id", -1)),
    )


def write_tsv(records: Iterable[LogRecord], path: str | Path) -> int:
    """Stream ``records`` to ``path`` in TSV format.  Returns record count."""
    count = 0
    with _open(path, "w") as fh:
        fh.write(_HEADER + "\n")
        for record in records:
            fh.write(record_to_tsv(record) + "\n")
            count += 1
    return count


def read_tsv(path: str | Path) -> Iterator[LogRecord]:
    """Stream records from a TSV file written by :func:`write_tsv`."""
    with _open(path, "r") as fh:
        for line in fh:
            if not line.strip() or line.startswith("#"):
                continue
            yield record_from_tsv(line)


def write_jsonl(records: Iterable[LogRecord], path: str | Path) -> int:
    """Stream ``records`` to ``path`` in JSONL format.  Returns record count."""
    count = 0
    with _open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[LogRecord]:
    """Stream records from a JSONL file written by :func:`write_jsonl`."""
    with _open(path, "r") as fh:
        for line in fh:
            if not line.strip():
                continue
            yield record_from_dict(json.loads(line))


def open_reader(path: str | Path) -> Iterator[LogRecord]:
    """Pick the reader by file extension (``.tsv``/``.jsonl``, plus ``.gz``)."""
    suffixes = Path(path).suffixes
    stem_suffix = suffixes[-2] if suffixes and suffixes[-1] == ".gz" else (
        suffixes[-1] if suffixes else ""
    )
    readers: dict[str, Callable[[str | Path], Iterator[LogRecord]]] = {
        ".tsv": read_tsv,
        ".jsonl": read_jsonl,
    }
    try:
        reader = readers[stem_suffix]
    except KeyError:
        raise ValueError(f"unsupported log format: {path}") from None
    return reader(path)
