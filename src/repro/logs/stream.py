"""Streaming aggregation over log records.

Analyses over a 350M-record trace cannot materialize per-record state.  The
helpers here do single-pass, bounded-memory aggregation keyed by user, device
or time bin, and are shared by the analysis modules in :mod:`repro.core`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, TypeVar

from .schema import Direction, LogRecord

K = TypeVar("K", bound=Hashable)


@dataclass
class VolumeTally:
    """Running store/retrieve byte and request counters."""

    stored_bytes: int = 0
    retrieved_bytes: int = 0
    store_file_ops: int = 0
    retrieve_file_ops: int = 0
    store_chunks: int = 0
    retrieve_chunks: int = 0

    def add(self, record: LogRecord) -> None:
        """Fold one record into the tally."""
        if record.direction is Direction.STORE:
            if record.is_file_op:
                self.store_file_ops += 1
            else:
                self.store_chunks += 1
                self.stored_bytes += record.volume
        else:
            if record.is_file_op:
                self.retrieve_file_ops += 1
            else:
                self.retrieve_chunks += 1
                self.retrieved_bytes += record.volume

    @property
    def total_bytes(self) -> int:
        return self.stored_bytes + self.retrieved_bytes

    @property
    def total_file_ops(self) -> int:
        return self.store_file_ops + self.retrieve_file_ops

    def merge(self, other: "VolumeTally") -> None:
        """Fold another tally into this one."""
        self.stored_bytes += other.stored_bytes
        self.retrieved_bytes += other.retrieved_bytes
        self.store_file_ops += other.store_file_ops
        self.retrieve_file_ops += other.retrieve_file_ops
        self.store_chunks += other.store_chunks
        self.retrieve_chunks += other.retrieve_chunks

    def store_retrieve_ratio(self, epsilon: float = 1.0) -> float:
        """Ratio of stored to retrieved volume, as used for Fig 7.

        ``epsilon`` (bytes) keeps the ratio finite when one side is zero;
        with the paper's classification thresholds of 1e±5 the exact value
        of epsilon is immaterial for users with any meaningful volume.
        """
        return (self.stored_bytes + epsilon) / (self.retrieved_bytes + epsilon)


def tally_by(
    records: Iterable[LogRecord], key: Callable[[LogRecord], K]
) -> dict[K, VolumeTally]:
    """Single-pass volume tally grouped by an arbitrary key function."""
    tallies: dict[K, VolumeTally] = defaultdict(VolumeTally)
    for record in records:
        tallies[key(record)].add(record)
    return dict(tallies)


def tally_by_user(records: Iterable[LogRecord]) -> dict[int, VolumeTally]:
    """Per-user volume tallies (basis of the Fig 7 / Table 3 analyses)."""
    return tally_by(records, lambda r: r.user_id)


def tally_by_hour(
    records: Iterable[LogRecord], bin_seconds: float = 3600.0
) -> dict[int, VolumeTally]:
    """Per-time-bin tallies (basis of the Fig 1 workload analysis)."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    return tally_by(records, lambda r: int(r.timestamp // bin_seconds))


@dataclass
class UserDevices:
    """Which devices (and platforms) a user was seen on."""

    mobile_devices: set[str] = field(default_factory=set)
    pc_devices: set[str] = field(default_factory=set)

    @property
    def uses_pc(self) -> bool:
        return bool(self.pc_devices)

    @property
    def uses_mobile(self) -> bool:
        return bool(self.mobile_devices)

    @property
    def mobile_device_count(self) -> int:
        return len(self.mobile_devices)


def devices_by_user(records: Iterable[LogRecord]) -> dict[int, UserDevices]:
    """Single-pass inventory of the devices each user employed."""
    users: dict[int, UserDevices] = defaultdict(UserDevices)
    for record in records:
        entry = users[record.user_id]
        if record.is_mobile:
            entry.mobile_devices.add(record.device_id)
        else:
            entry.pc_devices.add(record.device_id)
    return dict(users)


def group_by_user(
    records: Iterable[LogRecord],
) -> dict[int, list[LogRecord]]:
    """Group records by user, each group sorted by timestamp.

    This *does* materialize the trace; use it only on traces that fit in
    memory (tests, examples) or after filtering.  The streaming analyses in
    :mod:`repro.core` avoid it where possible.
    """
    groups: dict[int, list[LogRecord]] = defaultdict(list)
    for record in records:
        groups[record.user_id].append(record)
    for group in groups.values():
        group.sort(key=lambda r: r.timestamp)
    return dict(groups)


class RunningStats:
    """Welford single-pass mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError("no values added")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def iter_sorted_runs(
    records: Iterable[LogRecord],
) -> Iterator[list[LogRecord]]:
    """Yield maximal runs of records that share a user, assuming the input
    is already grouped by user (e.g. the output of a generator that emits
    one user at a time).  Each run preserves input order.
    """
    run: list[LogRecord] = []
    for record in records:
        if run and record.user_id != run[-1].user_id:
            yield run
            run = []
        run.append(record)
    if run:
        yield run
