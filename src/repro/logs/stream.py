"""Streaming aggregation over log records.

Analyses over a 350M-record trace cannot materialize per-record state.  The
helpers here do single-pass, bounded-memory aggregation keyed by user, device
or time bin, and are shared by the analysis modules in :mod:`repro.core`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, TypeVar

import numpy as np

from .columnar import STORE_CODE, ColumnarTrace
from .schema import Direction, LogRecord

K = TypeVar("K", bound=Hashable)


@dataclass
class VolumeTally:
    """Running store/retrieve byte and request counters."""

    stored_bytes: int = 0
    retrieved_bytes: int = 0
    store_file_ops: int = 0
    retrieve_file_ops: int = 0
    store_chunks: int = 0
    retrieve_chunks: int = 0

    def add(self, record: LogRecord) -> None:
        """Fold one record into the tally."""
        if record.direction is Direction.STORE:
            if record.is_file_op:
                self.store_file_ops += 1
            else:
                self.store_chunks += 1
                self.stored_bytes += record.volume
        else:
            if record.is_file_op:
                self.retrieve_file_ops += 1
            else:
                self.retrieve_chunks += 1
                self.retrieved_bytes += record.volume

    @property
    def total_bytes(self) -> int:
        return self.stored_bytes + self.retrieved_bytes

    @property
    def total_file_ops(self) -> int:
        return self.store_file_ops + self.retrieve_file_ops

    def merge(self, other: "VolumeTally") -> None:
        """Fold another tally into this one."""
        self.stored_bytes += other.stored_bytes
        self.retrieved_bytes += other.retrieved_bytes
        self.store_file_ops += other.store_file_ops
        self.retrieve_file_ops += other.retrieve_file_ops
        self.store_chunks += other.store_chunks
        self.retrieve_chunks += other.retrieve_chunks

    def store_retrieve_ratio(self, epsilon: float = 1.0) -> float:
        """Ratio of stored to retrieved volume, as used for Fig 7.

        ``epsilon`` (bytes) keeps the ratio finite when one side is zero;
        with the paper's classification thresholds of 1e±5 the exact value
        of epsilon is immaterial for users with any meaningful volume.
        """
        return (self.stored_bytes + epsilon) / (self.retrieved_bytes + epsilon)


def tally_by(
    records: Iterable[LogRecord], key: Callable[[LogRecord], K]
) -> dict[K, VolumeTally]:
    """Single-pass volume tally grouped by an arbitrary key function."""
    tallies: dict[K, VolumeTally] = defaultdict(VolumeTally)
    for record in records:
        tallies[key(record)].add(record)
    return dict(tallies)


def tally_by_user(records: Iterable[LogRecord]) -> dict[int, VolumeTally]:
    """Per-user volume tallies (basis of the Fig 7 / Table 3 analyses)."""
    return tally_by(records, lambda r: r.user_id)


def tally_by_hour(
    records: Iterable[LogRecord], bin_seconds: float = 3600.0
) -> dict[int, VolumeTally]:
    """Per-time-bin tallies (basis of the Fig 1 workload analysis)."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    return tally_by(records, lambda r: int(r.timestamp // bin_seconds))


# ----------------------------------------------------------------------
# Columnar (vectorized) tallies
# ----------------------------------------------------------------------


def _tally_columns(
    trace: ColumnarTrace, group: np.ndarray, n_groups: int
) -> list[VolumeTally]:
    """Per-group :class:`VolumeTally` values from one columnar pass.

    ``group`` assigns every row a group index in ``[0, n_groups)``.  Counts
    come from :func:`np.bincount` over masked group indices; byte sums use
    ``np.add.at`` into int64 accumulators so they stay exact however large
    the trace.  Produces tallies identical to folding every row through
    :meth:`VolumeTally.add`.
    """
    is_store = trace.direction == STORE_CODE
    is_op = trace.file_op_mask
    masks = {
        "store_file_ops": is_store & is_op,
        "retrieve_file_ops": ~is_store & is_op,
        "store_chunks": is_store & ~is_op,
        "retrieve_chunks": ~is_store & ~is_op,
    }
    counts = {
        name: np.bincount(group[mask], minlength=n_groups)
        for name, mask in masks.items()
    }
    stored = np.zeros(n_groups, dtype=np.int64)
    retrieved = np.zeros(n_groups, dtype=np.int64)
    np.add.at(stored, group[masks["store_chunks"]],
              trace.volume[masks["store_chunks"]])
    np.add.at(retrieved, group[masks["retrieve_chunks"]],
              trace.volume[masks["retrieve_chunks"]])
    return [
        VolumeTally(
            stored_bytes=int(stored[g]),
            retrieved_bytes=int(retrieved[g]),
            store_file_ops=int(counts["store_file_ops"][g]),
            retrieve_file_ops=int(counts["retrieve_file_ops"][g]),
            store_chunks=int(counts["store_chunks"][g]),
            retrieve_chunks=int(counts["retrieve_chunks"][g]),
        )
        for g in range(n_groups)
    ]


def tally_by_user_columnar(trace: ColumnarTrace) -> dict[int, VolumeTally]:
    """Vectorized :func:`tally_by_user` over a columnar trace.

    Returns the same per-user tally values; keys iterate in ascending
    ``user_id`` order (the record path iterates in first-appearance order —
    the mapping is identical, only dict order differs).
    """
    if not len(trace):
        return {}
    users, group = np.unique(trace.user_id, return_inverse=True)
    tallies = _tally_columns(trace, group, len(users))
    return {int(user): tally for user, tally in zip(users, tallies)}


def tally_by_hour_columnar(
    trace: ColumnarTrace, bin_seconds: float = 3600.0
) -> dict[int, VolumeTally]:
    """Vectorized :func:`tally_by_hour` over a columnar trace."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if not len(trace):
        return {}
    # Same binning arithmetic as the record path: float floor-division,
    # then int truncation.
    bins = (trace.timestamp // bin_seconds).astype(np.int64)
    uniq, group = np.unique(bins, return_inverse=True)
    tallies = _tally_columns(trace, group, len(uniq))
    return {int(b): tally for b, tally in zip(uniq, tallies)}


@dataclass
class UserDevices:
    """Which devices (and platforms) a user was seen on."""

    mobile_devices: set[str] = field(default_factory=set)
    pc_devices: set[str] = field(default_factory=set)

    @property
    def uses_pc(self) -> bool:
        return bool(self.pc_devices)

    @property
    def uses_mobile(self) -> bool:
        return bool(self.mobile_devices)

    @property
    def mobile_device_count(self) -> int:
        return len(self.mobile_devices)


def devices_by_user(records: Iterable[LogRecord]) -> dict[int, UserDevices]:
    """Single-pass inventory of the devices each user employed."""
    users: dict[int, UserDevices] = defaultdict(UserDevices)
    for record in records:
        entry = users[record.user_id]
        if record.is_mobile:
            entry.mobile_devices.add(record.device_id)
        else:
            entry.pc_devices.add(record.device_id)
    return dict(users)


def devices_by_user_columnar(trace: ColumnarTrace) -> dict[int, UserDevices]:
    """Vectorized :func:`devices_by_user` over a columnar trace.

    Deduplicates ``(user, device)`` pairs with one :func:`np.unique` over a
    packed key, then walks only the unique pairs (a few per user) instead
    of every record.  Keys iterate in ascending ``user_id`` order.
    """
    if not len(trace):
        return {}
    pool_size = max(1, len(trace.device_pool))
    mobile = trace.mobile_mask.astype(np.int64)
    if np.any(trace.user_id < 0) or trace.user_id.max() >= (1 << 62) // (
        2 * pool_size
    ):
        # A packed key would overflow int64; unique over the raw triples.
        triples = np.unique(
            np.stack([trace.user_id, trace.device_code, mobile], axis=1),
            axis=0,
        )
        unique_users = triples[:, 0]
        unique_codes = triples[:, 1]
        flags = triples[:, 2].astype(bool).tolist()
    else:
        packed = (trace.user_id * pool_size + trace.device_code) * 2 + mobile
        uniq = np.unique(packed)
        flags = (uniq & 1).astype(bool).tolist()
        rest = uniq >> 1
        unique_users = rest // pool_size
        unique_codes = rest % pool_size
    users: dict[int, UserDevices] = {}
    pool = trace.device_pool
    for uid, code, is_mobile in zip(
        unique_users.tolist(), unique_codes.tolist(), flags
    ):
        entry = users.setdefault(int(uid), UserDevices())
        if is_mobile:
            entry.mobile_devices.add(pool[code])
        else:
            entry.pc_devices.add(pool[code])
    return users


def group_by_user(
    records: Iterable[LogRecord],
) -> dict[int, list[LogRecord]]:
    """Group records by user, each group sorted by timestamp.

    This *does* materialize the trace; use it only on traces that fit in
    memory (tests, examples) or after filtering.  The streaming analyses in
    :mod:`repro.core` avoid it where possible.
    """
    groups: dict[int, list[LogRecord]] = defaultdict(list)
    for record in records:
        groups[record.user_id].append(record)
    for group in groups.values():
        group.sort(key=lambda r: r.timestamp)
    return dict(groups)


class RunningStats:
    """Welford single-pass mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError("no values added")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def iter_sorted_runs(
    records: Iterable[LogRecord],
) -> Iterator[list[LogRecord]]:
    """Yield maximal runs of records that share a user, assuming the input
    is already grouped by user (e.g. the output of a generator that emits
    one user at a time).  Each run preserves input order.
    """
    run: list[LogRecord] = []
    for record in records:
        if run and record.user_id != run[-1].user_id:
            yield run
            run = []
        run.append(record)
    if run:
        yield run
