"""One-pass descriptive summary of a trace.

The numbers the paper's Section 2.2 reports about its dataset — record,
user and device counts, platform split, direction volumes, time span —
computed in a single streaming pass.  Used by the CLI and by the D1
experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from .schema import DeviceType, Direction, LogRecord


@dataclass
class TraceSummary:
    """Aggregate statistics of one log stream."""

    n_records: int = 0
    n_file_ops: int = 0
    n_chunks: int = 0
    n_proxied: int = 0
    stored_bytes: int = 0
    retrieved_bytes: int = 0
    first_timestamp: float = math.inf
    last_timestamp: float = -math.inf
    users: set[int] = field(default_factory=set)
    devices: set[str] = field(default_factory=set)
    records_by_platform: dict[DeviceType, int] = field(default_factory=dict)
    _mobile_users: set[int] = field(default_factory=set)
    _pc_users: set[int] = field(default_factory=set)

    def add(self, record: LogRecord) -> None:
        """Fold one record into the summary."""
        self.n_records += 1
        if record.is_file_op:
            self.n_file_ops += 1
        else:
            self.n_chunks += 1
            if record.direction is Direction.STORE:
                self.stored_bytes += record.volume
            else:
                self.retrieved_bytes += record.volume
        if record.proxied:
            self.n_proxied += 1
        self.first_timestamp = min(self.first_timestamp, record.timestamp)
        self.last_timestamp = max(self.last_timestamp, record.timestamp)
        self.users.add(record.user_id)
        self.devices.add(record.device_id)
        self.records_by_platform[record.device_type] = (
            self.records_by_platform.get(record.device_type, 0) + 1
        )
        if record.is_mobile:
            self._mobile_users.add(record.user_id)
        else:
            self._pc_users.add(record.user_id)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def span_seconds(self) -> float:
        if self.n_records == 0:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def span_days(self) -> float:
        return self.span_seconds / 86_400.0

    @property
    def total_bytes(self) -> int:
        return self.stored_bytes + self.retrieved_bytes

    @property
    def android_record_share(self) -> float:
        """Android share of *mobile* records (the paper's 78.4%)."""
        android = self.records_by_platform.get(DeviceType.ANDROID, 0)
        ios = self.records_by_platform.get(DeviceType.IOS, 0)
        if android + ios == 0:
            return 0.0
        return android / (android + ios)

    @property
    def pc_co_use_share(self) -> float:
        """Share of mobile users also seen on a PC client (paper: 14.3%)."""
        if not self._mobile_users:
            return 0.0
        both = self._mobile_users & self._pc_users
        return len(both) / len(self._mobile_users)

    @property
    def devices_per_user(self) -> float:
        if not self.users:
            return 0.0
        return self.n_devices / self.n_users

    def render(self) -> str:
        """Human-readable multi-line report."""
        gb = 1024.0**3
        lines = [
            f"records          : {self.n_records:,} "
            f"({self.n_file_ops:,} file ops, {self.n_chunks:,} chunks)",
            f"users / devices  : {self.n_users:,} / {self.n_devices:,} "
            f"({self.devices_per_user:.2f} devices/user)",
            f"observation span : {self.span_days:.1f} days",
            f"stored           : {self.stored_bytes / gb:.2f} GB",
            f"retrieved        : {self.retrieved_bytes / gb:.2f} GB",
            f"android share    : {self.android_record_share:.1%} of mobile records",
            f"PC co-use        : {self.pc_co_use_share:.1%} of mobile users",
            f"proxied requests : {self.n_proxied / max(1, self.n_records):.1%}",
        ]
        return "\n".join(lines)


def summarize(records: Iterable[LogRecord]) -> TraceSummary:
    """Build a :class:`TraceSummary` in one streaming pass."""
    summary = TraceSummary()
    for record in records:
        summary.add(record)
    return summary
