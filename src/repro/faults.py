"""Deterministic fault injection and failure recovery for the service layer.

The paper's Table 1 log schema carries a per-request *result* field: real
front-end logs record failed and retried requests next to successful ones,
and the retransmission-driven idle gaps the paper diagnoses in its TCP
section are exactly the silences a retrying client produces.  This module
supplies the failure side of the service simulator:

* :class:`FaultConfig` / :class:`FaultPlan` — a seeded schedule of
  front-end crash/restart windows, slow-server episodes (latency
  multipliers), metadata-server outages and per-request transient error
  probabilities.  All randomness is drawn from per-component streams
  spawned off one master :class:`numpy.random.SeedSequence` (the same
  idiom :mod:`repro.workload.parallel` uses for per-user streams), so a
  plan is byte-for-byte reproducible from ``(config, n_frontends, seed)``
  and one component's draws never perturb another's.
* :class:`ZoneConfig` — the *correlation* knobs (all off by default):
  front-ends grouped into seeded failure zones whose crash windows come
  from one shared zone-level Poisson process (real incidents take a rack
  or zone down at once, not one server), metadata outages that raise
  effective front-end load during and shortly after each outage window,
  and retry-storm feedback — shed/unavailable outcomes raise a
  deterministic per-front-end pressure counter that increases shed
  probability until the retries drain, so a burst of failovers can
  cascade across the fleet.
* :class:`RetryPolicy` — the client-side recovery policy: capped
  exponential backoff with deterministic jitter, a per-operation timeout,
  a bounded attempt budget and front-end failover.
* :class:`RequestOutcome` — the typed result every front-end handler
  returns instead of unconditional success.
* :class:`FaultStats` — counters for injected faults and recovery actions,
  aggregated by :class:`~repro.service.cluster.ServiceCluster`.

With no plan (or a disabled one) the service layer takes the exact same
code path it always did: zero extra RNG draws, zero clock perturbation,
record-identical access logs.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, fields, replace

import numpy as np

from .logs.schema import ResultCode


class FaultKind(enum.Enum):
    """The fault classes a :class:`FaultPlan` can schedule."""

    CRASH = "crash"
    ZONE_CRASH = "zone_crash"
    TRANSIENT_ERROR = "transient_error"
    SLOW_EPISODE = "slow_episode"
    METADATA_OUTAGE = "metadata_outage"
    OVERLOAD = "overload"
    PRESSURE_SHED = "pressure_shed"


class MetadataUnavailableError(RuntimeError):
    """Raised by the metadata server during a scheduled outage window."""


@dataclass(frozen=True)
class Window:
    """One half-open downtime/slowdown interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window must not end before it starts")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ZoneConfig:
    """Correlation knobs: failure zones, overload coupling, retry storms.

    The default instance is fully benign (``enabled == False``); a
    :class:`FaultConfig` carrying it (or ``zones=None``) reproduces the
    independent per-component fault model exactly — same seed-stream
    layout, same schedules, byte-identical access logs.

    Attributes
    ----------
    n_zones:
        Number of failure zones the front-end fleet is partitioned into
        (0 disables zone grouping).  Assignment is a seeded permutation
        dealt round-robin, so it is a pure function of the plan seed.
    zone_crash_rate:
        Zone-level crash events per zone-hour.  Every front-end in the
        zone is down for the whole window — shared-fate outages on top of
        the per-server residual ``crash_rate``.
    zone_mean_downtime:
        Mean seconds a zone-level crash window lasts.
    overload_factor:
        Fraction of each front-end's capacity consumed by phantom retry
        load while the metadata server is down (clients that cannot reach
        metadata hammer the data path).  Decays linearly to zero over
        ``overload_recovery`` seconds after the outage lifts.
    overload_recovery:
        Seconds the post-outage overload takes to drain.
    pressure_per_failure:
        Retry-storm feedback: pressure added to a front-end's counter on
        every shed/unavailable outcome it serves (0 disables feedback).
    pressure_drain_rate:
        Pressure units drained per second of quiet time.
    pressure_shed_scale:
        Half-saturation constant: at pressure ``P`` the extra shed
        probability is ``P / (P + pressure_shed_scale)``.
    """

    n_zones: int = 0
    zone_crash_rate: float = 0.0
    zone_mean_downtime: float = 60.0
    overload_factor: float = 0.0
    overload_recovery: float = 60.0
    pressure_per_failure: float = 0.0
    pressure_drain_rate: float = 0.5
    pressure_shed_scale: float = 8.0

    def __post_init__(self) -> None:
        if self.n_zones < 0:
            raise ValueError("n_zones must be >= 0")
        if self.zone_crash_rate < 0:
            raise ValueError("zone_crash_rate must be >= 0")
        if self.zone_crash_rate > 0 and self.n_zones < 1:
            raise ValueError("zone_crash_rate needs n_zones >= 1")
        if self.zone_mean_downtime <= 0:
            raise ValueError("zone_mean_downtime must be positive")
        if not 0.0 <= self.overload_factor <= 1.0:
            raise ValueError("overload_factor must be in [0, 1]")
        if self.overload_recovery < 0:
            raise ValueError("overload_recovery must be >= 0")
        if self.pressure_per_failure < 0:
            raise ValueError("pressure_per_failure must be >= 0")
        if self.pressure_drain_rate <= 0:
            raise ValueError("pressure_drain_rate must be positive")
        if self.pressure_shed_scale <= 0:
            raise ValueError("pressure_shed_scale must be positive")

    @property
    def enabled(self) -> bool:
        """Whether any correlation mechanism is armed."""
        return (
            (self.n_zones > 0 and self.zone_crash_rate > 0)
            or self.overload_factor > 0
            or self.pressure_per_failure > 0
        )


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault model.  All rates are per *hour* of sim time.

    The default instance is fully benign (every rate zero); a plan built
    from it reports ``enabled == False`` and the service layer skips all
    fault bookkeeping.  :meth:`at_rate` scales the whole model with one
    severity knob — the x-axis of experiment R2.
    """

    #: Probability that any single front-end request fails transiently.
    error_rate: float = 0.0
    #: Front-end crashes per server-hour.
    crash_rate: float = 0.0
    #: Mean seconds a crashed front-end stays down before restarting.
    crash_mean_downtime: float = 30.0
    #: Slow-server episodes per server-hour.
    slow_rate: float = 0.0
    #: Mean seconds a slow episode lasts.
    slow_mean_duration: float = 120.0
    #: Latency multiplier applied to ``Tsrv`` and transfer time while slow.
    slow_multiplier: float = 4.0
    #: Metadata-server outages per hour.
    metadata_outage_rate: float = 0.0
    #: Mean seconds a metadata outage lasts.
    metadata_mean_downtime: float = 20.0
    #: Seconds of sim time the schedules cover.  Queries beyond the
    #: horizon are benign (no crash/slow/outage windows are planned there).
    horizon: float = 7 * 24 * 3600.0
    #: Optional correlation layer (failure zones, overload coupling,
    #: retry-storm feedback).  ``None`` — or a benign :class:`ZoneConfig`
    #: — reproduces the independent model exactly.
    zones: ZoneConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        for name in (
            "crash_rate",
            "crash_mean_downtime",
            "slow_rate",
            "slow_mean_duration",
            "metadata_outage_rate",
            "metadata_mean_downtime",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.slow_multiplier < 1.0:
            raise ValueError("slow_multiplier must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    @property
    def enabled(self) -> bool:
        """Whether this config can produce any fault at all."""
        return (
            self.error_rate > 0
            or self.crash_rate > 0
            or self.slow_rate > 0
            or self.metadata_outage_rate > 0
            or self.correlated
        )

    @property
    def correlated(self) -> bool:
        """Whether the correlation layer (zones/overload/pressure) is armed."""
        return self.zones is not None and self.zones.enabled

    @classmethod
    def at_rate(
        cls,
        rate: float,
        *,
        horizon: float = 7 * 24 * 3600.0,
        zones: ZoneConfig | None = None,
    ) -> "FaultConfig":
        """One-knob severity scaling used by experiments R2/R3 and the CLI.

        ``rate`` is the per-request transient error probability; crash,
        slow-episode and metadata-outage frequencies scale linearly with
        it (calibrated so ``rate=0.05`` yields a few crash and outage
        windows per server-day).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(
                "rate must be in [0, 1) — it is the per-request transient "
                f"error probability, got {rate!r}"
            )
        return cls(
            error_rate=rate,
            crash_rate=rate * 2.0,
            slow_rate=rate * 4.0,
            metadata_outage_rate=rate * 1.0,
            horizon=horizon,
            zones=zones,
        )


@dataclass
class FaultStats:
    """Counters for injected faults and the recovery actions they forced.

    ``crash_rejections`` and ``shed_requests`` are umbrella counters —
    every rejection/shed counts there exactly once.  The correlation-layer
    counters below them attribute subsets: ``zone_crash_rejections`` are
    the crash rejections caused by a shared zone-level window,
    ``overload_sheds`` the sheds where metadata-outage overload (not the
    real in-flight queue) pushed the front-end over capacity, and
    ``pressure_sheds`` the sheds triggered by retry-storm pressure.  They
    are *not* added again by :attr:`total_faults`.

    The metadata-tier counters follow the same pattern under the
    ``metadata_rejections`` umbrella: ``shard_rejections`` are the
    rejections issued by a sharded tier (equal to the umbrella when the
    tier is armed — the single-server path never touches it), and the
    read-path attribution counters count successful reads a replica
    served (``replica_reads``), the subset served by a replica *because*
    the primary was down (``failover_reads``), and quorum reads where an
    up-but-catching-up replica was skipped (``stale_reads_avoided``).
    """

    injected_errors: int = 0
    crash_rejections: int = 0
    shed_requests: int = 0
    timeouts: int = 0
    metadata_rejections: int = 0
    retries: int = 0
    failovers: int = 0
    backoff_seconds: float = 0.0
    aborted_transfers: int = 0
    completed_transfers: int = 0
    zone_crash_rejections: int = 0
    overload_sheds: int = 0
    pressure_sheds: int = 0
    shard_rejections: int = 0
    replica_reads: int = 0
    stale_reads_avoided: int = 0
    failover_reads: int = 0

    @property
    def total_faults(self) -> int:
        return (
            self.injected_errors
            + self.crash_rejections
            + self.shed_requests
            + self.timeouts
            + self.metadata_rejections
        )

    def merge(self, other: "FaultStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "FaultStats":
        """An independent snapshot of the current counters."""
        return FaultStats(**self.as_dict())

    def delta(self, since: "FaultStats") -> "FaultStats":
        """Counters accrued since the ``since`` snapshot.

        The autoscaling loop shares one plan (one ledger) across many
        windows; each window's books are ``plan.stats.delta(snapshot)``
        against a :meth:`copy` taken at the window boundary, and those
        deltas reconcile exactly against that window's telemetry.
        """
        return FaultStats(**{
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in fields(self)
        })

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _poisson_windows(
    rng: np.random.Generator, rate_per_hour: float, mean_duration: float, horizon: float
) -> tuple[Window, ...]:
    """Sample non-overlapping outage windows from a Poisson arrival process.

    Arrivals with exponential interarrival times at ``rate_per_hour``;
    each window lasts an exponential ``mean_duration``.  A window opening
    inside the previous one is pushed back to its end, preserving the
    half-open, sorted, disjoint invariant binary search relies on.  Every
    emitted window satisfies ``start < end <= horizon``: a pushback that
    lands at (or beyond) the horizon ends the schedule instead of
    appending a degenerate zero-length window.
    """
    if rate_per_hour <= 0 or mean_duration <= 0:
        return ()
    windows: list[Window] = []
    t = float(rng.exponential(3600.0 / rate_per_hour))
    while t < horizon:
        if windows and t < windows[-1].end:
            t = windows[-1].end
            if t >= horizon:
                break
        duration = float(rng.exponential(mean_duration))
        if duration <= 0.0:
            # Degenerate exponential draw: skip rather than emit an
            # empty window (start == end) that contains no instant.
            t += float(rng.exponential(3600.0 / rate_per_hour))
            continue
        windows.append(Window(start=t, end=min(t + duration, horizon)))
        t += duration + float(rng.exponential(3600.0 / rate_per_hour))
    return tuple(windows)


def _in_windows(windows: tuple[Window, ...], starts: tuple[float, ...], t: float) -> Window | None:
    """Return the window containing ``t``, if any (binary search)."""
    index = bisect.bisect_right(starts, t) - 1
    if index >= 0 and windows[index].contains(t):
        return windows[index]
    return None


class FaultPlan:
    """A deterministic, precomputed fault schedule for one deployment.

    Parameters
    ----------
    config:
        The fault model knobs.
    n_frontends:
        Number of front-end servers the plan covers.
    seed:
        Master seed.  Component streams are spawned off
        ``SeedSequence(seed)`` in a fixed order — per-frontend crash,
        slow-episode and transient-error streams, then the metadata
        stream — so adding front-ends never reshuffles existing ones,
        and the same ``(config, n_frontends, seed)`` always yields the
        same schedule and the same per-request error draws.  When the
        correlation layer is armed, *additional* children are spawned
        strictly after the independent block — one zone-assignment
        stream, one crash stream per zone, one pressure stream per
        front-end — so a correlated plan never reshuffles the schedules
        an independent plan would draw from the same seed.
    n_metadata_shards, n_metadata_replicas:
        Sharded metadata tier shape.  At the default ``(1, 0)`` the plan
        keeps the single metadata-server schedule untouched (zero-knob
        identity with the historical model).  Otherwise each shard gets
        a child block spawned *from the metadata SeedSequence stream*
        (``metadata_seq.spawn``), and each shard child spawns one
        sub-child per node (primary + replicas).  Spawning children off
        a SeedSequence never changes the state it generates, so the
        single-server windows — and every other independent schedule —
        are byte-identical whether or not the tier is armed; and because
        shard ``s``/node ``r`` keep their spawn keys as shards or
        replicas are added, growing the tier never reshuffles existing
        node schedules.

    All window schedules (including zone-level and per-node metadata
    ones) are materialized at construction; only the per-request
    transient-error and pressure-shed draws consume RNG state at query
    time (in the deterministic order the single-threaded simulator
    issues requests).
    """

    def __init__(
        self,
        config: FaultConfig,
        *,
        n_frontends: int = 1,
        seed: int = 0,
        n_metadata_shards: int = 1,
        n_metadata_replicas: int = 0,
    ) -> None:
        if n_frontends < 1:
            raise ValueError("need at least one front-end")
        if n_metadata_shards < 1:
            raise ValueError("need at least one metadata shard")
        if n_metadata_replicas < 0:
            raise ValueError("n_metadata_replicas must be >= 0")
        self.config = config
        self.n_frontends = n_frontends
        self.seed = seed
        self.n_metadata_shards = n_metadata_shards
        self.n_metadata_replicas = n_metadata_replicas
        self.stats = FaultStats()
        zones = config.zones if config.correlated else None
        self.zone_config = zones
        n_zones = zones.n_zones if zones is not None else 0
        master = np.random.SeedSequence(seed)
        # 3 streams per front-end + 1 metadata stream, in a fixed order.
        # The correlation layer's streams come strictly after, so the
        # first 3n+1 children — and hence the independent schedules —
        # are identical whether or not correlation is armed.
        n_children = 3 * n_frontends + 1
        if zones is not None:
            n_children += 1 + n_zones + n_frontends
        children = master.spawn(n_children)
        crash_seqs = children[0:n_frontends]
        slow_seqs = children[n_frontends : 2 * n_frontends]
        error_seqs = children[2 * n_frontends : 3 * n_frontends]
        metadata_seq = children[3 * n_frontends]
        self._crash_windows: list[tuple[Window, ...]] = []
        self._slow_windows: list[tuple[Window, ...]] = []
        for fid in range(n_frontends):
            self._crash_windows.append(
                _poisson_windows(
                    np.random.default_rng(crash_seqs[fid]),
                    config.crash_rate,
                    config.crash_mean_downtime,
                    config.horizon,
                )
            )
            self._slow_windows.append(
                _poisson_windows(
                    np.random.default_rng(slow_seqs[fid]),
                    config.slow_rate,
                    config.slow_mean_duration,
                    config.horizon,
                )
            )
        self._metadata_windows = _poisson_windows(
            np.random.default_rng(metadata_seq),
            config.metadata_outage_rate,
            config.metadata_mean_downtime,
            config.horizon,
        )
        self._crash_starts = [
            tuple(w.start for w in ws) for ws in self._crash_windows
        ]
        self._slow_starts = [
            tuple(w.start for w in ws) for ws in self._slow_windows
        ]
        self._metadata_starts = tuple(w.start for w in self._metadata_windows)
        self._error_rngs = [np.random.default_rng(s) for s in error_seqs]
        # ------------------------------------------------------------------
        # Sharded metadata tier: per-node outage schedules.
        # ------------------------------------------------------------------
        self._metatier_windows: tuple[tuple[tuple[Window, ...], ...], ...] = ()
        self._metatier_starts: tuple[tuple[tuple[float, ...], ...], ...] = ()
        if (n_metadata_shards, n_metadata_replicas) != (1, 0):
            # Child blocks spawned *from* the metadata stream: spawning
            # children never perturbs the generator state that
            # ``default_rng(metadata_seq)`` above already drew from, so
            # arming the tier leaves the single-server windows — and every
            # other independent schedule — byte-identical.
            shard_seqs = metadata_seq.spawn(n_metadata_shards)
            tier_windows = []
            for shard in range(n_metadata_shards):
                node_seqs = shard_seqs[shard].spawn(1 + n_metadata_replicas)
                tier_windows.append(
                    tuple(
                        _poisson_windows(
                            np.random.default_rng(node_seqs[node]),
                            config.metadata_outage_rate,
                            config.metadata_mean_downtime,
                            config.horizon,
                        )
                        for node in range(1 + n_metadata_replicas)
                    )
                )
            self._metatier_windows = tuple(tier_windows)
            self._metatier_starts = tuple(
                tuple(tuple(w.start for w in ws) for ws in per_shard)
                for per_shard in self._metatier_windows
            )
        # ------------------------------------------------------------------
        # Correlation layer: zone schedules, assignment, pressure state.
        # ------------------------------------------------------------------
        self._zone_of: tuple[int, ...] = ()
        self._zone_windows: tuple[tuple[Window, ...], ...] = ()
        self._zone_starts: tuple[tuple[float, ...], ...] = ()
        self._pressure_rngs: list[np.random.Generator] = []
        self._pressure = [0.0] * n_frontends
        self._pressure_time = [0.0] * n_frontends
        if zones is not None:
            base = 3 * n_frontends + 1
            assign_seq = children[base]
            zone_seqs = children[base + 1 : base + 1 + n_zones]
            pressure_seqs = children[base + 1 + n_zones :]
            if n_zones > 0:
                # Seeded zone assignment: a permutation of the fleet dealt
                # round-robin, so zones are balanced but membership is a
                # pure function of the plan seed.
                order = np.random.default_rng(assign_seq).permutation(
                    n_frontends
                )
                zone_of = [0] * n_frontends
                for position, fid in enumerate(order.tolist()):
                    zone_of[fid] = position % n_zones
                self._zone_of = tuple(zone_of)
                self._zone_windows = tuple(
                    _poisson_windows(
                        np.random.default_rng(zone_seq),
                        zones.zone_crash_rate,
                        zones.zone_mean_downtime,
                        config.horizon,
                    )
                    for zone_seq in zone_seqs
                )
                self._zone_starts = tuple(
                    tuple(w.start for w in ws) for ws in self._zone_windows
                )
            self._pressure_rngs = [
                np.random.default_rng(s) for s in pressure_seqs
            ]

    # ------------------------------------------------------------------
    # Queries (all deterministic; windows never consume RNG state)
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def correlated(self) -> bool:
        """Whether the correlation layer is armed on this plan."""
        return self.zone_config is not None

    def frontend_down(self, frontend_id: int, t: float) -> bool:
        """Whether ``frontend_id`` is inside a crash window at ``t``.

        Covers both the per-server residual windows and the shared
        zone-level windows of the front-end's failure zone.
        """
        if (
            _in_windows(
                self._crash_windows[frontend_id],
                self._crash_starts[frontend_id],
                t,
            )
            is not None
        ):
            return True
        return self.zone_down(frontend_id, t)

    def downtime_remaining(self, frontend_id: int, t: float) -> float:
        """Seconds until every crash window containing ``t`` ends (0 if up)."""
        remaining = 0.0
        window = _in_windows(
            self._crash_windows[frontend_id], self._crash_starts[frontend_id], t
        )
        if window is not None:
            remaining = window.end - t
        zone = self.zone_of(frontend_id)
        if zone is not None:
            zone_window = _in_windows(
                self._zone_windows[zone], self._zone_starts[zone], t
            )
            if zone_window is not None:
                remaining = max(remaining, zone_window.end - t)
        return remaining

    # -- failure zones --------------------------------------------------

    def zone_of(self, frontend_id: int) -> int | None:
        """The front-end's failure zone, or ``None`` without zone grouping."""
        if not self._zone_of:
            return None
        return self._zone_of[frontend_id]

    def zone_down(self, frontend_id: int, t: float) -> bool:
        """Whether the front-end's *zone* is inside a shared crash window."""
        zone = self.zone_of(frontend_id)
        if zone is None:
            return False
        return (
            _in_windows(self._zone_windows[zone], self._zone_starts[zone], t)
            is not None
        )

    def zone_windows(self, zone: int) -> tuple[Window, ...]:
        """The shared crash windows of one failure zone."""
        return self._zone_windows[zone]

    def effective_crash_windows(self, frontend_id: int) -> tuple[Window, ...]:
        """Union of residual and zone-level crash windows, merged.

        The result is sorted, disjoint and horizon-bounded — the actual
        downtime intervals of the front-end, used by experiment R3 to
        compute concurrent-down fractions.
        """
        combined = list(self._crash_windows[frontend_id])
        zone = self.zone_of(frontend_id)
        if zone is not None:
            combined.extend(self._zone_windows[zone])
        combined.sort(key=lambda w: (w.start, w.end))
        merged: list[Window] = []
        for window in combined:
            if merged and window.start <= merged[-1].end:
                if window.end > merged[-1].end:
                    merged[-1] = Window(merged[-1].start, window.end)
            else:
                merged.append(window)
        return tuple(merged)

    def down_fraction(
        self, start: float, end: float, *, n_frontends: int | None = None
    ) -> float:
        """Time-averaged fraction of the fleet inside crash windows.

        Pure window arithmetic over :meth:`effective_crash_windows`
        (residual and zone-level downtime merged) for the first
        ``n_frontends`` servers — the *active* fleet, when an autoscaler
        runs a prefix of the plan's capacity — over ``[start, end)``.
        This is the concurrent-down pressure signal the fault-aware
        controller compensates for; 0.12 means 12% of fleet-seconds in
        the interval were spent down.
        """
        if end <= start:
            raise ValueError("need end > start")
        n = self.n_frontends if n_frontends is None else n_frontends
        if not 1 <= n <= self.n_frontends:
            raise ValueError(
                f"n_frontends must be in [1, {self.n_frontends}], got {n}"
            )
        down_seconds = 0.0
        for fid in range(n):
            for window in self.effective_crash_windows(fid):
                if window.start >= end:
                    break
                down_seconds += max(
                    0.0, min(window.end, end) - max(window.start, start)
                )
        return down_seconds / (n * (end - start))

    # -- metadata-outage overload coupling ------------------------------

    def overload_level(self, t: float) -> float:
        """Fraction of front-end capacity consumed by phantom retry load.

        1:1 with :attr:`ZoneConfig.overload_factor` while the metadata
        server is down (clients that cannot reach metadata hammer the
        data path with retries), decaying linearly to zero over
        ``overload_recovery`` seconds after the outage lifts.  Pure
        window arithmetic — no RNG state is consumed.
        """
        zones = self.zone_config
        if zones is None or zones.overload_factor <= 0:
            return 0.0
        if self.metatier_armed:
            # With the sharded tier armed, "metadata down" is a per-shard
            # condition: phantom retry load scales with the fraction of
            # shard primaries currently down (a shard whose primary is up
            # answers its users; its replicas' health does not drive
            # data-path retries).  Still pure window arithmetic.
            down = sum(
                1
                for shard in range(self.n_metadata_shards)
                if self.metadata_node_down(shard, 0, t)
            )
            return zones.overload_factor * (down / self.n_metadata_shards)
        if _in_windows(self._metadata_windows, self._metadata_starts, t) is not None:
            return zones.overload_factor
        index = bisect.bisect_right(self._metadata_starts, t) - 1
        if index >= 0 and zones.overload_recovery > 0:
            end = self._metadata_windows[index].end
            if end <= t < end + zones.overload_recovery:
                return zones.overload_factor * (
                    1.0 - (t - end) / zones.overload_recovery
                )
        return 0.0

    # -- retry-storm pressure -------------------------------------------

    def _drain_pressure(self, frontend_id: int, now: float) -> None:
        zones = self.zone_config
        last = self._pressure_time[frontend_id]
        if now > last:
            self._pressure[frontend_id] = max(
                0.0,
                self._pressure[frontend_id]
                - (now - last) * zones.pressure_drain_rate,
            )
            self._pressure_time[frontend_id] = now

    def note_failure_pressure(self, frontend_id: int, now: float) -> None:
        """Record one shed/unavailable outcome on a front-end.

        Raises the front-end's pressure counter by
        ``pressure_per_failure`` (after draining elapsed quiet time), so
        a burst of failovers makes subsequent sheds more likely — the
        retry-storm feedback loop.  No-op when feedback is disabled.
        """
        zones = self.zone_config
        if zones is None or zones.pressure_per_failure <= 0:
            return
        self._drain_pressure(frontend_id, now)
        self._pressure[frontend_id] += zones.pressure_per_failure

    def pressure_level(self, frontend_id: int, now: float) -> float:
        """Current retry-storm pressure on a front-end (0 when disabled)."""
        zones = self.zone_config
        if zones is None or zones.pressure_per_failure <= 0:
            return 0.0
        self._drain_pressure(frontend_id, now)
        return self._pressure[frontend_id]

    def draw_pressure_shed(self, frontend_id: int, now: float) -> bool:
        """One pressure-induced shed decision for a front-end.

        At pressure ``P`` the shed probability is
        ``P / (P + pressure_shed_scale)`` — saturating, so storms raise
        the shed rate sharply but never to certainty.  Draws come from
        the front-end's dedicated pressure stream, so the error-stream
        draw sequence of the independent model is never perturbed.
        """
        zones = self.zone_config
        if zones is None or zones.pressure_per_failure <= 0:
            return False
        self._drain_pressure(frontend_id, now)
        pressure = self._pressure[frontend_id]
        if pressure <= 0.0:
            return False
        probability = pressure / (pressure + zones.pressure_shed_scale)
        return bool(
            self._pressure_rngs[frontend_id].random() < probability
        )

    def latency_multiplier(self, frontend_id: int, t: float) -> float:
        """Slow-episode multiplier on processing/transfer time (1.0 = healthy)."""
        window = _in_windows(
            self._slow_windows[frontend_id], self._slow_starts[frontend_id], t
        )
        return self.config.slow_multiplier if window is not None else 1.0

    def metadata_down(self, t: float) -> bool:
        """Whether the *single* metadata server is inside an outage window.

        Only meaningful for the unsharded model; a sharded tier queries
        :meth:`metadata_node_down` per shard/node instead.
        """
        return _in_windows(self._metadata_windows, self._metadata_starts, t) is not None

    # -- sharded metadata tier ------------------------------------------

    @property
    def metatier_armed(self) -> bool:
        """Whether per-shard/node metadata schedules were materialized."""
        return bool(self._metatier_windows)

    @property
    def n_metadata_nodes(self) -> int:
        """Nodes per shard: one primary plus the replicas."""
        return 1 + self.n_metadata_replicas

    def metadata_node_windows(self, shard: int, node: int) -> tuple[Window, ...]:
        """The outage windows of one shard node (node 0 is the primary)."""
        return self._metatier_windows[shard][node]

    def metadata_node_zone(self, shard: int, node: int) -> int | None:
        """The failure zone a shard node is placed in (zone-spread).

        Nodes of one shard are dealt across zones with a stride of one —
        ``(shard + node) % n_zones`` — so no two nodes of the same shard
        share a zone as long as the replication factor stays below the
        zone count.  ``None`` when zone grouping is off.
        """
        if not self._zone_windows:
            return None
        return (shard + node) % len(self._zone_windows)

    def metadata_node_down(self, shard: int, node: int, t: float) -> bool:
        """Whether a shard node is down at ``t``.

        Covers both the node's own outage windows and the shared crash
        window of the failure zone the node is placed in — a zone event
        takes its metadata nodes down along with its front-ends.
        """
        if (
            _in_windows(
                self._metatier_windows[shard][node],
                self._metatier_starts[shard][node],
                t,
            )
            is not None
        ):
            return True
        zone = self.metadata_node_zone(shard, node)
        if zone is None:
            return False
        return (
            _in_windows(self._zone_windows[zone], self._zone_starts[zone], t)
            is not None
        )

    def metadata_node_stale(self, shard: int, node: int, t: float) -> bool:
        """Whether a shard node is up but still catching up on the log.

        A node that just exited one of its *own* outage windows replays
        the primary's write log for ``metadata_mean_downtime`` seconds
        before it is quorum-fresh; a quorum read skips it during that
        catch-up (counted as ``stale_reads_avoided``).  Zone windows do
        not contribute staleness: a zone event severs the network, it
        does not lose local state.  ``False`` while the node is down.
        """
        if self.metadata_node_down(shard, node, t):
            return False
        starts = self._metatier_starts[shard][node]
        index = bisect.bisect_right(starts, t) - 1
        if index < 0:
            return False
        end = self._metatier_windows[shard][node][index].end
        return end <= t < end + self.config.metadata_mean_downtime

    def draw_transient_error(self, frontend_id: int) -> bool:
        """One per-request transient-error Bernoulli draw.

        Consumes the front-end's dedicated error stream, so the decision
        sequence is a pure function of the plan seed and this front-end's
        request order — other components' draws cannot perturb it.
        """
        if self.config.error_rate <= 0:
            return False
        return bool(self._error_rngs[frontend_id].random() < self.config.error_rate)

    def error_fraction(self, frontend_id: int) -> float:
        """Fraction of the nominal request duration spent before it failed."""
        return float(self._error_rngs[frontend_id].random())

    def crash_windows(self, frontend_id: int) -> tuple[Window, ...]:
        return self._crash_windows[frontend_id]

    def slow_windows(self, frontend_id: int) -> tuple[Window, ...]:
        return self._slow_windows[frontend_id]

    @property
    def metadata_windows(self) -> tuple[Window, ...]:
        return self._metadata_windows


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side failure recovery: bounded retries with capped backoff.

    ``backoff_delay`` grows geometrically from ``base_delay`` and is
    capped at ``max_delay`` before jitter; jitter is a deterministic
    multiplicative perturbation drawn from the caller's RNG stream in
    ``[1 - jitter, 1 + jitter]``, so the delay never exceeds
    ``max_delay * (1 + jitter)`` (the bound the Hypothesis property in
    ``tests/test_faults.py`` enforces).
    """

    #: Total attempts per request, including the first (>= 1).
    max_attempts: int = 5
    #: First retry delay, seconds.
    base_delay: float = 0.2
    #: Cap on the pre-jitter delay, seconds.
    max_delay: float = 5.0
    #: Geometric growth factor between consecutive delays.
    multiplier: float = 2.0
    #: Jitter half-width as a fraction of the delay (0 disables jitter).
    jitter: float = 0.1
    #: Client-side per-operation timeout, seconds; a request whose
    #: (possibly slow-episode-inflated) duration exceeds it is abandoned
    #: and logged as :attr:`ResultCode.TIMEOUT`.
    request_timeout: float = 60.0
    #: Whether retries may rotate to an alternate front-end after an
    #: UNAVAILABLE/SHED outcome (content is replicated across the fleet;
    #: the metadata assignment is the *preferred* server, not the only one).
    failover: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")

    def nominal_delay(self, failure_index: int) -> float:
        """Pre-jitter delay after the ``failure_index``-th failure (1-based)."""
        if failure_index < 1:
            raise ValueError("failure_index is 1-based")
        return min(
            self.base_delay * self.multiplier ** (failure_index - 1),
            self.max_delay,
        )

    def backoff_delay(self, failure_index: int, rng: np.random.Generator) -> float:
        """Jittered delay to wait before retry number ``failure_index``."""
        delay = self.nominal_delay(failure_index)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    @property
    def max_backoff(self) -> float:
        """Upper bound on any single jittered delay."""
        return self.max_delay * (1.0 + self.jitter)


@dataclass(frozen=True)
class RequestOutcome:
    """Typed result of one front-end request attempt.

    ``elapsed`` is the client-perceived duration of the attempt —
    ``tchunk`` on success, the partial time spent before the failure
    otherwise — and is what advances the client clock.
    """

    result: ResultCode
    elapsed: float
    tchunk: float = 0.0
    tsrv: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result.is_ok

    @property
    def retryable(self) -> bool:
        """Every non-OK outcome in the current model is retryable."""
        return not self.ok

    @property
    def wants_failover(self) -> bool:
        """Whether retrying on a different front-end could help."""
        return self.result in (ResultCode.UNAVAILABLE, ResultCode.SHED)


def scaled_config(config: FaultConfig, scale: float) -> FaultConfig:
    """Scale every rate in ``config`` by ``scale`` (durations unchanged).

    ``error_rate`` is a *probability*, not a frequency, so it is capped at
    0.999 to stay inside the ``[0, 1)`` domain ``FaultConfig`` enforces —
    scaling an already-severe config cannot push it past certain failure.
    The window frequencies (``crash_rate``, ``slow_rate``,
    ``metadata_outage_rate``, ``zone_crash_rate``) are true rates and
    scale without a cap.
    """
    if scale < 0:
        raise ValueError("scale must be >= 0")
    zones = config.zones
    if zones is not None and zones.zone_crash_rate > 0:
        zones = replace(zones, zone_crash_rate=zones.zone_crash_rate * scale)
    return replace(
        config,
        error_rate=min(config.error_rate * scale, 0.999),
        crash_rate=config.crash_rate * scale,
        slow_rate=config.slow_rate * scale,
        metadata_outage_rate=config.metadata_outage_rate * scale,
        zones=zones,
    )


__all__ = [
    "FaultConfig",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
    "MetadataUnavailableError",
    "RequestOutcome",
    "RetryPolicy",
    "Window",
    "ZoneConfig",
    "scaled_config",
]
