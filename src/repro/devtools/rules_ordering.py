"""Rule D4 — unordered ``set`` iteration feeding digests, logs or TSV.

``set`` (and ``frozenset``) iteration order depends on insertion history
*and* on ``PYTHONHASHSEED`` for str/bytes elements — two runs of the same
program can walk the same set in different orders.  That is harmless for
membership tests and aggregations (``sum``, ``len``, ``any``), but the
moment set iteration feeds an *order-sensitive* consumer — a blake2b
digest, a ``.write()``/``writerow()`` output stream, a printed report —
the artifact stops being a pure function of the seed.  This repository's
digests are its determinism proof, so that bug class gets its own rule.

Flagged shapes (``S`` is a set literal, ``set()``/``frozenset()`` call, a
set comprehension, a name bound to one, or a union/intersection of sets):

* ``for x in S:`` whose body writes (``.write``/``.writelines``/
  ``.writerow``/``.writerows``), prints, or updates a hashlib digest;
* ``sep.join(S)`` and ``sep.join(f(x) for x in S)``;
* passing ``S`` (or a comprehension over ``S``) directly to ``print``, a
  write method, or a digest ``.update``.

``sorted(S)`` neutralizes structurally: it returns a list, so the
expression is no longer set-typed.  A name assigned both a set and a
non-set value anywhere in the file is treated as unknown (never flagged)
— the whole-file binding environment is deliberately conservative.
"""

from __future__ import annotations

import ast

from .astutil import dotted_name, import_aliases
from .registry import file_rule
from .source import SourceFile

#: Methods whose call on a set-typed receiver returns another set.
_SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}

#: Binary operators closed over sets.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Write-like method names: file/TSV/CSV emission.
_WRITE_METHODS = {"write", "writelines", "writerow", "writerows"}

#: hashlib constructors whose results are digest objects.
_DIGEST_CONSTRUCTORS = {
    "blake2b", "blake2s", "md5", "sha1", "sha224", "sha256", "sha384",
    "sha512", "sha3_256", "sha3_512", "shake_128", "shake_256", "new",
}


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _collect_env(tree: ast.Module, aliases: dict[str, str]):
    """Whole-file binding environment: set-typed and digest-typed names.

    Names with conflicting bindings (set in one branch, list in another)
    are dropped from the set environment — unknown beats a false alarm.
    """
    set_names: set[str] = set()
    other_names: set[str] = set()
    digest_names: set[str] = set()

    def is_digest_call(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = dotted_name(value.func, aliases) or ""
        return (
            dotted.rsplit(".", 1)[-1] in _DIGEST_CONSTRUCTORS
            and ("hashlib" in dotted or dotted in _DIGEST_CONSTRUCTORS)
        )

    for _ in range(2):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not targets:
                continue
            if _set_expr(node.value, set_names):
                set_names.update(targets)
            elif is_digest_call(node.value):
                digest_names.update(targets)
            else:
                other_names.update(targets)
    return set_names - other_names, digest_names


def _set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Whether an expression is statically set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and name in _SET_RETURNING_METHODS
        ):
            return _set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _set_expr(node.left, set_names) or _set_expr(node.right, set_names)
    return False


def _comp_over_set(node: ast.expr, set_names: set[str]) -> bool:
    """A comprehension/generator whose outer iterable is a set."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return _set_expr(node.generators[0].iter, set_names)
    return False


def _is_output_call(call: ast.Call, digest_names: set[str]) -> str | None:
    """Classify a call as an order-sensitive consumer, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "print":
        return "printed output"
    if isinstance(func, ast.Attribute):
        if func.attr in _WRITE_METHODS:
            return "written output"
        if (
            func.attr == "update"
            and isinstance(func.value, ast.Name)
            and func.value.id in digest_names
        ):
            return "a digest"
    return None


@file_rule(
    "D4",
    title="no unordered set iteration into digests or output",
)
def check_set_iteration_order(src: SourceFile):
    aliases = import_aliases(src.tree)
    set_names, digest_names = _collect_env(src.tree, aliases)

    for node in ast.walk(src.tree):
        # for x in S: ... <write/print/digest.update> ...
        if isinstance(node, (ast.For, ast.AsyncFor)) and _set_expr(
            node.iter, set_names
        ):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    consumer = _is_output_call(sub, digest_names)
                    if consumer is not None:
                        yield (
                            node.iter.lineno,
                            node.iter.col_offset,
                            "iteration over an unordered set feeds "
                            f"{consumer}; iterate over sorted(...) instead "
                            "(set order varies with PYTHONHASHSEED)",
                        )
                        break
            continue
        if not isinstance(node, ast.Call):
            continue
        # sep.join(S) / sep.join(f(x) for x in S)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            arg = node.args[0]
            if _set_expr(arg, set_names) or _comp_over_set(arg, set_names):
                yield (
                    arg.lineno,
                    arg.col_offset,
                    "join over an unordered set feeds order-sensitive "
                    "output; join over sorted(...) instead (set order "
                    "varies with PYTHONHASHSEED)",
                )
            continue
        # print(S) / out.write(...S...) / digest.update(S)
        consumer = _is_output_call(node, digest_names)
        if consumer is None:
            continue
        for arg in node.args:
            if _set_expr(arg, set_names) or _comp_over_set(arg, set_names):
                yield (
                    arg.lineno,
                    arg.col_offset,
                    f"unordered set passed to {consumer}; wrap it in "
                    "sorted(...) (set order varies with PYTHONHASHSEED)",
                )
