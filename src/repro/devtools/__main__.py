"""``python -m repro.devtools`` — run reprolint without the full CLI.

Mirrors ``repro lint``; useful in CI images that only have the lint
dependencies installed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import lint_command


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="reprolint: determinism & schema-invariant static analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable findings")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON findings file whose entries are ignored")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule subset (e.g. D2,M1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental summary cache")
    parser.add_argument("--cache-file", metavar="FILE",
                        default=".reprolint_cache.json",
                        help="summary cache location "
                             "(default: .reprolint_cache.json)")
    args = parser.parse_args(argv)
    return lint_command(
        args.paths,
        json_out=args.json,
        baseline=args.baseline,
        rules=args.rules,
        cache_file=None if args.no_cache else args.cache_file,
    )


if __name__ == "__main__":
    sys.exit(main())
