"""Rule W1 — no mutable default arguments.

A ``def f(acc=[])`` default is evaluated once at definition time and
shared across every call — state leaks between invocations, and in this
repository's replay harness that means a second replay can observe the
first one's leftovers, breaking run-to-run equivalence even with perfect
seeding.  The fix is the stdlib idiom: default to ``None`` and construct
inside the body (or use ``dataclasses.field(default_factory=...)``,
which this rule deliberately does not flag).

Severity is *warning* like F1: the default may happen never to be
mutated today, but the risk is structural.
"""

from __future__ import annotations

import ast

from .findings import Severity
from .registry import file_rule
from .source import SourceFile

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)

_MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray"}


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_BUILTINS
    )


@file_rule(
    "W1",
    title="no mutable default arguments",
    severity=Severity.WARNING,
)
def check_mutable_defaults(src: SourceFile):
    for node in ast.walk(src.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and _mutable_default(default):
                yield (
                    default.lineno,
                    default.col_offset,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the body",
                )
