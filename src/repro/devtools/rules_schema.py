"""Rules S1/S2 — cross-file schema drift.

**S1** ties the Table 1 record layout's three declarations together:

* ``logs/schema.py`` — the :class:`LogRecord` dataclass field order (the
  in-memory truth);
* ``logs/io.py`` — ``TSV_COLUMNS``, the on-disk TSV column order;
* ``logs/columnar.py`` — ``COLUMNS``, the struct-of-arrays / NPZ layout
  (``device_code`` standing in for the pooled ``device_id`` strings).

Runtime guards (the NPZ ``SCHEMA_VERSION`` check) catch *stale artifacts*;
this rule catches the *source drifting* — a column added to one
declaration and not the others, or a silent reorder that would shear every
existing trace.  The layouts are compared straight from the per-file
facts (extracted from the ASTs, no imports), so the check works on
mutated fixture copies.  Files that declare none of the three markers are
ignored; candidates are grouped by directory so fixture trios under
``tests/data/lint`` are checked against each other, never against
``src/repro/logs``.

**S2** does the same for the telemetry/fault-ledger pair: every counter
:meth:`~repro.service.telemetry.TelemetryCollector.reconcile` reads off a
``FaultStats``-annotated parameter must be a real ``FaultStats`` member;
every metadata-tier counter ``FaultStats`` grows (``shard_*``,
``replica_*``, ``stale_*``, ``*_reads``) must appear in
``DEFAULT_METADATA_AVAILABILITY`` so snapshots carry it; and every
``meta["..."]`` key the telemetry module reads must exist in that default
shape.  A counter added to the ledger but absent from the snapshot schema
— the drift the TELEMETRY_SCHEMA_VERSION v2 migration nearly shipped —
fails at review time, exactly like S1's TSV reorder.
"""

from __future__ import annotations

import re
from typing import Iterator

from .callgraph import Project
from .registry import project_rule


def _mismatch(label: str, ref_label: str, got: list[str], want: list[str]) -> str:
    extra = sorted(set(got) - set(want))
    missing = sorted(set(want) - set(got))
    if extra or missing:
        detail = "; ".join(
            part
            for part in (
                f"unknown: {', '.join(extra)}" if extra else "",
                f"missing: {', '.join(missing)}" if missing else "",
            )
            if part
        )
    else:
        first = next(i for i, (a, b) in enumerate(zip(got, want)) if a != b)
        detail = (
            f"first divergence at index {first}: "
            f"{got[first]!r} vs {want[first]!r}"
        )
    return (
        f"{label} disagrees with the {ref_label} ({detail}); "
        "the Table 1 layout must change in schema.py, io.py and "
        "columnar.py together (and SCHEMA_VERSION must be bumped)"
    )


@project_rule(
    "S1",
    title="Table 1 layout declared identically in schema/io/columnar",
)
def check_schema_drift(project: Project) -> Iterator:
    for group in project.by_directory().values():
        entry: dict[str, tuple[dict, list[str], int]] = {}
        for facts in group:
            layouts = facts["s1"]
            if not layouts:
                continue
            for key, (names, lineno) in layouts.items():
                entry[key] = (facts, names, lineno)
        if len(entry) < 2:
            continue
        # The dataclass is the reference when present, else the TSV layout.
        ref_key = "schema" if "schema" in entry else "tsv"
        _, want, _ = entry[ref_key]
        labels = {
            "tsv": "io.py TSV_COLUMNS",
            "columnar": "columnar COLUMNS layout",
            "schema": "LogRecord fields",
        }
        for key, (facts, got, lineno) in entry.items():
            if key == ref_key:
                continue
            if got != want:
                yield facts["path"], lineno, 0, _mismatch(
                    labels[key], labels[ref_key], got, want
                )


# ----------------------------------------------------------------------
# S2 — telemetry snapshot <-> FaultStats consistency
# ----------------------------------------------------------------------

#: FaultStats fields that belong to the metadata tier and therefore must
#: be surfaced in the snapshot's metadata availability section.  Chosen
#: to match ``shard_rejections``/``replica_reads``/``stale_reads_avoided``/
#: ``failover_reads`` while leaving the front-end umbrellas
#: (``failovers``, ``metadata_rejections``) to the counters section.
_METADATA_COUNTER = re.compile(r"^(shard_|replica_|stale_)|_reads$")


@project_rule(
    "S2",
    title="telemetry snapshot, FaultStats and reconcile() stay consistent",
)
def check_telemetry_schema(project: Project) -> Iterator:
    for facts in project.files:
        meta = facts["s2_meta"]
        stats_reads = facts["s2_stats_reads"]
        if meta is None and not stats_reads:
            continue
        ledger_facts = (
            facts
            if facts["s2_faultstats"] is not None
            else project.facts_in_dir_or_parent(
                facts, lambda f: f["s2_faultstats"] is not None
            )
        )
        ledger = ledger_facts["s2_faultstats"] if ledger_facts else None

        if ledger is not None:
            # Every ``stats.x`` read must name a real FaultStats member.
            members = set(ledger["members"])
            for attr, line, col in stats_reads:
                if attr not in members:
                    yield (
                        facts["path"],
                        line,
                        col,
                        f"{attr!r} is read from a FaultStats parameter but "
                        "FaultStats declares no such field or property; the "
                        "fault ledger and the telemetry reconciliation must "
                        "change together",
                    )

        if meta is None:
            continue
        keys = set(meta["keys"])
        if ledger is not None:
            # Every metadata-tier counter must surface in the snapshot's
            # metadata availability section.
            for name in ledger["fields"]:
                if _METADATA_COUNTER.search(name) and name not in keys:
                    yield (
                        facts["path"],
                        meta["lineno"],
                        0,
                        f"FaultStats counter {name!r} looks metadata-tier "
                        "(shard_*/replica_*/stale_*/*_reads) but is missing "
                        "from DEFAULT_METADATA_AVAILABILITY; the snapshot "
                        "metadata section, FaultStats and reconcile() must "
                        "change together (and TELEMETRY_SCHEMA_VERSION must "
                        "be bumped)",
                    )
        # Every ``meta["..."]`` read must exist in the default shape.
        for key, line, col in facts["s2_meta_reads"]:
            if key not in keys:
                yield (
                    facts["path"],
                    line,
                    col,
                    f"metadata key {key!r} is read from the snapshot "
                    "metadata section but missing from "
                    "DEFAULT_METADATA_AVAILABILITY; add it to the default "
                    "shape (and bump TELEMETRY_SCHEMA_VERSION)",
                )
