"""Rule S1 — cross-file schema drift.

The Table 1 record layout is declared three times, deliberately close to
the code that uses it:

* ``logs/schema.py`` — the :class:`LogRecord` dataclass field order (the
  in-memory truth);
* ``logs/io.py`` — ``TSV_COLUMNS``, the on-disk TSV column order;
* ``logs/columnar.py`` — ``COLUMNS``, the struct-of-arrays / NPZ layout
  (``device_code`` standing in for the pooled ``device_id`` strings).

Runtime guards (the NPZ ``SCHEMA_VERSION`` check) catch *stale artifacts*;
this rule catches the *source drifting* — a column added to one
declaration and not the others, or a silent reorder that would shear every
existing trace.  The three literals are compared straight from the ASTs,
so the check needs no imports and works on mutated fixture copies.

Files that declare none of the three markers are ignored; candidates are
grouped by directory so fixture trios under ``tests/data/lint`` are
checked against each other, never against ``src/repro/logs``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .registry import project_rule
from .source import SourceFile

#: Columnar layout name -> schema field it encodes.
_COLUMN_ALIASES = {"device_code": "device_id"}


def _tuple_of_strings(node: ast.expr) -> list[str] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def _assigned_literal(tree: ast.Module, name: str) -> ast.expr | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                return node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def _schema_fields(tree: ast.Module) -> tuple[list[str], int] | None:
    """LogRecord dataclass field names in declaration order (+ class line)."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "LogRecord":
            fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            return fields, node.lineno
    return None


def _tsv_columns(tree: ast.Module) -> tuple[list[str], int] | None:
    value = _assigned_literal(tree, "TSV_COLUMNS")
    if value is None:
        return None
    names = _tuple_of_strings(value)
    return (names, value.lineno) if names is not None else None


def _columnar_columns(tree: ast.Module) -> tuple[list[str], int] | None:
    value = _assigned_literal(tree, "COLUMNS")
    if value is None or not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names = []
    for elt in value.elts:
        if not isinstance(elt, (ast.Tuple, ast.List)) or not elt.elts:
            return None
        first = elt.elts[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return None
        names.append(_COLUMN_ALIASES.get(first.value, first.value))
    return names, value.lineno


def _mismatch(label: str, ref_label: str, got: list[str], want: list[str]) -> str:
    extra = sorted(set(got) - set(want))
    missing = sorted(set(want) - set(got))
    if extra or missing:
        detail = "; ".join(
            part
            for part in (
                f"unknown: {', '.join(extra)}" if extra else "",
                f"missing: {', '.join(missing)}" if missing else "",
            )
            if part
        )
    else:
        first = next(i for i, (a, b) in enumerate(zip(got, want)) if a != b)
        detail = (
            f"first divergence at index {first}: "
            f"{got[first]!r} vs {want[first]!r}"
        )
    return (
        f"{label} disagrees with the {ref_label} ({detail}); "
        "the Table 1 layout must change in schema.py, io.py and "
        "columnar.py together (and SCHEMA_VERSION must be bumped)"
    )


@project_rule(
    "S1",
    title="Table 1 layout declared identically in schema/io/columnar",
)
def check_schema_drift(sources: list[SourceFile]) -> Iterator:
    by_dir: dict = {}
    for src in sources:
        entry = by_dir.setdefault(src.path.parent, {})
        schema = _schema_fields(src.tree)
        if schema is not None:
            entry["schema"] = (src, *schema)
        tsv = _tsv_columns(src.tree)
        if tsv is not None:
            entry["tsv"] = (src, *tsv)
        columnar = _columnar_columns(src.tree)
        if columnar is not None:
            entry["columnar"] = (src, *columnar)

    for entry in by_dir.values():
        if len(entry) < 2:
            continue
        # The dataclass is the reference when present, else the TSV layout.
        ref_key = "schema" if "schema" in entry else "tsv"
        _, want, _ = entry[ref_key]
        labels = {
            "tsv": "io.py TSV_COLUMNS",
            "columnar": "columnar COLUMNS layout",
            "schema": "LogRecord fields",
        }
        for key, (src, got, lineno) in entry.items():
            if key == ref_key:
                continue
            if got != want:
                yield src, lineno, 0, _mismatch(
                    labels[key], labels[ref_key], got, want
                )
