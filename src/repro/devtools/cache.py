"""Incremental summary cache for reprolint.

Whole-repo lint (``src tests benchmarks``) re-reads a few hundred files;
almost none change between runs.  The cache stores, per file, the
blake2b digest of its bytes, the per-file findings already computed and
the facts dict the project rules consume — so a warm run re-analyzes
*only* edited files and still runs every cross-module rule over the full
facts set.

Invalidation is structural, never time-based:

* a **content edit** changes the digest → that file misses;
* a **rule-set change** (``registry.RULESET_VERSION``,
  ``summaries.FACTS_VERSION``, the set of registered rule ids, or this
  module's :data:`CACHE_FORMAT`) changes the fingerprint → the whole
  cache is discarded;
* an entry recorded under a *smaller* file-rule selection than the
  current run (``repro lint --rules D3`` then a full run) misses, while
  the reverse direction hits and filters.

Writes are atomic (tmp file + ``os.replace``), and a corrupt or
foreign-format cache file is silently treated as empty — the cache can
never make a lint run wrong, only slower or faster.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

#: Bump when the entry layout below changes shape.
CACHE_FORMAT = 1

#: Default cache location, relative to the invocation CWD.
DEFAULT_CACHE_FILE = ".reprolint_cache.json"


def ruleset_fingerprint() -> str:
    """Digest of everything that determines per-file analysis output."""
    from . import registry, summaries

    payload = {
        "cache_format": CACHE_FORMAT,
        "ruleset_version": registry.RULESET_VERSION,
        "facts_version": summaries.FACTS_VERSION,
        "rules": sorted(registry.load_builtin_rules()),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def file_digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


class SummaryCache:
    """Content-addressed per-file findings + facts store."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._fingerprint: str | None = None
        self.hits = 0
        self.misses = 0

    def open(self, fingerprint: str) -> None:
        """Load the cache file, discarding it on any fingerprint mismatch."""
        self._fingerprint = fingerprint
        self._entries = {}
        self.hits = 0
        self.misses = 0
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("cache_format") != CACHE_FORMAT:
            return
        if data.get("fingerprint") != fingerprint:
            return
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(
        self,
        real_path: str,
        digest: str,
        explicit: bool,
        display: str,
        file_rule_ids: list[str],
    ) -> dict | None:
        """Return the stored entry when it matches this run, else ``None``.

        ``explicit`` and ``display`` are part of the identity because
        walked-directory rule exemptions (F1) and finding paths depend on
        how the file was named, not just on its content.
        """
        entry = self._entries.get(real_path)
        if (
            entry is not None
            and entry.get("digest") == digest
            and entry.get("explicit") == explicit
            and entry.get("display") == display
            and set(file_rule_ids) <= set(entry.get("rules", []))
        ):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        real_path: str,
        digest: str,
        explicit: bool,
        display: str,
        file_rule_ids: list[str],
        findings: list,
        facts: dict | None,
    ) -> None:
        self._entries[real_path] = {
            "digest": digest,
            "explicit": explicit,
            "display": display,
            "rules": sorted(file_rule_ids),
            "findings": [f.to_dict() for f in findings],
            "facts": facts,
        }

    def save(self) -> None:
        """Atomically persist the cache (tmp file + ``os.replace``)."""
        payload = {
            "cache_format": CACHE_FORMAT,
            "fingerprint": self._fingerprint,
            "files": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.path)
