"""repro.devtools — static analysis for the reproduction's own invariants.

``reprolint`` is a custom lint pass built on the stdlib :mod:`ast` module
(zero runtime dependencies) that machine-checks the properties every
result in this repository rests on: bit-reproducible RNG seeding, a
Table 1 schema declared identically across its three homes, fork-safe
process-pool usage and float-comparison hygiene.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalog and the suppression /
baseline syntax, and ``repro lint --help`` for the CLI.

Public API
----------
:func:`lint_paths`
    Run every registered rule over files/directories, returning sorted
    :class:`Finding` records.
:class:`Finding` / :class:`Severity`
    The typed diagnostic record.
:data:`RULES`
    The rule registry (populated on first lint, or via
    :func:`load_builtin_rules`).
"""

from .cache import SummaryCache
from .callgraph import Project
from .engine import lint_command, lint_paths, load_baseline, render_json
from .findings import Finding, Severity
from .registry import (
    RULES,
    RULESET_VERSION,
    Rule,
    file_rule,
    load_builtin_rules,
    project_rule,
)

__all__ = [
    "Finding",
    "Project",
    "RULES",
    "RULESET_VERSION",
    "Rule",
    "Severity",
    "SummaryCache",
    "file_rule",
    "lint_command",
    "lint_paths",
    "load_baseline",
    "load_builtin_rules",
    "project_rule",
    "render_json",
]
