"""The reprolint engine: file collection, rule execution, output, gating.

Usage (programmatic)::

    from repro.devtools import lint_paths
    findings = lint_paths(["src/repro"])

Usage (CLI)::

    repro lint src/repro              # human output, exit 1 on findings
    repro lint src/repro --json       # machine-readable, same exit code
    repro lint src --baseline known.json   # ignore previously blessed findings

Exit codes: 0 clean, 1 findings, 2 usage error (missing path, unreadable
baseline).  Unparseable Python is not a crash but a finding (rule ``E0``)
— a file that cannot be parsed cannot be certified deterministic either.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Iterable, Iterator

from .findings import Finding, Severity, sort_findings
from .registry import RULES, load_builtin_rules
from .source import SourceFile

#: Output schema version of ``--json`` / baseline files.
JSON_VERSION = 1

#: Directory names never descended into by the walker.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".ruff_cache"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[tuple[Path, str, bool]]:
    """Yield ``(path, display_path, explicit)`` for every ``.py`` target.

    Explicitly named files are yielded as-is (even without a ``.py``
    suffix); directories are walked recursively in sorted order.

    Raises
    ------
    FileNotFoundError
        If a named path does not exist.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                relative = path.relative_to(root)
                if any(part in _SKIP_DIR_NAMES for part in relative.parts):
                    continue
                yield path, str(Path(raw) / relative), False
        elif root.exists():
            yield root, str(raw), True
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Read a baseline file (the ``--json`` output, or just its findings list)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    return {Finding.from_dict(entry).baseline_key for entry in entries}


def lint_paths(
    paths: Iterable[str | Path],
    *,
    baseline: set[tuple[str, str, str]] | None = None,
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted for display.

    ``baseline`` entries (see :func:`load_baseline`) and inline
    ``# reprolint: disable=...`` comments are filtered out.  ``rule_ids``
    restricts the run to a subset of rules.
    """
    load_builtin_rules()
    selected = {
        rid: rule
        for rid, rule in RULES.items()
        if rule_ids is None or rid in set(rule_ids)
    }
    if rule_ids is not None:
        unknown = set(rule_ids) - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    findings: list[Finding] = []
    sources: list[SourceFile] = []
    for path, display, explicit in iter_python_files(paths):
        try:
            sources.append(
                SourceFile.load(path, display_path=display, explicit=explicit)
            )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="E0",
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    severity=Severity.ERROR,
                    message=f"cannot parse: {exc.msg}",
                )
            )

    for rule in selected.values():
        if rule.scope == "file":
            for src in sources:
                if not rule.applies_to(src):
                    continue
                for line, col, message in rule.check(src):
                    if not src.is_suppressed(rule.rule_id, line):
                        findings.append(
                            Finding(
                                rule=rule.rule_id,
                                path=src.display_path,
                                line=line,
                                col=col,
                                severity=rule.severity,
                                message=message,
                            )
                        )
        else:
            for src, line, col, message in rule.check(sources):
                if not src.is_suppressed(rule.rule_id, line):
                    findings.append(
                        Finding(
                            rule=rule.rule_id,
                            path=src.display_path,
                            line=line,
                            col=col,
                            severity=rule.severity,
                            message=message,
                        )
                    )

    if baseline:
        findings = [f for f in findings if f.baseline_key not in baseline]
    return sort_findings(findings)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {"version": JSON_VERSION, "findings": [f.to_dict() for f in findings]},
        indent=2,
    )


def render_human(findings: list[Finding], n_rules: int) -> str:
    lines = [f.render() for f in findings]
    errors = sum(f.severity is Severity.ERROR for f in findings)
    warnings = len(findings) - errors
    lines.append(
        f"reprolint: {errors} error(s), {warnings} warning(s) "
        f"across {n_rules} rule(s)"
        if findings
        else f"reprolint: clean ({n_rules} rule(s))"
    )
    return "\n".join(lines)


def lint_command(
    paths: list[str],
    *,
    json_out: bool = False,
    baseline: str | None = None,
    out: IO[str] | None = None,
) -> int:
    """Back end of ``repro lint``; returns the process exit code."""
    out = out if out is not None else sys.stdout
    baseline_keys: set[tuple[str, str, str]] | None = None
    if baseline is not None:
        try:
            baseline_keys = load_baseline(baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {baseline}: {exc}", file=sys.stderr)
            return 2
    try:
        findings = lint_paths(paths, baseline=baseline_keys)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    n_rules = len(load_builtin_rules())
    if json_out:
        print(render_json(findings), file=out)
    else:
        print(render_human(findings, n_rules), file=out)
    return 1 if findings else 0
