"""The reprolint engine: file collection, rule execution, output, gating.

Usage (programmatic)::

    from repro.devtools import lint_paths
    findings = lint_paths(["src/repro"])

Usage (CLI)::

    repro lint src tests benchmarks   # human output, exit 1 on findings
    repro lint src/repro --json       # machine-readable, same exit code
    repro lint --rules D2,M1 src      # restrict to a rule subset
    repro lint src --no-cache         # ignore .reprolint_cache.json
    repro lint src --baseline known.json   # ignore previously blessed findings

Exit codes: 0 clean, 1 findings, 2 usage error (missing path, unreadable
baseline, unknown rule id).  Unparseable Python is not a crash but a
finding (rule ``E0``) — a file that cannot be parsed cannot be certified
deterministic either.

Analysis is two-phase.  Phase 1 visits each file once: run the selected
*file* rules and extract the facts summary
(:mod:`repro.devtools.summaries`); both are cached per content digest
(:mod:`repro.devtools.cache`), so a warm run re-analyzes only edited
files.  Phase 2 links every file's facts into a
:class:`~repro.devtools.callgraph.Project` and runs the *project* rules
(cross-module seed provenance, transitive fork safety, schema
consistency) over the linked graph — always at full strength, cached or
not.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Iterable, Iterator

from .cache import DEFAULT_CACHE_FILE, SummaryCache, file_digest, ruleset_fingerprint
from .callgraph import Project
from .findings import Finding, Severity, sort_findings
from .registry import RULES, Rule, load_builtin_rules
from .source import SourceFile
from .summaries import extract_facts

#: Output schema version of ``--json`` / baseline files.
JSON_VERSION = 1

#: Directory names never descended into by the walker.  ``data`` keeps
#: fixture trees (tests/data/lint deliberately violates every rule) out
#: of whole-repo sweeps; fixtures are linted explicitly by the suite.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".ruff_cache", "data"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[tuple[Path, str, bool]]:
    """Yield ``(path, display_path, explicit)`` for every ``.py`` target.

    Explicitly named files are yielded as-is (even without a ``.py``
    suffix); directories are walked recursively in sorted order.  Each
    distinct file is yielded once even when targets overlap (``repro
    lint src src/repro``) or reach it through a symlinked directory —
    the first mention wins.

    Raises
    ------
    FileNotFoundError
        If a named path does not exist.
    """
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for path in sorted(root.rglob("*.py")):
                relative = path.relative_to(root)
                if any(part in _SKIP_DIR_NAMES for part in relative.parts):
                    continue
                resolved = path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                yield path, str(Path(raw) / relative), False
        elif root.exists():
            resolved = root.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield root, str(raw), True
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Read a baseline file (the ``--json`` output, or just its findings list)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    return {Finding.from_dict(entry).baseline_key for entry in entries}


def _analyze_file(
    path: Path,
    display: str,
    explicit: bool,
    text: str,
    file_rules: list[Rule],
) -> tuple[list[Finding], dict | None]:
    """Phase 1 for one file: file-rule findings plus the facts summary."""
    try:
        src = SourceFile.from_source(
            text, path, display_path=display, explicit=explicit
        )
    except SyntaxError as exc:
        finding = Finding(
            rule="E0",
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            severity=Severity.ERROR,
            message=f"cannot parse: {exc.msg}",
        )
        return [finding], None

    findings: list[Finding] = []
    for rule in file_rules:
        if not rule.applies_to(src):
            continue
        for line, col, message in rule.check(src):
            if not src.is_suppressed(rule.rule_id, line):
                findings.append(
                    Finding(
                        rule=rule.rule_id,
                        path=src.display_path,
                        line=line,
                        col=col,
                        severity=rule.severity,
                        message=message,
                    )
                )
    return findings, extract_facts(src)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    baseline: set[tuple[str, str, str]] | None = None,
    rule_ids: Iterable[str] | None = None,
    cache: SummaryCache | None = None,
) -> list[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted for display.

    ``baseline`` entries (see :func:`load_baseline`) and inline
    ``# reprolint: disable=...`` comments are filtered out.  ``rule_ids``
    restricts the run to a subset of rules.  ``cache`` enables the
    incremental per-file summary cache (opened against the current
    rule-set fingerprint, saved on completion).
    """
    load_builtin_rules()
    if rule_ids is not None:
        unknown = set(rule_ids) - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    selected = {
        rid: rule
        for rid, rule in RULES.items()
        if rule_ids is None or rid in set(rule_ids)
    }
    file_rules = [r for r in selected.values() if r.scope == "file"]
    project_rules = [r for r in selected.values() if r.scope == "project"]
    file_rule_ids = sorted(r.rule_id for r in file_rules)

    if cache is not None:
        cache.open(ruleset_fingerprint())

    findings: list[Finding] = []
    facts_list: list[dict] = []
    for path, display, explicit in iter_python_files(paths):
        data = path.read_bytes()
        digest = file_digest(data)
        real = str(path.resolve())
        entry = (
            cache.lookup(real, digest, explicit, display, file_rule_ids)
            if cache is not None
            else None
        )
        if entry is not None:
            file_findings = [
                Finding.from_dict(d)
                for d in entry["findings"]
                if d["rule"] == "E0" or d["rule"] in selected
            ]
            facts = entry["facts"]
        else:
            file_findings, facts = _analyze_file(
                path, display, explicit, data.decode("utf-8"), file_rules
            )
            if cache is not None:
                cache.store(
                    real, digest, explicit, display,
                    file_rule_ids, file_findings, facts,
                )
        findings.extend(file_findings)
        if facts is not None:
            facts_list.append(facts)

    if project_rules and facts_list:
        project = Project(facts_list)
        for rule in project_rules:
            for fpath, line, col, message in rule.check(project):
                if project.is_suppressed(fpath, rule.rule_id, line):
                    continue
                findings.append(
                    Finding(
                        rule=rule.rule_id,
                        path=fpath,
                        line=line,
                        col=col,
                        severity=rule.severity,
                        message=message,
                    )
                )

    if cache is not None:
        cache.save()
    if baseline:
        findings = [f for f in findings if f.baseline_key not in baseline]
    return sort_findings(findings)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {"version": JSON_VERSION, "findings": [f.to_dict() for f in findings]},
        indent=2,
    )


def render_human(findings: list[Finding], n_rules: int) -> str:
    lines = [f.render() for f in findings]
    errors = sum(f.severity is Severity.ERROR for f in findings)
    warnings = len(findings) - errors
    lines.append(
        f"reprolint: {errors} error(s), {warnings} warning(s) "
        f"across {n_rules} rule(s)"
        if findings
        else f"reprolint: clean ({n_rules} rule(s))"
    )
    return "\n".join(lines)


def lint_command(
    paths: list[str],
    *,
    json_out: bool = False,
    baseline: str | None = None,
    rules: Iterable[str] | str | None = None,
    cache_file: str | None = DEFAULT_CACHE_FILE,
    out: IO[str] | None = None,
) -> int:
    """Back end of ``repro lint``; returns the process exit code.

    ``rules`` may be an iterable of rule ids or a comma-separated string
    (the CLI form); an unknown id is a usage error (exit 2), matching the
    missing-path and unreadable-baseline behaviour.  ``cache_file=None``
    disables the summary cache.
    """
    out = out if out is not None else sys.stdout
    baseline_keys: set[tuple[str, str, str]] | None = None
    if baseline is not None:
        try:
            baseline_keys = load_baseline(baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read baseline {baseline}: {exc}", file=sys.stderr)
            return 2
    rule_ids: set[str] | None = None
    if rules is not None:
        tokens = rules.split(",") if isinstance(rules, str) else rules
        rule_ids = {token.strip() for token in tokens if token.strip()}
        if not rule_ids:
            rule_ids = None
    cache = SummaryCache(cache_file) if cache_file else None
    try:
        findings = lint_paths(
            paths, baseline=baseline_keys, rule_ids=rule_ids, cache=cache
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    n_rules = len(rule_ids) if rule_ids is not None else len(load_builtin_rules())
    if json_out:
        print(render_json(findings), file=out)
    else:
        print(render_human(findings, n_rules), file=out)
    return 1 if findings else 0
