"""The cross-module layer: linking per-file facts into a project graph.

A :class:`Project` indexes the facts dicts produced by
:func:`repro.devtools.summaries.extract_facts` for every file in one lint
invocation and answers the questions the project-scope rules ask:

* **reference resolution** — a call descriptor (bare name, dotted path,
  ``self.method`` / instance method) resolved to a concrete
  ``(facts, qualname)`` function summary, walking the caller's lexical
  scope chain, its import aliases and the module graph;
* **returns-seedish** — a fixpoint over the call graph marking every
  function whose return value carries seed provenance, directly or via a
  chain of calls (rule D2 accepts ``default_rng(helper(...))`` when
  ``helper`` — possibly in another module — returns a SeedSequence-derived
  value);
* **RNG closure witnesses** — a fixpoint marking every function that
  closes over parent RNG state directly *or transitively calls one that
  does*, with the call chain recorded so rule M1 can explain a depth-N
  violation (``worker -> mid -> draw``);
* **caller indexing** — all resolved call sites of a function, so rule D2
  can chase a non-seedish RNG argument back through parameters to the
  call site that actually supplies the value.

Everything here operates on plain JSON facts (never ASTs), so a
cache-warm run links and lints without re-parsing a single file.
"""

from __future__ import annotations

from pathlib import Path

#: A function key: ``(display_path, qualname)`` — unique per invocation.
FuncKey = tuple[str, str]


class Project:
    """All per-file facts of one lint invocation, linked."""

    def __init__(self, facts_list: list[dict]):
        self.files: list[dict] = list(facts_list)
        self.by_path: dict[str, dict] = {f["path"]: f for f in self.files}
        self.by_module: dict[str, list[dict]] = {}
        for facts in self.files:
            self.by_module.setdefault(facts["module"], []).append(facts)
        self._callers: dict[FuncKey, list[tuple[dict, str, dict]]] | None = None
        self._returns_seedish: dict[FuncKey, bool] | None = None
        self._rng_witness: dict[FuncKey, tuple[list[str], list[str]]] | None = None

    # -- iteration -------------------------------------------------------

    def functions(self):
        """Yield ``(facts, qualname, summary)`` for every known function."""
        for facts in self.files:
            for qualname, summary in facts["functions"].items():
                yield facts, qualname, summary

    def summary(self, key: FuncKey) -> dict | None:
        facts = self.by_path.get(key[0])
        if facts is None:
            return None
        return facts["functions"].get(key[1])

    # -- reference resolution --------------------------------------------

    def _module_facts(self, module: str, near: dict | None) -> list[dict]:
        """Facts for ``module``, preferring the caller's own directory.

        Fixture trees and the real source may both define a module of the
        same bare name; same-directory candidates win so a project lint
        never cross-links unrelated trees.
        """
        candidates = self.by_module.get(module, [])
        if near is not None and len(candidates) > 1:
            same_dir = [f for f in candidates if f["dir"] == near["dir"]]
            if same_dir:
                return same_dir
        return candidates

    def _lookup_dotted(self, dotted: str, near: dict | None) -> FuncKey | None:
        """Resolve ``pkg.mod.func`` / ``pkg.mod.Cls.method`` to a key."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            rest = ".".join(parts[i:])
            for facts in self._module_facts(module, near):
                if rest in facts["functions"]:
                    return facts["path"], rest
        return None

    def resolve_ref(
        self, caller: dict, caller_qual: str, ref: dict | None
    ) -> FuncKey | None:
        """Resolve a call descriptor from ``caller_qual`` in ``caller``."""
        if ref is None:
            return None
        if ref["kind"] == "method":
            cls = ref["cls"]
            attr = ref["attr"]
            if "." not in cls:
                if cls in caller["classes"]:
                    qual = f"{cls}.{attr}"
                    if qual in caller["functions"]:
                        return caller["path"], qual
                    return None
                cls = caller["imports"].get(cls, cls)
            if "." in cls:
                return self._lookup_dotted(f"{cls}.{attr}", caller)
            return None
        dotted = ref["dotted"]
        if "." not in dotted:
            # Bare name: innermost enclosing scope outwards, then imports.
            prefix = caller_qual.split(".") if caller_qual != "<module>" else []
            for i in range(len(prefix), -1, -1):
                qual = ".".join([*prefix[:i], dotted])
                if qual in caller["functions"]:
                    return caller["path"], qual
            target = caller["imports"].get(dotted)
            if target is not None and target != dotted:
                return self.resolve_ref(
                    caller, caller_qual, {"kind": "dotted", "dotted": target}
                )
            return None
        return self._lookup_dotted(dotted, caller)

    # -- caller index ----------------------------------------------------

    def callers(self, key: FuncKey) -> list[tuple[dict, str, dict]]:
        """All resolved call sites of ``key``: ``(facts, qualname, call)``."""
        if self._callers is None:
            self._callers = {}
            for facts, qualname, summary in self.functions():
                for call in summary["calls"]:
                    resolved = self.resolve_ref(facts, qualname, call["ref"])
                    if resolved is not None:
                        self._callers.setdefault(resolved, []).append(
                            (facts, qualname, call)
                        )
        return self._callers.get(key, [])

    # -- returns-seedish fixpoint ----------------------------------------

    def returns_seedish(self, key: FuncKey) -> bool:
        """Whether ``key``'s return value carries seed provenance."""
        if self._returns_seedish is None:
            state: dict[FuncKey, bool] = {}
            for facts, qualname, summary in self.functions():
                state[(facts["path"], qualname)] = summary["returns_seedish_local"]
            changed = True
            while changed:
                changed = False
                for facts, qualname, summary in self.functions():
                    k = (facts["path"], qualname)
                    if state[k]:
                        continue
                    for ref in summary["return_calls"]:
                        resolved = self.resolve_ref(facts, qualname, ref)
                        if resolved is not None and state.get(resolved):
                            state[k] = True
                            changed = True
                            break
            self._returns_seedish = state
        return bool(self._returns_seedish.get(key))

    def call_provides_seed(self, facts: dict, qualname: str, refs: list[dict]) -> bool:
        """Whether any call inside an argument resolves to a seed source."""
        for ref in refs:
            resolved = self.resolve_ref(facts, qualname, ref)
            if resolved is not None and self.returns_seedish(resolved):
                return True
        return False

    # -- RNG-closure witness fixpoint ------------------------------------

    def rng_witness(self, key: FuncKey) -> tuple[list[str], list[str]] | None:
        """``(chain, captured)`` if ``key`` (transitively) closes over RNG.

        ``chain`` is empty for a direct capture; for a transitive one it
        names the callees from ``key`` down to the capturing function
        (``["mid", "draw"]``).  ``captured`` are the RNG names captured at
        the end of the chain.  ``None`` when the function is fork-safe.
        """
        if self._rng_witness is None:
            state: dict[FuncKey, tuple[list[str], list[str]]] = {}
            for facts, qualname, summary in self.functions():
                if summary["captured_rng"]:
                    state[(facts["path"], qualname)] = ([], summary["captured_rng"])
            changed = True
            while changed:
                changed = False
                for facts, qualname, summary in self.functions():
                    k = (facts["path"], qualname)
                    if k in state:
                        continue
                    for call in summary["calls"]:
                        resolved = self.resolve_ref(facts, qualname, call["ref"])
                        if resolved is None or resolved == k:
                            continue
                        hit = state.get(resolved)
                        if hit is not None:
                            chain, captured = hit
                            callee = resolved[1].rsplit(".", 1)[-1]
                            state[k] = ([callee, *chain], captured)
                            changed = True
                            break
            self._rng_witness = state
        return self._rng_witness.get(key)

    # -- suppression lookup ----------------------------------------------

    def is_suppressed(self, path: str, rule_id: str, line: int) -> bool:
        facts = self.by_path.get(path)
        if facts is None:
            return False
        rules = facts["suppress"].get(str(line))
        return bool(rules) and ("all" in rules or rule_id in rules)

    # -- grouping helpers for schema rules -------------------------------

    def by_directory(self) -> dict[str, list[dict]]:
        groups: dict[str, list[dict]] = {}
        for facts in self.files:
            groups.setdefault(facts["dir"], []).append(facts)
        return groups

    def facts_in_dir_or_parent(self, facts: dict, predicate) -> dict | None:
        """First facts (sorted by path) matching ``predicate`` in the same
        directory as ``facts``, else in its parent directory."""
        for directory in (facts["dir"], str(Path(facts["dir"]).parent)):
            hits = sorted(
                (
                    f
                    for f in self.files
                    if f["dir"] == directory and predicate(f)
                ),
                key=lambda f: f["path"],
            )
            if hits:
                return hits[0]
        return None
