"""Typed lint findings.

A :class:`Finding` is one diagnostic produced by a reprolint rule: the rule
id, the file it points at, a 1-based line and 0-based column, a severity and
a human-readable message.  Findings serialize loss-lessly to plain dicts
(the ``--json`` output and the baseline file format) and back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    Both severities gate CI — a warning is advice about risk (e.g. a float
    equality that happens to be safe today), an error is a determinism or
    schema invariant that is actually broken.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic emitted by a lint rule."""

    rule: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: RULE [sev] msg``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
        )

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by ``--baseline`` matching.

        Deliberately excludes the line number so a baseline survives
        unrelated edits that shift code up or down.
        """
        return (self.rule, self.path, self.message)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable display order: by path, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
