"""Rule M1 — fork safety of work submitted to process pools.

A callable shipped to a ``ProcessPoolExecutor`` / ``multiprocessing`` pool
must not *close over* a ``numpy.random.Generator`` or ``SeedSequence``
from the parent: the closure is pickled, so every worker resurrects an
identical copy of the RNG state and the "parallel" streams collapse into
clones of each other (or, for lambdas, pickling simply fails at runtime —
in either case the bug belongs at review time, not at 2 a.m. in CI).

The supported pattern is the one ``repro.workload.parallel`` uses: spawn
per-task ``SeedSequence`` children in the parent and pass them (or plain
seed integers) as *arguments* to a module-level worker function.

Since v2 the check is *transitive* over the call graph: a submitted
worker that itself captures no RNG state but calls — at any depth, across
modules — a function that closes over a ``Generator`` is flagged, with
the offending call chain named in the message.  Detection of pools, RNG
bindings and submissions happens per file during summary extraction
(:mod:`repro.devtools.summaries`); this module only links and judges.
"""

from __future__ import annotations

from .callgraph import Project
from .registry import project_rule


@project_rule(
    "M1",
    title="process-pool workers must not close over RNG state",
)
def check_fork_safety(project: Project):
    emitted: set[tuple] = set()
    for facts, qualname, summary in project.functions():
        for sub in summary["submissions"]:
            if sub["kind"] == "lambda":
                if not sub["captured"]:
                    continue
                diag = (
                    facts["path"],
                    sub["line"],
                    sub["col"],
                    "lambda submitted to process pool closes over RNG state "
                    f"({', '.join(sub['captured'])}); pass seeds as arguments "
                    "to a module-level worker",
                )
            else:
                resolved = project.resolve_ref(facts, qualname, sub["ref"])
                if resolved is None:
                    continue
                witness = project.rng_witness(resolved)
                if witness is None:
                    continue
                chain, captured = witness
                name = sub["name"]
                if not chain:
                    diag = (
                        facts["path"],
                        sub["line"],
                        sub["col"],
                        f"worker {name!r} submitted to process pool closes "
                        f"over RNG state ({', '.join(captured)}); pass "
                        "SeedSequence children as arguments instead",
                    )
                else:
                    route = " -> ".join([resolved[1].rsplit(".", 1)[-1], *chain])
                    diag = (
                        facts["path"],
                        sub["line"],
                        sub["col"],
                        f"worker {name!r} submitted to process pool "
                        f"transitively closes over RNG state "
                        f"({', '.join(captured)}) via {route}; pass "
                        "SeedSequence children as arguments instead",
                    )
            if diag not in emitted:
                emitted.add(diag)
                yield diag
