"""Rule M1 — fork safety of work submitted to process pools.

A callable shipped to a ``ProcessPoolExecutor`` / ``multiprocessing`` pool
must not *close over* a ``numpy.random.Generator`` or ``SeedSequence``
from the parent: the closure is pickled, so every worker resurrects an
identical copy of the RNG state and the "parallel" streams collapse into
clones of each other (or, for lambdas, pickling simply fails at runtime —
in either case the bug belongs at review time, not at 2 a.m. in CI).

The supported pattern is the one ``repro.workload.parallel`` uses: spawn
per-task ``SeedSequence`` children in the parent and pass them (or plain
seed integers) as *arguments* to a module-level worker function.

Detection is scoped per enclosing function (or the module body): names
bound to ``ProcessPoolExecutor(...)`` / ``...Pool(...)`` are pool handles;
names assigned from ``default_rng(...)`` / ``SeedSequence(...)`` /
``.spawn(...)`` are RNG state; submitting a lambda or a *locally defined*
function whose free variables include RNG state is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .registry import file_rule
from .source import SourceFile

#: Pool method names whose first positional argument is the callable.
_SUBMIT_METHODS = {
    "submit", "map", "starmap", "imap", "imap_unordered", "apply", "apply_async",
}


def _is_pool_constructor(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name.endswith("ProcessPoolExecutor") or name == "Pool"


def _is_rng_constructor(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in ("default_rng", "SeedSequence", "spawn")


def _bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names bound inside ``func`` (parameters + assignment targets + defs)."""
    args = func.args
    bound = {
        a.arg
        for a in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
    return bound


def _free_loads(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names read inside ``func`` that are not bound within it."""
    bound = _bound_names(func)
    body = func.body if isinstance(func.body, list) else [func.body]
    loads: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in bound:
                    loads.add(node.id)
    return loads


def _scope_bodies(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """The module body and every function body, each once."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _analyze_scope(body: list[ast.stmt]) -> Iterator[tuple[int, int, str]]:
    pools: set[str] = set()
    rng_names: set[str] = set()
    local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    submissions: list[tuple[ast.Call, ast.expr]] = []

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[node.name] = node
            elif isinstance(node, ast.withitem):
                if (
                    isinstance(node.context_expr, ast.Call)
                    and _is_pool_constructor(node.context_expr)
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    pools.add(node.optional_vars.id)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_pool_constructor(node.value):
                        pools.add(target.id)
                    elif _is_rng_constructor(node.value):
                        rng_names.add(target.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SUBMIT_METHODS
                    and isinstance(func.value, ast.Name)
                    and node.args
                ):
                    submissions.append((node, node.args[0]))

    for call, work in submissions:
        pool_name = call.func.value.id  # type: ignore[union-attr]
        if pool_name not in pools:
            continue
        if isinstance(work, ast.Lambda):
            captured = sorted(_free_loads(work) & rng_names)
            if captured:
                yield (
                    work.lineno,
                    work.col_offset,
                    "lambda submitted to process pool closes over RNG state "
                    f"({', '.join(captured)}); pass seeds as arguments to a "
                    "module-level worker",
                )
        elif isinstance(work, ast.Name) and work.id in local_defs:
            captured = sorted(_free_loads(local_defs[work.id]) & rng_names)
            if captured:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"locally defined worker {work.id!r} submitted to process "
                    f"pool closes over RNG state ({', '.join(captured)}); "
                    "pass SeedSequence children as arguments instead",
                )


@file_rule(
    "M1",
    title="process-pool workers must not close over RNG state",
)
def check_fork_safety(src: SourceFile):
    seen: set[tuple[int, int, str]] = set()
    for body in _scope_bodies(src.tree):
        for diag in _analyze_scope(body):
            if diag not in seen:
                seen.add(diag)
                yield diag
