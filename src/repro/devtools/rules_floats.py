"""Rule F1 — no ``==`` / ``!=`` against float literals.

Float equality is almost always a latent bug in simulation code: a value
that is *computed* (accumulated clock, subtracted duration, scaled rate)
compares unequal to the literal it "obviously" equals, and the branch
silently flips.  Where the comparison is genuinely safe (a sentinel that
is only ever assigned the literal), an inequality bound (``<= 0.0``) or
``math.isclose`` states the intent without the trap.

The rule exempts files discovered under ``tests/`` directories — test
code legitimately asserts exact float round-trips — but still fires when
such a file is named explicitly (that is how its own fixtures are tested).
"""

from __future__ import annotations

import ast

from .findings import Severity
from .registry import file_rule
from .source import SourceFile


def _float_literal(node: ast.expr) -> float | None:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    # Negated literal: ``x == -1.0`` parses as UnaryOp(USub, Constant).
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is float
    ):
        return -node.operand.value if isinstance(node.op, ast.USub) else node.operand.value
    return None


@file_rule(
    "F1",
    title="no equality comparison against float literals",
    severity=Severity.WARNING,
    skip_walked_dirs=("tests",),
)
def check_float_equality(src: SourceFile):
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[i], operands[i + 1]):
                literal = _float_literal(side)
                if literal is not None:
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{sym} against float literal {literal!r}; use an "
                        "inequality bound or math.isclose",
                    )
                    break
