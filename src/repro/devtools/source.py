"""Parsed source files and inline suppressions.

A :class:`SourceFile` bundles a file's text, its parsed ``ast`` tree and the
per-line suppression sets extracted from ``# reprolint: disable=...``
comments.  Rules receive SourceFiles so they never re-read or re-parse.

Suppression syntax
------------------
Append a comment to the offending line::

    delivered = self.loss_rate == 0.0  # reprolint: disable=F1
    rng = default_rng()                # reprolint: disable=D1,D2
    seed = hash(key)                   # reprolint: disable=all

The suppression applies to findings reported *on that physical line*.
``all`` mutes every rule for the line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> set of suppressed rule ids (or ``{"all"}``)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            if rules:
                out[lineno] = rules
    return out


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file, ready for rules to inspect."""

    path: Path
    #: Path string used in findings (as the file was named on the command
    #: line, so output and baselines are stable regardless of CWD layout).
    display_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Whether the file was named explicitly (vs. found by directory walk);
    #: rules with directory exemptions still apply to explicit files.
    explicit: bool = True

    @classmethod
    def load(cls, path: Path, *, display_path: str | None = None,
             explicit: bool = True) -> "SourceFile":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
            explicit=explicit,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and ("all" in rules or rule_id in rules)

    def in_directory(self, name: str) -> bool:
        """Whether any path component equals ``name`` (e.g. ``"tests"``)."""
        return name in self.path.parts
