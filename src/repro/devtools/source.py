"""Parsed source files and inline suppressions.

A :class:`SourceFile` bundles a file's text, its parsed ``ast`` tree and the
per-line suppression sets extracted from ``# reprolint: disable=...``
comments.  Rules receive SourceFiles so they never re-read or re-parse.

Suppression syntax
------------------
Append a comment to the offending line::

    delivered = self.loss_rate == 0.0  # reprolint: disable=F1
    rng = default_rng()                # reprolint: disable=D1,D2
    seed = hash(key)                   # reprolint: disable=all

The suppression applies to findings reported *on that physical line*.
``all`` mutes every rule for the line.  For a statement spanning several
physical lines, a suppression on *any* of its lines covers the whole
span — so the comment can sit next to the offending argument::

    rng = np.random.default_rng(
        opaque_value,  # reprolint: disable=D2
    )

(Only simple statements expand this way; a comment floating inside an
``if``/``for`` block never silences the whole block.)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> set of suppressed rule ids (or ``{"all"}``)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            if rules:
                out[lineno] = rules
    return out


#: Compound statements are excluded from span expansion: a comment on a
#: blank line inside an ``if`` body must not silence the whole block.
_COMPOUND_STMTS = (
    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Match,
)


def expand_suppressions(
    tree: ast.Module, suppressions: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Widen each suppression to the innermost simple statement's span.

    A ``# reprolint: disable=...`` comment anywhere inside a multi-line
    simple statement (a call spanning several lines, a long assignment)
    applies to every line of that statement, so findings anchored at the
    statement's first line are covered by a comment on a continuation
    line.  Single-line statements are unaffected.
    """
    if not suppressions:
        return suppressions
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or isinstance(node, _COMPOUND_STMTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is not None and end > node.lineno:
            spans.append((node.lineno, end))
    if not spans:
        return suppressions
    out = dict(suppressions)
    for line, rules in suppressions.items():
        best: tuple[int, int] | None = None
        for start, end in spans:
            if start <= line <= end:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
        if best is not None:
            for covered in range(best[0], best[1] + 1):
                out[covered] = out.get(covered, frozenset()) | rules
    return out


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file, ready for rules to inspect."""

    path: Path
    #: Path string used in findings (as the file was named on the command
    #: line, so output and baselines are stable regardless of CWD layout).
    display_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Whether the file was named explicitly (vs. found by directory walk);
    #: rules with directory exemptions still apply to explicit files.
    explicit: bool = True

    @classmethod
    def load(cls, path: Path, *, display_path: str | None = None,
             explicit: bool = True) -> "SourceFile":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        text = path.read_text(encoding="utf-8")
        return cls.from_source(
            text, path, display_path=display_path, explicit=explicit
        )

    @classmethod
    def from_source(cls, text: str, path: Path, *, display_path: str | None = None,
                    explicit: bool = True) -> "SourceFile":
        """Parse already-read source (raises ``SyntaxError`` on bad input)."""
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            text=text,
            tree=tree,
            suppressions=expand_suppressions(tree, parse_suppressions(text)),
            explicit=explicit,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and ("all" in rules or rule_id in rules)

    def in_directory(self, name: str) -> bool:
        """Whether any path component equals ``name`` (e.g. ``"tests"``)."""
        return name in self.path.parts
