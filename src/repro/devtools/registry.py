"""Rule registry.

A rule is a plain function registered under a stable id:

* **file rules** run once per :class:`~repro.devtools.source.SourceFile`
  and yield ``(line, col, message)`` tuples;
* **project rules** run once per lint invocation over the linked
  :class:`~repro.devtools.callgraph.Project` (the per-file facts of every
  scanned file plus the call graph) and yield ``(path, line, col,
  message)`` tuples — this is how cross-file invariants (S1/S2) and the
  interprocedural rules (D2 seed provenance, M1 fork safety) are
  expressed.  Project rules never see ASTs, so they run at full strength
  from cached summaries.

The engine wraps the tuples into :class:`~repro.devtools.findings.Finding`
records, applies inline suppressions and baselines, and sorts the output.
Registering is one decorator::

    @file_rule("F9", severity=Severity.WARNING, title="no frobnication")
    def check_frob(src: SourceFile):
        for node in ast.walk(src.tree):
            ...
            yield node.lineno, node.col_offset, "don't frobnicate"

Rules that should not apply to files *discovered by walking* certain
directories (but still apply when such a file is named explicitly) declare
``skip_walked_dirs`` — rule F1 uses this to exempt ``tests/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .findings import Severity
from .source import SourceFile

#: Bumped whenever rule semantics change in a way that alters findings;
#: part of the summary-cache fingerprint, so stale caches self-invalidate.
RULESET_VERSION = 2

#: ``(line, col, message)`` — a file rule's raw diagnostic.
FileDiag = tuple[int, int, str]
#: ``(path, line, col, message)`` — a project rule's raw diagnostic.
ProjectDiag = tuple[str, int, int, str]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    title: str
    severity: Severity
    scope: str  # "file" | "project"
    check: Callable[..., Iterator]
    #: Directory names whose *walked* files this rule skips (explicitly
    #: named files are always checked).
    skip_walked_dirs: tuple[str, ...] = ()

    def applies_to(self, src: SourceFile) -> bool:
        if src.explicit:
            return True
        return not any(src.in_directory(d) for d in self.skip_walked_dirs)


#: Registry of every known rule, keyed by id, in registration order.
RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id: {rule.rule_id}")
    RULES[rule.rule_id] = rule


def file_rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity = Severity.ERROR,
    skip_walked_dirs: Iterable[str] = (),
) -> Callable:
    """Register a per-file rule (``check(src) -> Iterator[FileDiag]``)."""

    def decorator(check: Callable[[SourceFile], Iterator[FileDiag]]):
        _register(
            Rule(
                rule_id=rule_id,
                title=title,
                severity=severity,
                scope="file",
                check=check,
                skip_walked_dirs=tuple(skip_walked_dirs),
            )
        )
        return check

    return decorator


def project_rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity = Severity.ERROR,
) -> Callable:
    """Register a whole-project rule (``check(project) -> Iterator[ProjectDiag]``).

    ``project`` is a :class:`repro.devtools.callgraph.Project`; the yielded
    path must be a ``facts["path"]`` display path so suppressions and
    baselines match.
    """

    def decorator(check: Callable[..., Iterator[ProjectDiag]]):
        _register(
            Rule(
                rule_id=rule_id,
                title=title,
                severity=severity,
                scope="project",
                check=check,
            )
        )
        return check

    return decorator


def load_builtin_rules() -> dict[str, Rule]:
    """Import the built-in rule modules (idempotent) and return the registry."""
    from . import rules_concurrency  # noqa: F401  (registration side effect)
    from . import rules_determinism  # noqa: F401
    from . import rules_floats  # noqa: F401
    from . import rules_hygiene  # noqa: F401
    from . import rules_ordering  # noqa: F401
    from . import rules_schema  # noqa: F401

    return RULES
