"""Rule registry.

A rule is a plain function registered under a stable id:

* **file rules** run once per :class:`~repro.devtools.source.SourceFile`
  and yield ``(line, col, message)`` tuples;
* **project rules** run once per lint invocation over *all* scanned files
  and yield ``(source, line, col, message)`` tuples — this is how
  cross-file invariants (rule S1) are expressed.

The engine wraps the tuples into :class:`~repro.devtools.findings.Finding`
records, applies inline suppressions and baselines, and sorts the output.
Registering is one decorator::

    @file_rule("F9", severity=Severity.WARNING, title="no frobnication")
    def check_frob(src: SourceFile):
        for node in ast.walk(src.tree):
            ...
            yield node.lineno, node.col_offset, "don't frobnicate"

Rules that should not apply to files *discovered by walking* certain
directories (but still apply when such a file is named explicitly) declare
``skip_walked_dirs`` — rule F1 uses this to exempt ``tests/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .findings import Severity
from .source import SourceFile

#: ``(line, col, message)`` — a file rule's raw diagnostic.
FileDiag = tuple[int, int, str]
#: ``(source, line, col, message)`` — a project rule's raw diagnostic.
ProjectDiag = tuple[SourceFile, int, int, str]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    title: str
    severity: Severity
    scope: str  # "file" | "project"
    check: Callable[..., Iterator]
    #: Directory names whose *walked* files this rule skips (explicitly
    #: named files are always checked).
    skip_walked_dirs: tuple[str, ...] = ()

    def applies_to(self, src: SourceFile) -> bool:
        if src.explicit:
            return True
        return not any(src.in_directory(d) for d in self.skip_walked_dirs)


#: Registry of every known rule, keyed by id, in registration order.
RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id: {rule.rule_id}")
    RULES[rule.rule_id] = rule


def file_rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity = Severity.ERROR,
    skip_walked_dirs: Iterable[str] = (),
) -> Callable:
    """Register a per-file rule (``check(src) -> Iterator[FileDiag]``)."""

    def decorator(check: Callable[[SourceFile], Iterator[FileDiag]]):
        _register(
            Rule(
                rule_id=rule_id,
                title=title,
                severity=severity,
                scope="file",
                check=check,
                skip_walked_dirs=tuple(skip_walked_dirs),
            )
        )
        return check

    return decorator


def project_rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity = Severity.ERROR,
) -> Callable:
    """Register a whole-project rule (``check(sources) -> Iterator[ProjectDiag]``)."""

    def decorator(check: Callable[[list[SourceFile]], Iterator[ProjectDiag]]):
        _register(
            Rule(
                rule_id=rule_id,
                title=title,
                severity=severity,
                scope="project",
                check=check,
            )
        )
        return check

    return decorator


def load_builtin_rules() -> dict[str, Rule]:
    """Import the built-in rule modules (idempotent) and return the registry."""
    from . import rules_concurrency  # noqa: F401  (registration side effect)
    from . import rules_determinism  # noqa: F401
    from . import rules_floats  # noqa: F401
    from . import rules_schema  # noqa: F401

    return RULES
