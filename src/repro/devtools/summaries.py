"""Per-file analysis summaries ("facts") for the whole-program linter.

reprolint v2 splits analysis into two phases.  Phase 1 visits each file
once and distils it into a JSON-serializable **facts** dict: the module
name, its import aliases, one summary per function (parameters, seed
provenance of ``default_rng`` sink arguments, captured RNG state, the
calls it makes with per-argument provenance info), process-pool
submissions, and the schema layouts rules S1/S2 compare.  Phase 2
(:mod:`repro.devtools.callgraph`) links the facts of every scanned file
into a project graph and runs the cross-module rules over it.

Because facts are plain JSON they round-trip through the incremental
cache (:mod:`repro.devtools.cache`): a warm run never re-parses an
unchanged file, yet project rules still see the whole program.

The seed-provenance helpers here (:func:`seedish_expr` and friends) are
the v1 per-file heuristics verbatim — a name/attribute/subscript
matching the seed naming convention, a ``SeedSequence``/``.spawn``
construction, or a fully literal expression.  The interprocedural layer
builds on top of them rather than replacing them, so every v1 verdict
is preserved and the call graph only ever *adds* provenance.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .astutil import dotted_name, import_aliases
from .source import SourceFile

#: Version of the facts schema; part of the cache fingerprint, so any
#: change here invalidates previously cached summaries wholesale.
FACTS_VERSION = 1

# ----------------------------------------------------------------------
# Seed provenance (v1 heuristics, shared by D2 and the summaries)
# ----------------------------------------------------------------------

#: Identifiers with seed provenance by naming convention.  ``seq`` covers
#: the SeedSequence spawning idiom (``crash_seqs[i]``, ``metadata_seq``).
SEEDISH_NAME = re.compile(r"(seed|seq|entropy)", re.IGNORECASE)


def constant_expr(node: ast.expr) -> bool:
    """Whether an expression is built entirely from literals.

    A fully-literal seed (``default_rng(42)``, ``default_rng(0x5EED + 1)``)
    is reproducible by construction and therefore acceptable.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.BinOp):
        return constant_expr(node.left) and constant_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return constant_expr(node.operand)
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(constant_expr(elt) for elt in node.elts)
    return False


def provenance(node: ast.expr, env: set[str]) -> bool:
    """Whether an expression *contains* a term with seed provenance.

    Literals contribute nothing here (``n * 3`` must not pass just because
    of the ``3``); provenance comes from names/attributes/subscripts
    matching the seed naming convention or assigned from a seedish value,
    ``SeedSequence(...)`` construction, ``.spawn(...)`` children, and
    calls to seed-deriving helpers (``client_seed(...)``).
    """
    if isinstance(node, ast.Name):
        return node.id in env or bool(SEEDISH_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(SEEDISH_NAME.search(node.attr)) or provenance(node.value, env)
    if isinstance(node, ast.Subscript):
        return provenance(node.value, env)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("SeedSequence", "spawn"):
                return True
            if SEEDISH_NAME.search(func.attr):
                return True
        elif isinstance(func, ast.Name):
            if func.id == "SeedSequence" or SEEDISH_NAME.search(func.id):
                return True
        # int(seed), operator.xor(seed, k), ...: provenance flows through
        # arguments of otherwise-neutral calls.
        return any(provenance(arg, env) for arg in node.args)
    if isinstance(node, ast.BinOp):
        return provenance(node.left, env) or provenance(node.right, env)
    if isinstance(node, (ast.List, ast.Tuple)):
        return any(provenance(elt, env) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        return provenance(node.operand, env)
    if isinstance(node, ast.IfExp):
        return seedish_expr(node.body, env) and seedish_expr(node.orelse, env)
    return False


def seedish_expr(node: ast.expr, env: set[str]) -> bool:
    """Acceptable ``default_rng`` argument: fully literal, or seed-traced."""
    return constant_expr(node) or provenance(node, env)


def collect_seedish_env(tree: ast.Module) -> set[str]:
    """Names bound (anywhere in the file) to a seedish value.

    Two sweeps propagate one level of chaining (``a = SeedSequence(...);
    b = a``); deeper chains are rare enough to rename instead.
    """
    env: set[str] = set()
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and provenance(node.value, env):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name) and provenance(node.value, env):
                    env.add(node.target.id)
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name) and provenance(node.iter, env):
                    env.add(node.target.id)
            elif isinstance(node, ast.comprehension):
                if isinstance(node.target, ast.Name) and provenance(node.iter, env):
                    env.add(node.target.id)
    return env


# ----------------------------------------------------------------------
# Pool / RNG constructors (shared by M1 and the summaries)
# ----------------------------------------------------------------------

#: Pool method names whose first positional argument is the callable.
SUBMIT_METHODS = {
    "submit", "map", "starmap", "imap", "imap_unordered", "apply", "apply_async",
}


def is_pool_constructor(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name.endswith("ProcessPoolExecutor") or name == "Pool"


def is_rng_constructor(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in ("default_rng", "SeedSequence", "spawn")


def bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names bound inside ``func`` (parameters + assignment targets + defs)."""
    args = func.args
    bound = {
        a.arg
        for a in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
    return bound


def free_loads(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names read inside ``func`` that are not bound within it."""
    bound = bound_names(func)
    body = func.body if isinstance(func.body, list) else [func.body]
    loads: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in bound:
                    loads.add(node.id)
    return loads


# ----------------------------------------------------------------------
# Module naming and import resolution
# ----------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk.

    Walks up while ``__init__.py`` marks the parent as a package, so
    ``src/repro/service/telemetry.py`` maps to ``repro.service.telemetry``
    regardless of the lint invocation's CWD.  A loose file in a
    non-package directory (the fixture layout) maps to its bare stem.
    """
    path = Path(path).resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def relative_aliases(tree: ast.Module, module: str) -> dict[str, str]:
    """Resolve ``from .x import y`` bindings against the module's package.

    :func:`repro.devtools.astutil.import_aliases` deliberately skips
    relative imports (they never alias the stdlib); the call graph needs
    them, and the module name derived from the path gives the anchor.
    """
    parts = module.split(".")
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or not node.level:
            continue
        if node.level > len(parts):
            continue
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        for alias in node.names:
            if alias.name == "*":
                continue
            target = ".".join(base + [alias.name]) if base else alias.name
            out[alias.asname or alias.name] = target
    return out


# ----------------------------------------------------------------------
# Scope-limited traversal
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _iter_scope_nodes(body: list[ast.stmt]):
    """Yield ``(tag, node, cls_name)`` for one scope's own nodes.

    Walks the statements without descending into nested function/lambda
    scopes (those get their own summaries).  Class bodies are transparent
    for plain statements but their methods are yielded as ``("func",
    node, cls_name)`` so they pick up a ``Cls.method`` qualname.
    """
    stack: list[tuple[ast.AST, str | None]] = [(s, None) for s in reversed(body)]
    while stack:
        node, cls = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield "func", node, cls
            continue
        if isinstance(node, ast.Lambda):
            yield "lambda", node, cls
            continue
        if isinstance(node, ast.ClassDef):
            for sub in reversed(node.body):
                stack.append((sub, node.name))
            continue
        yield "node", node, cls
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, cls))


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef):
    args = node.args
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    kwonly = [a.arg for a in args.kwonlyargs]
    return positional, kwonly


def _call_ref(
    func: ast.expr,
    aliases: dict[str, str],
    self_cls: str | None,
    instances: dict[str, str],
) -> dict | None:
    """Describe what a call's ``func`` refers to, for later resolution.

    Returns ``{"kind": "dotted", "dotted": ...}`` for plain/attribute
    calls (bare names are resolved through the caller's scope chain at
    link time) or ``{"kind": "method", "cls": ..., "attr": ...}`` for
    ``self.m()`` and method calls on locally constructed instances of
    repo classes.  ``None`` for anything unresolvable (subscript roots,
    chained calls).
    """
    if isinstance(func, ast.Name):
        return {"kind": "dotted", "dotted": aliases.get(func.id, func.id)}
    if isinstance(func, ast.Attribute):
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        root = node.id
        if root == "self" and self_cls is not None and len(parts) == 1:
            return {"kind": "method", "cls": self_cls, "attr": parts[0]}
        if root in instances and len(parts) == 1:
            return {"kind": "method", "cls": instances[root], "attr": parts[0]}
        base = aliases.get(root, root)
        return {"kind": "dotted", "dotted": ".".join([base, *parts])}
    return None


def _instance_class(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Dotted class name when ``call`` looks like a class construction."""
    dotted = dotted_name(call.func, aliases)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last[:1].isupper():
        return dotted
    return None


def _expr_names(node: ast.expr) -> set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _expr_call_refs(
    node: ast.expr,
    aliases: dict[str, str],
    self_cls: str | None,
    instances: dict[str, str],
) -> list[dict]:
    refs = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            ref = _call_ref(sub.func, aliases, self_cls, instances)
            if ref is not None:
                refs.append(ref)
    return refs


def _arg_info(
    node: ast.expr,
    env: set[str],
    params: set[str],
    aliases: dict[str, str],
    self_cls: str | None,
    instances: dict[str, str],
) -> dict:
    """Provenance summary of one expression used as a call argument."""
    return {
        "repr": ast.unparse(node),
        "ok": seedish_expr(node, env),
        "params": sorted(params & _expr_names(node)),
        "calls": _expr_call_refs(node, aliases, self_cls, instances),
    }


# ----------------------------------------------------------------------
# S1 / S2 layout extraction
# ----------------------------------------------------------------------

#: Columnar layout name -> schema field it encodes.
COLUMN_ALIASES = {"device_code": "device_id"}


def _tuple_of_strings(node: ast.expr) -> list[str] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def _assigned_literal(tree: ast.Module, name: str) -> ast.expr | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                return node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def _s1_layouts(tree: ast.Module) -> dict | None:
    """The Table 1 layout declarations a file carries, if any."""
    out: dict = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "LogRecord":
            fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            out["schema"] = [fields, node.lineno]
    value = _assigned_literal(tree, "TSV_COLUMNS")
    if value is not None:
        names = _tuple_of_strings(value)
        if names is not None:
            out["tsv"] = [names, value.lineno]
    value = _assigned_literal(tree, "COLUMNS")
    if value is not None and isinstance(value, (ast.Tuple, ast.List)):
        names = []
        for elt in value.elts:
            if not isinstance(elt, (ast.Tuple, ast.List)) or not elt.elts:
                names = None
                break
            first = elt.elts[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                names = None
                break
            names.append(COLUMN_ALIASES.get(first.value, first.value))
        if names is not None:
            out["columnar"] = [names, value.lineno]
    return out or None


def _s2_faultstats(tree: ast.Module) -> dict | None:
    """FaultStats field/member inventory, when the file declares it."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "FaultStats":
            fields = []
            field_linenos = {}
            members = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append(stmt.target.id)
                    field_linenos[stmt.target.id] = stmt.lineno
                    members.add(stmt.target.id)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    members.add(stmt.name)
            return {
                "fields": fields,
                "members": sorted(members),
                "lineno": node.lineno,
                "field_linenos": field_linenos,
            }
    return None


def _s2_meta_defaults(tree: ast.Module) -> dict | None:
    value = _assigned_literal(tree, "DEFAULT_METADATA_AVAILABILITY")
    if not isinstance(value, ast.Dict):
        return None
    keys = []
    for key in value.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return {"keys": keys, "lineno": value.lineno}


def _s2_meta_reads(tree: ast.Module) -> list[list]:
    """``meta["key"]`` subscript reads (files with the defaults dict only)."""
    reads = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "meta"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.append([node.slice.value, node.lineno, node.col_offset])
    return reads


def _annotation_is_faultstats(node: ast.expr | None) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "FaultStats"
    if isinstance(node, ast.Attribute):
        return node.attr == "FaultStats"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1] == "FaultStats"
    return False


def _s2_stats_reads(tree: ast.Module) -> list[list]:
    """Attribute reads on parameters annotated ``FaultStats``."""
    reads = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stat_params = {
            a.arg
            for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
            if _annotation_is_faultstats(a.annotation)
        }
        if not stat_params:
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in stat_params
            ):
                reads.append([sub.attr, sub.lineno, sub.col_offset])
    return reads


# ----------------------------------------------------------------------
# The extractor
# ----------------------------------------------------------------------


def extract_facts(src: SourceFile) -> dict:
    """Distil one parsed file into the JSON facts dict described above."""
    tree = src.tree
    path = Path(src.path)
    module = module_name_for(path)
    aliases = import_aliases(tree)
    aliases.update(relative_aliases(tree, module))
    env = collect_seedish_env(tree)

    functions: dict[str, dict] = {}
    classes: dict[str, int] = {
        node.name: node.lineno
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }

    def scan_scope(
        body: list[ast.stmt],
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef | None,
        self_cls: str | None,
        visible_rng: frozenset[str],
        visible_pools: frozenset[str],
        visible_instances: dict[str, str],
    ) -> None:
        positional: list[str] = []
        kwonly: list[str] = []
        seedish_defaults: dict[str, bool] = {}
        if node is not None:
            positional, kwonly = _function_params(node)
            defaults = node.args.defaults
            for name, default in zip(positional[len(positional) - len(defaults):],
                                     defaults):
                seedish_defaults[name] = seedish_expr(default, env)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
                if default is not None:
                    seedish_defaults[arg.arg] = seedish_expr(default, env)
        params = set(positional) | set(kwonly)

        # Pass 1 — local bindings: RNG state, pool handles, constructed
        # instances, nested function definitions.
        local_rng: set[str] = set()
        local_pools: set[str] = set()
        instances: dict[str, str] = dict(visible_instances)
        nested: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]] = []
        for tag, sub, cls in _iter_scope_nodes(body):
            if tag == "func":
                nested.append((sub, cls))
                continue
            if tag != "node":
                continue
            if isinstance(sub, ast.withitem):
                if (
                    isinstance(sub.context_expr, ast.Call)
                    and is_pool_constructor(sub.context_expr)
                    and isinstance(sub.optional_vars, ast.Name)
                ):
                    local_pools.add(sub.optional_vars.id)
            elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                for target in sub.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if is_pool_constructor(sub.value):
                        local_pools.add(target.id)
                    elif is_rng_constructor(sub.value):
                        local_rng.add(target.id)
                    else:
                        cls_name = _instance_class(sub.value, aliases)
                        if cls_name is not None:
                            instances[target.id] = cls_name

        rng_here = visible_rng | local_rng
        pools_here = visible_pools | local_pools

        # Pass 2 — sinks, calls, returns, submissions.
        sinks: list[dict] = []
        calls: list[dict] = []
        submissions: list[dict] = []
        returns_seedish_local = False
        return_calls: list[dict] = []
        for tag, sub, cls in _iter_scope_nodes(body):
            if tag == "func":
                continue
            if tag == "lambda":
                continue
            if isinstance(sub, ast.Return) and sub.value is not None:
                if seedish_expr(sub.value, env):
                    returns_seedish_local = True
                return_calls.extend(
                    _expr_call_refs(sub.value, aliases, self_cls, instances)
                )
            if not isinstance(sub, ast.Call):
                continue
            dotted = dotted_name(sub.func, aliases)
            if dotted and dotted.endswith("default_rng") and sub.args:
                arg = sub.args[0]
                sinks.append(
                    {
                        "line": sub.lineno,
                        "col": sub.col_offset,
                        **_arg_info(arg, env, params, aliases, self_cls, instances),
                    }
                )
            ref = _call_ref(sub.func, aliases, self_cls, instances)
            if ref is not None:
                calls.append(
                    {
                        "ref": ref,
                        "line": sub.lineno,
                        "col": sub.col_offset,
                        "args": [
                            _arg_info(a, env, params, aliases, self_cls, instances)
                            if not isinstance(a, ast.Starred)
                            else None
                            for a in sub.args
                        ],
                        "kwargs": {
                            kw.arg: _arg_info(
                                kw.value, env, params, aliases, self_cls, instances
                            )
                            for kw in sub.keywords
                            if kw.arg is not None
                        },
                    }
                )
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SUBMIT_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pools_here
                and sub.args
            ):
                work = sub.args[0]
                if isinstance(work, ast.Lambda):
                    captured = sorted(free_loads(work) & rng_here)
                    submissions.append(
                        {
                            "kind": "lambda",
                            "line": work.lineno,
                            "col": work.col_offset,
                            "captured": captured,
                        }
                    )
                elif isinstance(work, (ast.Name, ast.Attribute)):
                    work_ref = _call_ref(work, aliases, self_cls, instances)
                    if work_ref is not None:
                        submissions.append(
                            {
                                "kind": "ref",
                                "line": sub.lineno,
                                "col": sub.col_offset,
                                "name": ast.unparse(work),
                                "ref": work_ref,
                            }
                        )

        captured_rng: list[str] = []
        if node is not None:
            captured_rng = sorted(free_loads(node) & visible_rng)

        functions[qualname] = {
            "lineno": node.lineno if node is not None else 0,
            "params": positional,
            "kwonly": kwonly,
            "seedish_defaults": seedish_defaults,
            "returns_seedish_local": returns_seedish_local,
            "return_calls": return_calls,
            "captured_rng": captured_rng,
            "sinks": sinks,
            "calls": calls,
            "submissions": submissions,
        }

        for sub_node, cls in nested:
            prefix = "" if qualname == "<module>" else qualname + "."
            if cls is not None:
                child_qual = f"{prefix}{cls}.{sub_node.name}"
                child_cls = cls
            else:
                child_qual = f"{prefix}{sub_node.name}"
                child_cls = self_cls
            scan_scope(
                sub_node.body,
                child_qual,
                sub_node,
                child_cls,
                rng_here,
                pools_here,
                instances,
            )

    scan_scope(tree.body, "<module>", None, None, frozenset(), frozenset(), {})

    return {
        "version": FACTS_VERSION,
        "path": src.display_path,
        "real_path": str(path.resolve()),
        "dir": str(path.resolve().parent),
        "module": module,
        "explicit": src.explicit,
        "imports": aliases,
        "classes": classes,
        "functions": functions,
        "s1": _s1_layouts(tree),
        "s2_faultstats": _s2_faultstats(tree),
        "s2_meta": _s2_meta_defaults(tree),
        "s2_meta_reads": _s2_meta_reads(tree) if _s2_meta_defaults(tree) else [],
        "s2_stats_reads": _s2_stats_reads(tree),
        "suppress": {
            str(line): sorted(rules) for line, rules in src.suppressions.items()
        },
    }
