"""Determinism rules: D1 (nondeterministic sources), D2 (RNG seed flow),
D3 (builtin ``hash()`` feeding seeds/keys).

The reproduction's contract is that every artifact is a pure function of
the command line: traces, experiment tables and caches must be
bit-identical across runs, processes and machines.  These rules ban the
three ways that contract has historically been broken — reading ambient
entropy (clocks, the global RNG), constructing RNGs from expressions with
no seed provenance, and deriving persisted values from ``hash()`` (which
is salted per process by ``PYTHONHASHSEED``).

D2 is a *project* rule since v2: a ``default_rng(...)`` argument with no
local provenance is traced through the call graph before it is flagged —
a helper in another module that returns a SeedSequence-derived value
certifies the sink, and a parameter that flows into an RNG is chased
back to the call sites that actually supply it.
"""

from __future__ import annotations

import ast

from .astutil import dotted_name, import_aliases, is_name_call
from .callgraph import FuncKey, Project
from .registry import file_rule, project_rule
from .source import SourceFile

# ----------------------------------------------------------------------
# D1 — nondeterministic sources
# ----------------------------------------------------------------------

#: Fully-qualified callables that read ambient entropy (wall clocks,
#: process state, OS randomness).  Referencing one at all is a finding —
#: passing ``time.time`` as a callback is as nondeterministic as calling it.
_BANNED_REFS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read",
    "time.monotonic_ns": "clock read",
    "time.perf_counter": "clock read",
    "time.perf_counter_ns": "clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

#: Monotonic clock reads, legitimate for *measuring* code: allowed in
#: files walked under a ``benchmarks/`` directory (explicitly named
#: files are still checked, mirroring the F1 tests/ exemption).  Wall
#: clocks and entropy sources stay banned even there — a benchmark that
#: stamps its output with ``time.time()`` breaks artifact comparison.
_BENCH_CLOCKS = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: Module prefixes whose *any* use is banned: the stdlib ``random`` module
#: and the ``secrets`` module share one hidden global state / entropy pool.
_BANNED_PREFIXES = ("random.", "secrets.")

#: numpy legacy global-state RNG entry points (seeded or not, they act on
#: shared module state, which parallel workers and test order can perturb).
_NUMPY_GLOBAL_RNG = {
    "numpy.random.seed",
    "numpy.random.random",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.get_state",
    "numpy.random.set_state",
}


@file_rule(
    "D1",
    title="no nondeterministic sources in reproduction code",
)
def check_nondeterministic_sources(src: SourceFile):
    aliases = import_aliases(src.tree)
    bench_walked = not src.explicit and src.in_directory("benchmarks")
    seen: set[tuple[int, int]] = set()

    def report(node: ast.AST, message: str):
        key = (node.lineno, node.col_offset)
        if key not in seen:
            seen.add(key)
            yield node.lineno, node.col_offset, message

    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom) and not node.level and node.module:
            # ``from random import randint`` — the binding itself is the bug.
            root = node.module.split(".")[0]
            if root in ("random", "secrets"):
                yield from report(
                    node,
                    f"import from stdlib '{root}' (hidden global state); "
                    "use a seeded numpy Generator instead",
                )
            continue
        if isinstance(node, ast.Attribute):
            # Only chains rooted in an actual import binding count: a local
            # variable that happens to be named ``random`` is not the
            # stdlib module (``random.means`` on a fit result, say).
            root_node: ast.expr = node
            while isinstance(root_node, ast.Attribute):
                root_node = root_node.value
            if not (isinstance(root_node, ast.Name) and root_node.id in aliases):
                continue
            dotted = dotted_name(node, aliases)
        elif isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
            dotted = aliases.get(node.id)
        else:
            continue
        if dotted is None:
            continue
        if dotted in _BANNED_REFS:
            if bench_walked and dotted in _BENCH_CLOCKS:
                continue
            yield from report(
                node,
                f"use of {dotted} ({_BANNED_REFS[dotted]}); derive values "
                "from the seed instead",
            )
        elif dotted.startswith(_BANNED_PREFIXES):
            yield from report(
                node,
                f"use of stdlib {dotted} (process-global RNG state); "
                "use a seeded numpy Generator instead",
            )
        elif dotted in _NUMPY_GLOBAL_RNG:
            yield from report(
                node,
                f"use of legacy global-state {dotted}; construct an "
                "explicit Generator with default_rng(seed)",
            )

    # Argless default_rng(): seeds from OS entropy, different every run.
    for call in (n for n in ast.walk(src.tree) if isinstance(n, ast.Call)):
        dotted = dotted_name(call.func, aliases)
        if dotted and dotted.endswith("default_rng") and not call.args and not call.keywords:
            yield from report(
                call,
                "default_rng() without a seed draws OS entropy; pass a "
                "SeedSequence or an explicit seed",
            )


# ----------------------------------------------------------------------
# D2 — RNG seed flow (interprocedural)
# ----------------------------------------------------------------------


def _binding_for(param: str, summary: dict, call: dict) -> dict | None:
    """The argument info bound to ``param`` at one call site, if passed."""
    params = summary["params"]
    if param in params:
        index = params.index(param)
        if index < len(call["args"]):
            return call["args"][index]
    return call["kwargs"].get(param)


def _check_param_flow(
    project: Project,
    key: FuncKey,
    params: list[str],
    seen: frozenset[FuncKey],
):
    """Chase RNG-feeding parameters of ``key`` back to their call sites.

    Yields ``(path, line, col, message)`` for every call site that supplies
    a value with no seed provenance; yields nothing when every caller is
    certified.  A binding that is itself built from the *caller's*
    parameters recurses one level up (bounded by ``seen``), so a seed
    threaded through several plumbing layers is still traced to its origin.
    """
    summary = project.summary(key)
    callee = key[1]
    for facts, qualname, call in project.callers(key):
        caller_key = (facts["path"], qualname)
        for param in params:
            info = _binding_for(param, summary, call)
            if info is None:
                # Not passed: fine when the default carries provenance;
                # *args forwarding and friends stay un-flagged (the
                # forwarding site will be checked in its own right).
                continue
            if info["ok"]:
                continue
            if project.call_provides_seed(facts, qualname, info["calls"]):
                continue
            if (
                info["params"]
                and caller_key not in seen
                and project.callers(caller_key)
            ):
                yield from _check_param_flow(
                    project, caller_key, info["params"], seen | {caller_key}
                )
                continue
            yield (
                facts["path"],
                call["line"],
                call["col"],
                f"argument {info['repr']!r} flows into default_rng() via "
                f"parameter {param!r} of {callee}() and has no visible seed "
                "provenance; pass a SeedSequence, a seed parameter, or a "
                "spawned child",
            )


@project_rule(
    "D2",
    title="default_rng argument must trace to a seed",
)
def check_rng_seed_flow(project: Project):
    emitted: set[tuple] = set()
    for facts, qualname, summary in project.functions():
        key = (facts["path"], qualname)
        for sink in summary["sinks"]:
            if sink["ok"]:
                continue
            # Cross-module provenance: a call inside the argument whose
            # resolved target returns a SeedSequence-derived value.
            if project.call_provides_seed(facts, qualname, sink["calls"]):
                continue
            params = [p for p in sink["params"] if p in summary["params"]
                      or p in summary["kwonly"]]
            if params and project.callers(key):
                diags = list(
                    _check_param_flow(project, key, params, frozenset({key}))
                )
                for diag in diags:
                    if diag not in emitted:
                        emitted.add(diag)
                        yield diag
                continue
            diag = (
                facts["path"],
                sink["line"],
                sink["col"],
                "default_rng() argument "
                f"{sink['repr']!r} has no visible seed provenance; "
                "pass a SeedSequence, a seed parameter, or a spawned child",
            )
            if diag not in emitted:
                emitted.add(diag)
                yield diag


# ----------------------------------------------------------------------
# D3 — builtin hash()
# ----------------------------------------------------------------------


@file_rule(
    "D3",
    title="no builtin hash() for seeds or persisted keys",
)
def check_builtin_hash(src: SourceFile):
    for call in (n for n in ast.walk(src.tree) if isinstance(n, ast.Call)):
        if is_name_call(call, "hash"):
            yield (
                call.lineno,
                call.col_offset,
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use hashlib.blake2b for seeds and persisted cache keys",
            )
