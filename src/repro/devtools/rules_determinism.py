"""Determinism rules: D1 (nondeterministic sources), D2 (RNG seed flow),
D3 (builtin ``hash()`` feeding seeds/keys).

The reproduction's contract is that every artifact is a pure function of
the command line: traces, experiment tables and caches must be
bit-identical across runs, processes and machines.  These rules ban the
three ways that contract has historically been broken — reading ambient
entropy (clocks, the global RNG), constructing RNGs from expressions with
no seed provenance, and deriving persisted values from ``hash()`` (which
is salted per process by ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import ast
import re

from .astutil import dotted_name, import_aliases, is_name_call
from .registry import file_rule
from .source import SourceFile

# ----------------------------------------------------------------------
# D1 — nondeterministic sources
# ----------------------------------------------------------------------

#: Fully-qualified callables that read ambient entropy (wall clocks,
#: process state, OS randomness).  Referencing one at all is a finding —
#: passing ``time.time`` as a callback is as nondeterministic as calling it.
_BANNED_REFS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read",
    "time.monotonic_ns": "clock read",
    "time.perf_counter": "clock read",
    "time.perf_counter_ns": "clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

#: Module prefixes whose *any* use is banned: the stdlib ``random`` module
#: and the ``secrets`` module share one hidden global state / entropy pool.
_BANNED_PREFIXES = ("random.", "secrets.")

#: numpy legacy global-state RNG entry points (seeded or not, they act on
#: shared module state, which parallel workers and test order can perturb).
_NUMPY_GLOBAL_RNG = {
    "numpy.random.seed",
    "numpy.random.random",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.get_state",
    "numpy.random.set_state",
}


@file_rule(
    "D1",
    title="no nondeterministic sources in reproduction code",
)
def check_nondeterministic_sources(src: SourceFile):
    aliases = import_aliases(src.tree)
    seen: set[tuple[int, int]] = set()

    def report(node: ast.AST, message: str):
        key = (node.lineno, node.col_offset)
        if key not in seen:
            seen.add(key)
            yield node.lineno, node.col_offset, message

    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom) and not node.level and node.module:
            # ``from random import randint`` — the binding itself is the bug.
            root = node.module.split(".")[0]
            if root in ("random", "secrets"):
                yield from report(
                    node,
                    f"import from stdlib '{root}' (hidden global state); "
                    "use a seeded numpy Generator instead",
                )
            continue
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node, aliases)
        elif isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
            dotted = aliases.get(node.id)
        else:
            continue
        if dotted is None:
            continue
        if dotted in _BANNED_REFS:
            yield from report(
                node,
                f"use of {dotted} ({_BANNED_REFS[dotted]}); derive values "
                "from the seed instead",
            )
        elif dotted.startswith(_BANNED_PREFIXES):
            yield from report(
                node,
                f"use of stdlib {dotted} (process-global RNG state); "
                "use a seeded numpy Generator instead",
            )
        elif dotted in _NUMPY_GLOBAL_RNG:
            yield from report(
                node,
                f"use of legacy global-state {dotted}; construct an "
                "explicit Generator with default_rng(seed)",
            )

    # Argless default_rng(): seeds from OS entropy, different every run.
    for call in (n for n in ast.walk(src.tree) if isinstance(n, ast.Call)):
        dotted = dotted_name(call.func, aliases)
        if dotted and dotted.endswith("default_rng") and not call.args and not call.keywords:
            yield from report(
                call,
                "default_rng() without a seed draws OS entropy; pass a "
                "SeedSequence or an explicit seed",
            )


# ----------------------------------------------------------------------
# D2 — RNG seed flow
# ----------------------------------------------------------------------

#: Identifiers with seed provenance by naming convention.  ``seq`` covers
#: the SeedSequence spawning idiom (``crash_seqs[i]``, ``metadata_seq``).
_SEEDISH_NAME = re.compile(r"(seed|seq|entropy)", re.IGNORECASE)


def _constant_expr(node: ast.expr) -> bool:
    """Whether an expression is built entirely from literals.

    A fully-literal seed (``default_rng(42)``, ``default_rng(0x5EED + 1)``)
    is reproducible by construction and therefore acceptable.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.BinOp):
        return _constant_expr(node.left) and _constant_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return _constant_expr(node.operand)
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(_constant_expr(elt) for elt in node.elts)
    return False


def _provenance(node: ast.expr, env: set[str]) -> bool:
    """Whether an expression *contains* a term with seed provenance.

    Literals contribute nothing here (``n * 3`` must not pass just because
    of the ``3``); provenance comes from names/attributes/subscripts
    matching the seed naming convention or assigned from a seedish value,
    ``SeedSequence(...)`` construction, ``.spawn(...)`` children, and
    calls to seed-deriving helpers (``client_seed(...)``).
    """
    if isinstance(node, ast.Name):
        return node.id in env or bool(_SEEDISH_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_SEEDISH_NAME.search(node.attr)) or _provenance(node.value, env)
    if isinstance(node, ast.Subscript):
        return _provenance(node.value, env)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("SeedSequence", "spawn"):
                return True
            if _SEEDISH_NAME.search(func.attr):
                return True
        elif isinstance(func, ast.Name):
            if func.id == "SeedSequence" or _SEEDISH_NAME.search(func.id):
                return True
        # int(seed), operator.xor(seed, k), ...: provenance flows through
        # arguments of otherwise-neutral calls.
        return any(_provenance(arg, env) for arg in node.args)
    if isinstance(node, ast.BinOp):
        return _provenance(node.left, env) or _provenance(node.right, env)
    if isinstance(node, (ast.List, ast.Tuple)):
        return any(_provenance(elt, env) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _provenance(node.operand, env)
    if isinstance(node, ast.IfExp):
        return _seedish(node.body, env) and _seedish(node.orelse, env)
    return False


def _seedish(node: ast.expr, env: set[str]) -> bool:
    """Acceptable ``default_rng`` argument: fully literal, or seed-traced."""
    return _constant_expr(node) or _provenance(node, env)


def _collect_seedish_env(tree: ast.Module) -> set[str]:
    """Names bound (anywhere in the file) to a seedish value.

    Two sweeps propagate one level of chaining (``a = SeedSequence(...);
    b = a``); deeper chains are rare enough to rename instead.
    """
    env: set[str] = set()
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _provenance(node.value, env):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name) and _provenance(node.value, env):
                    env.add(node.target.id)
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name) and _provenance(node.iter, env):
                    env.add(node.target.id)
            elif isinstance(node, ast.comprehension):
                if isinstance(node.target, ast.Name) and _provenance(node.iter, env):
                    env.add(node.target.id)
    return env


@file_rule(
    "D2",
    title="default_rng argument must trace to a seed",
)
def check_rng_seed_flow(src: SourceFile):
    aliases = import_aliases(src.tree)
    env = _collect_seedish_env(src.tree)
    for call in (n for n in ast.walk(src.tree) if isinstance(n, ast.Call)):
        dotted = dotted_name(call.func, aliases)
        if not dotted or not dotted.endswith("default_rng") or not call.args:
            continue
        arg = call.args[0]
        if not _seedish(arg, env):
            yield (
                call.lineno,
                call.col_offset,
                "default_rng() argument "
                f"{ast.unparse(arg)!r} has no visible seed provenance; "
                "pass a SeedSequence, a seed parameter, or a spawned child",
            )


# ----------------------------------------------------------------------
# D3 — builtin hash()
# ----------------------------------------------------------------------


@file_rule(
    "D3",
    title="no builtin hash() for seeds or persisted keys",
)
def check_builtin_hash(src: SourceFile):
    for call in (n for n in ast.walk(src.tree) if isinstance(n, ast.Call)):
        if is_name_call(call, "hash"):
            yield (
                call.lineno,
                call.col_offset,
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use hashlib.blake2b for seeds and persisted cache keys",
            )
