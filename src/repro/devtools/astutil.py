"""Small AST helpers shared by the rule modules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/attribute they were imported as.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``import numpy.random``           -> ``{"numpy": "numpy"}``
    ``from numpy.random import default_rng as rng``
                                      -> ``{"rng": "numpy.random.default_rng"}``

    Only module-level and nested imports are collected (anywhere in the
    tree); later bindings win, which matches runtime shadowing closely
    enough for linting.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # "import a.b" binds "a" to package a; "import a.b as c"
                # binds "c" to the full dotted path.
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never alias the stdlib
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted path through import aliases.

    ``np.random.seed`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.seed"``; a chain whose root is not an import alias
    resolves through its literal root name.  Non-name roots (calls,
    subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def is_name_call(call: ast.Call, name: str) -> bool:
    """Whether ``call`` invokes the bare name ``name`` (no attribute chain)."""
    return isinstance(call.func, ast.Name) and call.func.id == name
