"""repro — a reproduction of "An Empirical Analysis of a Large-scale Mobile
Cloud Storage Service" (Li et al., IMC 2016).

Subpackages
-----------
``repro.core``
    The paper's analysis pipeline: sessionization, behaviour models,
    usage/engagement taxonomies and chunk-level performance diagnostics.
``repro.logs``
    The Table 1 log-record schema and streaming log tooling.
``repro.stats``
    From-scratch statistics: EM mixture fitters, stretched-exponential
    models, goodness-of-fit and bootstrap.
``repro.workload``
    Paper-calibrated synthetic trace generation (the stand-in for the
    proprietary 350 M-request dataset).
``repro.service``
    A cloud-storage service simulator (metadata dedup, chunked front-ends,
    protocol clients).
``repro.tcpsim``
    A packet-level TCP simulator reproducing the Section 4 transfer
    mechanics (slow-start-after-idle, receive-window caps).
``repro.experiments``
    One module per paper figure/table, regenerating its rows and series.
"""

from . import core, logs, service, stats, tcpsim, workload

__version__ = "1.0.0"

__all__ = ["core", "logs", "service", "stats", "tcpsim", "workload", "__version__"]
