"""Network path model for the TCP simulator.

A :class:`NetworkPath` is a bidirectional point-to-point path with a
bottleneck rate, a propagation delay, and an optional independent random
loss process on data packets.  Serialization at the bottleneck is modeled
explicitly (a packet cannot depart before the previous one finished), which
is what shapes ACK clocking in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class NetworkPath:
    """A symmetric network path between a client and a front-end server.

    Parameters
    ----------
    bandwidth:
        Bottleneck rate in bytes/second for the uplink (and for the
        downlink unless ``down_bandwidth`` is given — cellular links are
        typically asymmetric, with downlink several times faster).
    down_bandwidth:
        Optional downlink rate in bytes/second.
    one_way_delay:
        Propagation delay in seconds; the base RTT is twice this.
    loss_rate:
        Independent drop probability for *data* packets (ACKs are assumed
        never lost; the 40-byte ACKs of a single flow rarely overflow
        buffers, and lost cumulative ACKs are masked by later ones).
    jitter:
        Standard deviation of a truncated Gaussian perturbation added to
        each packet's propagation delay, emulating cellular delay variation.
    buffer_bytes:
        Bottleneck queue capacity per direction; a packet arriving to a
        full queue is tail-dropped.  ``None`` models an unbounded buffer.
        Shallow buffers are what makes post-idle bursts lossy — the
        Section 4.3 argument against simply disabling slow-start-after-
        idle.
    seed:
        Seed for the loss/jitter process.
    """

    bandwidth: float = 2_000_000.0
    down_bandwidth: float | None = None
    one_way_delay: float = 0.05
    loss_rate: float = 0.0
    jitter: float = 0.0
    buffer_bytes: float | None = None
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _free_at: dict[str, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.down_bandwidth is not None and self.down_bandwidth <= 0:
            raise ValueError("down_bandwidth must be positive")
        if self.one_way_delay < 0:
            raise ValueError("one_way_delay must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.buffer_bytes is not None and self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive (or None)")
        self._rng = np.random.default_rng(self.seed)
        self._free_at = {"up": 0.0, "down": 0.0}

    @property
    def base_rtt(self) -> float:
        """Round-trip propagation delay (no queueing)."""
        return 2.0 * self.one_way_delay

    def rate_for(self, direction: str) -> float:
        """Bottleneck rate (bytes/s) for one direction."""
        if direction == "down" and self.down_bandwidth is not None:
            return self.down_bandwidth
        return self.bandwidth

    def serialization_delay(self, size: int, direction: str = "up") -> float:
        """Time to clock ``size`` bytes onto the bottleneck link."""
        return size / self.rate_for(direction)

    def transmit(self, direction: str, now: float, size: int) -> tuple[float, bool]:
        """Send one packet; return ``(arrival_time, delivered)``.

        ``direction`` is ``"up"`` (client to server) or ``"down"``.  The
        packet occupies the bottleneck for its serialization time starting
        no earlier than the link is free, then propagates.  ``delivered``
        is False when the loss process dropped the packet (it still consumed
        bottleneck time — drops happen at the tail of the queue's egress in
        this simplified model).
        """
        if direction not in self._free_at:
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        if size <= 0:
            raise ValueError("size must be positive")
        if self.buffer_bytes is not None:
            backlog = max(0.0, self._free_at[direction] - now) * self.rate_for(
                direction
            )
            if backlog + size > self.buffer_bytes:
                # Tail drop: the packet never occupies the queue.
                return now + self.one_way_delay, False
        start = max(now, self._free_at[direction])
        departure = start + self.serialization_delay(size, direction)
        self._free_at[direction] = departure
        delay = self.one_way_delay
        if self.jitter > 0:
            delay = max(0.0, delay + float(self._rng.normal(0.0, self.jitter)))
        arrival = departure + delay
        # Short-circuit on a lossless path *before* drawing from the RNG so
        # enabling/disabling loss does not perturb the jitter stream.
        delivered = self.loss_rate <= 0.0 or float(self._rng.uniform()) >= self.loss_rate
        return arrival, delivered

    def reset(self) -> None:
        """Clear link occupancy (e.g. between independent flows)."""
        self._free_at = {"up": 0.0, "down": 0.0}
