"""Chunk-level storage and retrieval flows (the paper's Fig 11 timeline).

A flow uploads or downloads a file as a sequence of fixed-size chunks over
one TCP connection.  Chunks are strictly sequential at the HTTP level: the
next chunk request is not issued until the previous chunk was acknowledged
with an HTTP ``200 OK``.  Between chunks the TCP sender is idle for
``Tsrv + Tclt`` (plus propagation), and when that idle time exceeds its RTO
the congestion window collapses back to the restart window — the mechanism
behind the Android/iOS performance gap of Section 4.

`simulate_flow` runs one flow and returns per-chunk measurements in the same
terms as the paper: ``Tchunk`` (front-end processing time), ``Tsrv``,
``ttran = Tchunk - Tsrv``, idle intervals and their ratio to the RTO, plus
the packet-level :class:`FlowTrace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..events import EventLoop
from ..logs.schema import CHUNK_SIZE, DeviceType, Direction
from .congestion import CongestionControl
from .connection import MAX_UNSCALED_RWND, MessageReceipt, TcpTransfer
from .devices import DEFAULT_SERVER, DeviceProfile, ServerProfile, profile_for
from .path import NetworkPath
from .rto import RtoEstimator
from .trace import FlowTrace

REQUEST_SIZE = 300  # HTTP request header bytes
RESPONSE_SIZE = 200  # HTTP 200 OK bytes


@dataclass(frozen=True)
class TransferOptions:
    """Tunable transfer behaviour, including the Section 4.3 mitigations.

    Attributes
    ----------
    chunk_size:
        Bytes per chunk (service default 512 KB; the paper suggests
        1.5-2 MB).
    batch_size:
        Chunks carried per HTTP request.  The deployed service uses 1
        (strictly sequential chunks); values above 1 model the proposed
        batched store/retrieve commands.
    slow_start_after_idle:
        Whether senders apply RFC 5681 idle restarts (mitigation: off).
    pace_after_idle:
        Pace the first window after a long idle instead of bursting it —
        the safer companion to disabling slow-start-after-idle.
    server_window_scaling:
        Whether servers enable RFC 7323 window scaling.  Off (the measured
        configuration) clamps upload windows at 64 KB.
    server_rwnd:
        Server receive window when scaling is enabled.
    initial_window_segments:
        Sender initial window in segments.
    mss:
        Segment payload size.
    """

    chunk_size: int = CHUNK_SIZE
    batch_size: int = 1
    slow_start_after_idle: bool = True
    pace_after_idle: bool = False
    server_window_scaling: bool = False
    server_rwnd: int = MAX_UNSCALED_RWND
    initial_window_segments: int = 3
    mss: int = 1448

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if not self.server_window_scaling and self.server_rwnd > MAX_UNSCALED_RWND:
            raise ValueError(
                "server_rwnd above 64 KB requires server_window_scaling"
            )


@dataclass(frozen=True)
class ChunkResult:
    """Measurements for one chunk (or chunk batch) request."""

    index: int
    size: int
    tchunk: float
    tsrv: float
    tclt: float
    idle_before: float
    rto_at_idle: float
    restarted: bool

    @property
    def ttran(self) -> float:
        """User-perceived transfer time, ``Tchunk - Tsrv``."""
        return max(0.0, self.tchunk - self.tsrv)

    @property
    def idle_rto_ratio(self) -> float:
        """Idle time over RTO; above 1.0 triggers a slow-start restart."""
        if self.idle_before <= 0.0:
            return 0.0
        return self.idle_before / self.rto_at_idle


@dataclass
class FlowResult:
    """Outcome of one simulated storage or retrieval flow."""

    direction: Direction
    device_type: DeviceType
    chunk_results: list[ChunkResult] = field(default_factory=list)
    trace: FlowTrace = field(default_factory=FlowTrace)
    duration: float = 0.0
    total_bytes: int = 0
    slow_start_restarts: int = 0
    retransmissions: int = 0

    @property
    def throughput(self) -> float:
        """Application goodput over the whole flow (bytes/second)."""
        if self.duration <= 0:
            raise ValueError("flow has no duration")
        return self.total_bytes / self.duration

    @property
    def chunk_times(self) -> np.ndarray:
        """Per-chunk ``ttran`` values (the Fig 12 samples)."""
        return np.asarray([c.ttran for c in self.chunk_results])

    @property
    def idle_rto_ratios(self) -> np.ndarray:
        """Per-gap actual TCP sender idle / RTO ratios.

        The actual idle includes propagation and queue-drain transit in
        addition to the processing times; this is what the simulator's
        restart decision uses.
        """
        return np.asarray(
            [c.idle_rto_ratio for c in self.chunk_results if c.idle_before > 0]
        )

    @property
    def processing_idle_ratios(self) -> np.ndarray:
        """Per-gap (Tsrv + Tclt) / RTO ratios — the paper's definition.

        Section 4.2 defines the idle time between two chunks as the sum of
        the server and client processing times (Fig 11), which is what the
        paper's Fig 16c plots.  The gap before chunk ``i`` is attributed
        the processing times that followed chunk ``i - 1``.
        """
        ratios = []
        for prev, cur in zip(self.chunk_results, self.chunk_results[1:]):
            ratios.append((prev.tsrv + prev.tclt) / cur.rto_at_idle)
        return np.asarray(ratios)

    def average_rtt(self) -> float:
        return self.trace.average_rtt()


def simulate_flow(
    *,
    direction: Direction,
    device: DeviceProfile | DeviceType,
    file_size: int,
    path: NetworkPath | None = None,
    server: ServerProfile = DEFAULT_SERVER,
    options: TransferOptions = TransferOptions(),
    seed: int = 0,
) -> FlowResult:
    """Simulate one chunked storage or retrieval flow end to end.

    Parameters
    ----------
    direction:
        ``Direction.STORE`` uploads (client is the TCP data sender and the
        server's small receive window applies); ``Direction.RETRIEVE``
        downloads (server sends, the client's large scaled window applies).
    device:
        Device profile (or type) supplying the ``Tclt`` distribution.
    file_size:
        Bytes to transfer; split into ``options.chunk_size`` chunks.
    path:
        Network path; defaults to a 2 MB/s, 100 ms RTT cellular-ish path.
    seed:
        Seeds the Tsrv/Tclt draws (and path loss/jitter uses the path's own
        seed).

    Returns
    -------
    FlowResult
        Per-chunk measurements, packet trace and flow summary.
    """
    if isinstance(device, DeviceType):
        device = profile_for(device)
    if file_size <= 0:
        raise ValueError("file_size must be positive")
    if path is None:
        path = NetworkPath(bandwidth=2_000_000.0, one_way_delay=0.05)

    rng = np.random.default_rng(seed)
    loop = EventLoop()
    result = FlowResult(direction=direction, device_type=device.device_type)

    is_store = direction is Direction.STORE
    if is_store:
        # Client uploads: server's receive window limits the sender.
        data_direction = "up"
        peer_rwnd = (
            server.advertised_rwnd
            if server.window_scaling
            else min(server.advertised_rwnd, MAX_UNSCALED_RWND)
        )
        window_scaling = server.window_scaling
    else:
        data_direction = "down"
        peer_rwnd = device.advertised_rwnd
        window_scaling = device.window_scaling

    if is_store and options.server_window_scaling:
        peer_rwnd = options.server_rwnd
        window_scaling = True

    congestion = CongestionControl(
        mss=options.mss,
        initial_window_segments=options.initial_window_segments,
        slow_start_after_idle=options.slow_start_after_idle,
    )
    transfer = TcpTransfer(
        loop,
        path,
        data_direction,
        peer_rwnd=peer_rwnd,
        window_scaling=window_scaling,
        congestion=congestion,
        rto_estimator=RtoEstimator(),
        trace=result.trace,
        pace_after_idle=options.pace_after_idle,
    )

    # Build the batch schedule: each HTTP request carries batch_size chunks.
    chunk_sizes: list[int] = []
    remaining = file_size
    while remaining > 0:
        size = min(options.chunk_size, remaining)
        chunk_sizes.append(size)
        remaining -= size
    batches: list[int] = []
    for i in range(0, len(chunk_sizes), options.batch_size):
        batches.append(sum(chunk_sizes[i : i + options.batch_size]))

    tclt_dist = device.tclt(is_store)
    state = {"batch": 0, "done": False, "last_finish": 0.0}

    def start_batch() -> None:
        index = state["batch"]
        size = batches[index]
        tsrv = float(server.tsrv.sample(rng))
        if is_store:
            _run_store_batch(index, size, tsrv)
        else:
            _run_retrieve_batch(index, size, tsrv)

    def _finish_batch(index: int, size: int, tchunk: float, tsrv: float,
                      tclt: float, receipt: MessageReceipt) -> None:
        result.chunk_results.append(
            ChunkResult(
                index=index,
                size=size,
                tchunk=tchunk,
                tsrv=tsrv,
                tclt=tclt,
                idle_before=receipt.idle_before,
                rto_at_idle=receipt.rto_at_idle,
                restarted=receipt.restarted,
            )
        )
        state["batch"] += 1
        if state["batch"] >= len(batches):
            state["done"] = True
            state["last_finish"] = loop.now
        else:
            loop.schedule_after(tclt if not is_store else 0.0, start_batch)

    def _run_store_batch(index: int, size: int, tsrv: float) -> None:
        # Upload: the request header and chunk payload flow together from
        # the client; Tchunk starts when the first byte reaches the server.
        def on_delivered(receipt: MessageReceipt) -> None:
            # Server stores the data (Tsrv), then sends HTTP 200 OK.
            ok_sent = receipt.last_arrival + tsrv
            tchunk = ok_sent - receipt.first_arrival
            ok_arrival = (
                ok_sent
                + path.one_way_delay
                + path.serialization_delay(RESPONSE_SIZE, "down")
            )
            tclt = float(tclt_dist.sample(rng))

            def on_ok() -> None:
                # Client prepares the next chunk for Tclt, then the next
                # send_message call observes idle = Tsrv + Tclt + transit.
                _finish_batch(index, size, tchunk, tsrv, tclt, receipt)

            loop.schedule_at(ok_arrival + tclt, on_ok)

        transfer.send_message(REQUEST_SIZE + size, on_delivered)

    def _run_retrieve_batch(index: int, size: int, tsrv: float) -> None:
        # Download: the client's request crosses up (one-way delay), the
        # server prepares content (Tsrv), then streams the chunk down.
        request_arrival = (
            loop.now
            + path.one_way_delay
            + path.serialization_delay(REQUEST_SIZE, "up")
        )

        def serve() -> None:
            def on_delivered(receipt: MessageReceipt) -> None:
                # Tchunk runs from the request's arrival at the front-end
                # to the last byte sent to the client.
                last_sent = receipt.last_arrival - path.one_way_delay
                tchunk = last_sent - request_arrival
                tclt = float(tclt_dist.sample(rng))

                def request_next() -> None:
                    _finish_batch(index, size, tchunk, tsrv, tclt, receipt)

                # Client processes the chunk for Tclt before requesting
                # more.  The delivery callback fires when the final ACK
                # reaches the server, which can postdate client-side
                # arrival + Tclt for small Tclt; never schedule backwards.
                loop.schedule_at(
                    max(loop.now, receipt.last_arrival + tclt), request_next
                )

            transfer.send_message(RESPONSE_SIZE + size, on_delivered)

        loop.schedule_at(request_arrival + tsrv, serve)

    transfer.connect(start_batch)
    loop.run()
    if not state["done"]:
        raise RuntimeError("flow did not complete (event queue drained early)")

    result.duration = state["last_finish"]
    result.total_bytes = file_size
    result.slow_start_restarts = transfer.cc.slow_start_restarts
    result.retransmissions = transfer.retransmissions
    return result


def sample_flow_population(
    *,
    direction: Direction,
    device: DeviceProfile | DeviceType,
    n_flows: int,
    file_size: int = 4 * CHUNK_SIZE,
    options: TransferOptions = TransferOptions(),
    rtt_median: float = 0.1,
    rtt_sigma: float = 0.6,
    bandwidth_median: float = 2_000_000.0,
    bandwidth_sigma: float = 0.5,
    downlink_factor: float = 3.0,
    seed: int = 0,
) -> list[FlowResult]:
    """Simulate a population of flows over heterogeneous paths.

    Per-flow RTT and uplink bandwidth are drawn lognormally, echoing the
    heavy-tailed RTT distribution of the paper's Fig 14 (median ~100 ms);
    the downlink is ``downlink_factor`` times the uplink, the usual cellular
    asymmetry.
    """
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    if downlink_factor <= 0:
        raise ValueError("downlink_factor must be positive")
    rng = np.random.default_rng(seed)
    results = []
    for i in range(n_flows):
        rtt = float(rng.lognormal(math.log(rtt_median), rtt_sigma))
        bandwidth = float(
            rng.lognormal(math.log(bandwidth_median), bandwidth_sigma)
        )
        bandwidth = max(50_000.0, bandwidth)
        path = NetworkPath(
            bandwidth=bandwidth,
            down_bandwidth=bandwidth * downlink_factor,
            one_way_delay=rtt / 2.0,
            seed=seed * 100_003 + i,
        )
        results.append(
            simulate_flow(
                direction=direction,
                device=device,
                file_size=file_size,
                path=path,
                options=options,
                seed=seed * 1_000_003 + i,
            )
        )
    return results
