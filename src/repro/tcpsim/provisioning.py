"""Server-side cost of enabling window scaling (Section 4.3).

The paper cautions that the "straightforward solution" of enabling window
scaling at the servers is not free when serving millions of concurrent
flows: per-socket receive buffers grow with the advertised window, and the
extra window is wasted whenever the path — not the 64 KB cap — is the real
bottleneck.  This module quantifies both sides: simulated upload goodput
as a function of the server's advertised window, and the fleet-level
memory footprint that window implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logs.schema import CHUNK_SIZE, Direction
from .connection import MAX_UNSCALED_RWND
from .devices import DeviceProfile, IOS
from .flow import TransferOptions, simulate_flow
from .path import NetworkPath


@dataclass(frozen=True)
class WindowOperatingPoint:
    """Measured outcome of one advertised-window setting."""

    rwnd_bytes: int
    goodput: float
    #: Receive-buffer memory one front-end commits for its concurrent
    #: flows at this advertised window (kernels preallocate toward the
    #: advertised credit under load).
    memory_per_server_bytes: float

    def goodput_per_memory(self) -> float:
        """Throughput bought per byte of buffer memory."""
        if self.memory_per_server_bytes <= 0:
            raise ValueError("memory must be positive")
        return self.goodput / self.memory_per_server_bytes


def window_sweep(
    rwnd_values: tuple[int, ...] = (
        MAX_UNSCALED_RWND,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
    ),
    *,
    concurrent_flows_per_server: int = 50_000,
    bandwidth: float = 2_000_000.0,
    rtt: float = 0.1,
    file_size: int = 8 * CHUNK_SIZE,
    device: DeviceProfile = IOS,
    n_flows: int = 4,
    seed: int = 0,
) -> list[WindowOperatingPoint]:
    """Measure goodput and memory across advertised server windows.

    The path's bandwidth-delay product determines where goodput saturates;
    memory grows linearly with the window regardless — the asymmetry the
    paper warns about.
    """
    if concurrent_flows_per_server < 1:
        raise ValueError("need at least one concurrent flow")
    points = []
    for rwnd in rwnd_values:
        goodputs = []
        for i in range(n_flows):
            path = NetworkPath(
                bandwidth=bandwidth, one_way_delay=rtt / 2.0, seed=seed + i
            )
            options = TransferOptions(
                server_window_scaling=rwnd > MAX_UNSCALED_RWND,
                server_rwnd=rwnd,
            )
            flow = simulate_flow(
                direction=Direction.STORE,
                device=device,
                file_size=file_size,
                path=path,
                options=options,
                seed=seed + i,
            )
            goodputs.append(flow.throughput)
        points.append(
            WindowOperatingPoint(
                rwnd_bytes=rwnd,
                goodput=float(np.mean(goodputs)),
                memory_per_server_bytes=float(rwnd)
                * concurrent_flows_per_server,
            )
        )
    return points


def saturation_window(
    points: list[WindowOperatingPoint], threshold: float = 0.05
) -> int:
    """Smallest advertised window within ``threshold`` of peak goodput.

    This is the window a cost-aware operator would deploy: beyond it the
    extra memory buys nothing (the path is the bottleneck).
    """
    if not points:
        raise ValueError("no operating points")
    peak = max(p.goodput for p in points)
    for point in sorted(points, key=lambda p: p.rwnd_bytes):
        if point.goodput >= (1.0 - threshold) * peak:
            return point.rwnd_bytes
    return max(p.rwnd_bytes for p in points)  # pragma: no cover
